#include "wfregs/storage/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace wfregs::storage {

namespace {

constexpr std::uint32_t kTagSnapshot = 1;
constexpr std::uint32_t kTagKeyBatch = 2;
constexpr std::uint32_t kSnapshotVersion = 1;

const char* kFrontierName = "frontier.log";
const char* kArenaName = "arena.log";

std::string frontier_path(const std::string& dir) {
  return (std::filesystem::path(dir) / kFrontierName).string();
}
std::string arena_path(const std::string& dir) {
  return (std::filesystem::path(dir) / kArenaName).string();
}

// ---- little-endian payload serialization -----------------------------------

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int k = 0; k < 4; ++k) b.push_back((v >> (8 * k)) & 0xFF);
}
void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int k = 0; k < 8; ++k) b.push_back((v >> (8 * k)) & 0xFF);
}
void put_i32(std::vector<std::uint8_t>& b, std::int32_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
}
void put_u64vec(std::vector<std::uint8_t>& b,
                const std::vector<std::uint64_t>& v) {
  put_u32(b, static_cast<std::uint32_t>(v.size()));
  for (const std::uint64_t w : v) put_u64(b, w);
}
void put_string(std::vector<std::uint8_t>& b, const std::string& s) {
  put_u32(b, static_cast<std::uint32_t>(s.size()));
  b.insert(b.end(), s.begin(), s.end());
}

/// Bounds-checked reader: every get_* returns false on underrun, and the
/// caller treats a malformed payload as an unusable snapshot (skipped, like
/// a torn record).
struct Reader {
  const std::uint8_t* p;
  std::size_t n;
  bool ok = true;

  bool take(std::size_t k) {
    if (!ok || n < k) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint32_t get_u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) v |= static_cast<std::uint32_t>(p[k]) << (8 * k);
    p += 4;
    n -= 4;
    return v;
  }
  std::uint64_t get_u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int k = 0; k < 8; ++k) v |= static_cast<std::uint64_t>(p[k]) << (8 * k);
    p += 8;
    n -= 8;
    return v;
  }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::vector<std::uint64_t> get_u64vec() {
    std::vector<std::uint64_t> v;
    const std::uint32_t count = get_u32();
    if (!take(static_cast<std::size_t>(count) * 8)) return v;
    v.reserve(count);
    for (std::uint32_t k = 0; k < count; ++k) v.push_back(get_u64());
    return v;
  }
  std::string get_string() {
    const std::uint32_t count = get_u32();
    if (!take(count)) return {};
    std::string s(reinterpret_cast<const char*>(p), count);
    p += count;
    n -= count;
    return s;
  }
};

std::vector<std::uint8_t> encode_snapshot(const FrontierSnapshot& s) {
  std::vector<std::uint8_t> b;
  put_u32(b, kSnapshotVersion);
  put_u64(b, s.fp_hi);
  put_u64(b, s.fp_lo);
  b.push_back(s.finished ? 1 : 0);
  b.push_back(s.wait_free ? 1 : 0);
  b.push_back(s.complete ? 1 : 0);
  b.push_back(s.has_violation ? 1 : 0);
  put_string(b, s.violation);
  put_u64(b, s.configs);
  put_u64(b, s.edges);
  put_u64(b, s.terminals);
  put_i32(b, s.depth);
  put_u32(b, s.interned);
  put_u32(b, static_cast<std::uint32_t>(s.frames.size()));
  for (const FrameSnap& f : s.frames) {
    put_u32(b, f.id);
    put_u32(b, f.step_idx);
    put_i32(b, f.choice);
    put_u64(b, f.sleep);
    put_i32(b, f.depth_from);
    put_u64vec(b, f.acc_from);
    put_u64vec(b, f.inv_from);
  }
  put_u32(b, static_cast<std::uint32_t>(s.node_depth_from.size()));
  for (const std::int32_t d : s.node_depth_from) put_i32(b, d);
  put_u32(b, s.acc_len);
  put_u32(b, s.inv_len);
  put_u64vec(b, s.node_acc);
  put_u64vec(b, s.node_inv);
  put_u64vec(b, s.max_accesses);
  put_u32(b, static_cast<std::uint32_t>(s.max_accesses_by_inv.size()));
  for (const auto& v : s.max_accesses_by_inv) put_u64vec(b, v);
  return b;
}

std::optional<FrontierSnapshot> decode_snapshot(
    const std::vector<std::uint8_t>& payload) {
  Reader r{payload.data(), payload.size()};
  if (r.get_u32() != kSnapshotVersion) return std::nullopt;
  FrontierSnapshot s;
  s.fp_hi = r.get_u64();
  s.fp_lo = r.get_u64();
  if (!r.take(4)) return std::nullopt;
  s.finished = r.p[0] != 0;
  s.wait_free = r.p[1] != 0;
  s.complete = r.p[2] != 0;
  s.has_violation = r.p[3] != 0;
  r.p += 4;
  r.n -= 4;
  s.violation = r.get_string();
  s.configs = r.get_u64();
  s.edges = r.get_u64();
  s.terminals = r.get_u64();
  s.depth = r.get_i32();
  s.interned = r.get_u32();
  const std::uint32_t nframes = r.get_u32();
  if (!r.ok || nframes > (std::uint32_t{1} << 24)) return std::nullopt;
  s.frames.resize(nframes);
  for (FrameSnap& f : s.frames) {
    f.id = r.get_u32();
    f.step_idx = r.get_u32();
    f.choice = r.get_i32();
    f.sleep = r.get_u64();
    f.depth_from = r.get_i32();
    f.acc_from = r.get_u64vec();
    f.inv_from = r.get_u64vec();
  }
  const std::uint32_t nnodes = r.get_u32();
  if (!r.ok || !r.take(static_cast<std::size_t>(nnodes) * 4)) {
    return std::nullopt;
  }
  s.node_depth_from.resize(nnodes);
  for (std::uint32_t k = 0; k < nnodes; ++k) {
    s.node_depth_from[k] = r.get_i32();
  }
  s.acc_len = r.get_u32();
  s.inv_len = r.get_u32();
  s.node_acc = r.get_u64vec();
  s.node_inv = r.get_u64vec();
  s.max_accesses = r.get_u64vec();
  const std::uint32_t nby = r.get_u32();
  if (!r.ok || nby > (std::uint32_t{1} << 24)) return std::nullopt;
  s.max_accesses_by_inv.resize(nby);
  for (auto& v : s.max_accesses_by_inv) v = r.get_u64vec();
  if (!r.ok) return std::nullopt;
  return s;
}

struct ParsedBatch {
  std::uint32_t base = 0;
  std::uint32_t count = 0;
  std::uint64_t end_offset = 0;
  std::vector<std::uint8_t> payload;  // kept encoded; decoded on feed
};

std::optional<ParsedBatch> parse_batch_header(const LogRecord& rec) {
  Reader r{rec.payload.data(), rec.payload.size()};
  ParsedBatch b;
  b.base = r.get_u32();
  b.count = r.get_u32();
  if (!r.ok) return std::nullopt;
  b.end_offset = rec.end_offset;
  return b;
}

/// Feeds the batch's keys through `cb`; false on a malformed payload.
bool feed_batch(const LogRecord& rec,
                const FrontierCheckpoint::KeyCallback& cb) {
  Reader r{rec.payload.data(), rec.payload.size()};
  const std::uint32_t base = r.get_u32();
  const std::uint32_t count = r.get_u32();
  std::vector<std::uint64_t> words;
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::uint32_t parent = r.get_u32();
    words = r.get_u64vec();
    if (!r.ok) return false;
    cb(base + k, parent, words);
  }
  return r.ok;
}

}  // namespace

FrontierCheckpoint::FrontierCheckpoint(std::string dir)
    : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

FrontierCheckpoint::~FrontierCheckpoint() = default;

std::optional<FrontierSnapshot> FrontierCheckpoint::open(
    std::uint64_t fp_hi, std::uint64_t fp_lo, bool resume,
    const KeyCallback& key_cb) {
  // The writers validate the headers and truncate any torn tail; the reads
  // below then see only CRC-clean records.
  frontier_ = std::make_unique<RecordLogWriter>(frontier_path(dir_));
  arena_ = std::make_unique<RecordLogWriter>(arena_path(dir_));
  const LogContents fc = read_record_log(frontier_->path());
  const LogContents ac = read_record_log(arena_->path());

  // Index the arena batches: contiguous key coverage from id 0, and the
  // log offset at each batch boundary (snapshot boundaries align with batch
  // boundaries -- one batch is written per checkpoint).
  std::uint32_t keys_available = 0;
  std::vector<const LogRecord*> batches;
  std::vector<std::uint64_t> boundary_offset = {kRecordLogHeaderBytes};
  for (const LogRecord& rec : ac.records) {
    if (rec.tag != kTagKeyBatch) break;
    const auto b = parse_batch_header(rec);
    if (!b || b->base != keys_available) break;
    keys_available += b->count;
    batches.push_back(&rec);
    boundary_offset.push_back(rec.end_offset);
  }

  // Newest usable snapshot: fingerprint match, and every interned key
  // durable at a batch boundary.  A finished snapshot needs no keys.
  std::optional<FrontierSnapshot> chosen;
  std::uint64_t chosen_frontier_end = kRecordLogHeaderBytes;
  std::size_t chosen_batches = 0;
  if (resume) {
    for (const LogRecord& rec : fc.records) {
      if (rec.tag != kTagSnapshot) continue;
      auto snap = decode_snapshot(rec.payload);
      if (!snap || snap->fp_hi != fp_hi || snap->fp_lo != fp_lo) continue;
      if (snap->finished) {
        chosen = std::move(snap);
        return chosen;  // outcome stands on its own; logs untouched
      }
      std::uint32_t covered = 0;
      std::size_t nbatches = 0;
      while (nbatches < batches.size() && covered < snap->interned) {
        covered += parse_batch_header(*batches[nbatches])->count;
        ++nbatches;
      }
      if (covered != snap->interned) continue;  // keys lost past this one
      chosen = std::move(snap);
      chosen_frontier_end = rec.end_offset;
      chosen_batches = nbatches;
    }
  }

  if (!chosen) {
    frontier_->truncate_to(kRecordLogHeaderBytes);
    arena_->truncate_to(kRecordLogHeaderBytes);
    keys_on_disk_ = 0;
    return std::nullopt;
  }

  for (std::size_t k = 0; k < chosen_batches; ++k) {
    if (!feed_batch(*batches[k], key_cb)) {
      // CRC said clean but the payload shape is wrong: corrupt beyond
      // recovery -- start fresh rather than resume from garbage.
      frontier_->truncate_to(kRecordLogHeaderBytes);
      arena_->truncate_to(kRecordLogHeaderBytes);
      keys_on_disk_ = 0;
      return std::nullopt;
    }
  }
  frontier_->truncate_to(chosen_frontier_end);
  arena_->truncate_to(boundary_offset[chosen_batches]);
  keys_on_disk_ = chosen->interned;
  return chosen;
}

void FrontierCheckpoint::write_snapshot(const FrontierSnapshot& snap,
                                        const KeySource& src) {
  if (!frontier_ || !arena_) {
    throw std::runtime_error("FrontierCheckpoint: write before open");
  }
  if (snap.interned > keys_on_disk_) {
    std::vector<std::uint8_t> batch;
    put_u32(batch, keys_on_disk_);
    put_u32(batch, snap.interned - keys_on_disk_);
    std::uint32_t parent = 0;
    std::vector<std::uint64_t> words;
    for (std::uint32_t id = keys_on_disk_; id < snap.interned; ++id) {
      src(id, &parent, &words);
      put_u32(batch, parent);
      put_u64vec(batch, words);
    }
    arena_->append(kTagKeyBatch, batch.data(), batch.size());
    arena_->sync();  // keys durable BEFORE the snapshot referencing them
    keys_on_disk_ = snap.interned;
  }
  const std::vector<std::uint8_t> payload = encode_snapshot(snap);
  frontier_->append(kTagSnapshot, payload.data(), payload.size());
  frontier_->sync();
}

void FrontierCheckpoint::write_final(const FrontierSnapshot& snap) {
  if (!frontier_ || !arena_) {
    throw std::runtime_error("FrontierCheckpoint: write before open");
  }
  // The finished record embeds the whole outcome; the manifest and the
  // snapshot history have nothing left to add, so compact them away.
  arena_->truncate_to(kRecordLogHeaderBytes);
  frontier_->truncate_to(kRecordLogHeaderBytes);
  keys_on_disk_ = 0;
  const std::vector<std::uint8_t> payload = encode_snapshot(snap);
  frontier_->append(kTagSnapshot, payload.data(), payload.size());
  frontier_->sync();
}

CheckpointInfo FrontierCheckpoint::info(const std::string& dir) {
  CheckpointInfo out;
  const LogContents fc = read_record_log(frontier_path(dir));
  const LogContents ac = read_record_log(arena_path(dir));
  out.frontier_bytes = fc.file_bytes;
  out.arena_bytes = ac.file_bytes;
  out.dropped_bytes = fc.dropped_bytes + ac.dropped_bytes;
  if (!fc.present) return out;
  for (const LogRecord& rec : fc.records) {
    if (rec.tag != kTagSnapshot) continue;
    auto snap = decode_snapshot(rec.payload);
    if (!snap) continue;
    ++out.snapshots;
    out.present = true;
    out.finished = snap->finished;
    out.fp_hi = snap->fp_hi;
    out.fp_lo = snap->fp_lo;
    out.configs = snap->configs;
    out.edges = snap->edges;
    out.terminals = snap->terminals;
    out.interned = snap->interned;
    out.frames = static_cast<std::uint32_t>(snap->frames.size());
  }
  return out;
}

}  // namespace wfregs::storage
