#include "wfregs/storage/record_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace wfregs::storage {

namespace {

constexpr char kHeader[8] = {'W', 'F', 'R', 'L', 'O', 'G', '0', '1'};
constexpr std::uint32_t kRecordMagic = 0x31524657u;  // "WFR1" little-endian
/// magic + tag + payload_len + crc32.
constexpr std::size_t kRecordHeaderBytes = 4 + 4 + 4 + 4;

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int k = 0; k < 4; ++k) v |= static_cast<std::uint32_t>(p[k]) << (8 * k);
  return v;
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
  for (int k = 0; k < 4; ++k) p[k] = (v >> (8 * k)) & 0xFF;
}

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("record log: write failed: ") +
                               std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

std::vector<std::uint8_t> read_whole(int fd) {
  std::vector<std::uint8_t> data;
  std::array<std::uint8_t, 65536> buf;
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("record log: read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) break;
    data.insert(data.end(), buf.data(), buf.data() + n);
  }
  return data;
}

/// Longest valid record prefix of data[pos..); appends parsed records.
std::size_t parse_records(const std::uint8_t* data, std::size_t size,
                          std::size_t pos, std::vector<LogRecord>* out) {
  while (pos < size) {
    if (size - pos < kRecordHeaderBytes) break;  // torn header
    const std::uint8_t* rec = data + pos;
    if (load_u32(rec) != kRecordMagic) break;  // corrupt magic
    const std::uint32_t payload_len = load_u32(rec + 8);
    if (size - pos - kRecordHeaderBytes < payload_len) break;  // torn payload
    const std::uint8_t* payload = rec + kRecordHeaderBytes;
    if (crc32(payload, payload_len) != load_u32(rec + 12)) break;  // corrupt
    LogRecord record;
    record.tag = load_u32(rec + 4);
    record.payload.assign(payload, payload + payload_len);
    pos += kRecordHeaderBytes + payload_len;
    record.end_offset = pos;
    out->push_back(std::move(record));
  }
  return pos;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[n] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t k = 0; k < size; ++k) {
    c = table[(c ^ data[k]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

LogContents read_record_log(const std::string& path) {
  LogContents out;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return out;  // missing: present == false, zero bytes
  std::vector<std::uint8_t> data;
  try {
    data = read_whole(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  out.file_bytes = data.size();
  if (data.size() < kRecordLogHeaderBytes ||
      std::memcmp(data.data(), kHeader, sizeof(kHeader)) != 0) {
    return out;  // not a record log
  }
  out.present = true;
  const std::size_t committed = parse_records(
      data.data(), data.size(), kRecordLogHeaderBytes, &out.records);
  out.dropped_bytes = data.size() - committed;
  return out;
}

RecordLogWriter::RecordLogWriter(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("record log: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  std::vector<std::uint8_t> data = read_whole(fd_);
  if (data.empty()) {
    write_all(fd_, reinterpret_cast<const std::uint8_t*>(kHeader),
              sizeof(kHeader));
    file_bytes_ = sizeof(kHeader);
    return;
  }
  if (data.size() < kRecordLogHeaderBytes ||
      std::memcmp(data.data(), kHeader, sizeof(kHeader)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("record log: " + path_ +
                             " is not a record log (bad header)");
  }
  std::vector<LogRecord> records;
  const std::size_t committed = parse_records(
      data.data(), data.size(), kRecordLogHeaderBytes, &records);
  truncate_to(committed);
}

RecordLogWriter::~RecordLogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void RecordLogWriter::append(std::uint32_t tag, const std::uint8_t* payload,
                             std::size_t payload_len) {
  std::vector<std::uint8_t> rec(kRecordHeaderBytes + payload_len);
  store_u32(rec.data(), kRecordMagic);
  store_u32(rec.data() + 4, tag);
  store_u32(rec.data() + 8, static_cast<std::uint32_t>(payload_len));
  store_u32(rec.data() + 12, crc32(payload, payload_len));
  std::memcpy(rec.data() + kRecordHeaderBytes, payload, payload_len);
  write_all(fd_, rec.data(), rec.size());
  file_bytes_ += rec.size();
}

void RecordLogWriter::sync() {
  if (::fdatasync(fd_) != 0 && errno != EINVAL && errno != ENOSYS) {
    throw std::runtime_error(std::string("record log: fdatasync failed: ") +
                             std::strerror(errno));
  }
}

void RecordLogWriter::truncate_to(std::uint64_t bytes) {
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    throw std::runtime_error(std::string("record log: truncate failed: ") +
                             std::strerror(errno));
  }
  if (::lseek(fd_, static_cast<off_t>(bytes), SEEK_SET) < 0) {
    throw std::runtime_error(std::string("record log: seek failed: ") +
                             std::strerror(errno));
  }
  file_bytes_ = bytes;
}

}  // namespace wfregs::storage
