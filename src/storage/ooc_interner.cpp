#include "wfregs/storage/ooc_interner.hpp"

#include <algorithm>

namespace wfregs::storage {

OocInterner::OocInterner(SpillArena* arena, std::size_t keyframe_interval)
    : codec_(arena, keyframe_interval) {
  slots_.assign(64, 0);
  mask_ = slots_.size() - 1;
}

std::uint32_t OocInterner::find(std::span<const std::uint64_t> words,
                                std::uint64_t hash) const {
  std::size_t slot = hash & mask_;
  while (slots_[slot] != 0) {
    const std::uint32_t id = slots_[slot] - 1;
    if (hashes_[id] == hash && codec_.word_count(id) == words.size()) {
      codec_.decode_into(id, probe_scratch_);
      if (std::equal(words.begin(), words.end(), probe_scratch_.begin())) {
        return id;
      }
    }
    slot = (slot + 1) & mask_;
  }
  return kNotFound;
}

std::uint32_t OocInterner::intern(std::span<const std::uint64_t> words,
                                  std::uint64_t hash, std::uint32_t parent,
                                  std::span<const std::uint64_t> parent_words) {
  std::size_t slot = hash & mask_;
  while (slots_[slot] != 0) {
    const std::uint32_t id = slots_[slot] - 1;
    if (hashes_[id] == hash && codec_.word_count(id) == words.size()) {
      codec_.decode_into(id, probe_scratch_);
      if (std::equal(words.begin(), words.end(), probe_scratch_.begin())) {
        return id;
      }
    }
    slot = (slot + 1) & mask_;
  }
  const std::uint32_t id = codec_.append(words, parent, parent_words);
  hashes_.push_back(hash);
  slots_[slot] = id + 1;
  if ((hashes_.size() + 1) * 10 >= slots_.size() * 7) grow();
  return id;
}

void OocInterner::grow() {
  std::vector<std::uint32_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, 0);
  mask_ = slots_.size() - 1;
  for (const std::uint32_t v : old) {
    if (v == 0) continue;
    std::size_t slot = hashes_[v - 1] & mask_;
    while (slots_[slot] != 0) slot = (slot + 1) & mask_;
    slots_[slot] = v;
  }
}

std::size_t OocInterner::memory_bytes() const {
  return slots_.capacity() * sizeof(std::uint32_t) +
         hashes_.capacity() * sizeof(std::uint64_t) + codec_.memory_bytes();
}

}  // namespace wfregs::storage
