#include "wfregs/storage/delta_codec.hpp"

#include <cstring>
#include <stdexcept>

namespace wfregs::storage {

DeltaCodec::DeltaCodec(SpillArena* arena, std::size_t keyframe_interval)
    : arena_(arena),
      keyframe_interval_(keyframe_interval < 1 ? 1 : keyframe_interval) {}

std::uint32_t DeltaCodec::append(std::span<const std::uint64_t> words,
                                 std::uint32_t parent,
                                 std::span<const std::uint64_t> parent_words) {
  if (words.size() > 0xffff) {
    throw std::runtime_error("DeltaCodec: key too long");
  }
  const std::uint32_t id = static_cast<std::uint32_t>(meta_.size());
  Meta m;
  m.parent = parent;
  m.nwords = static_cast<std::uint16_t>(words.size());
  raw_words_ += words.size();

  bool keyframe = true;
  if (parent != kNoParent && parent < id) {
    const Meta& pm = meta_[parent];
    if (pm.nwords == words.size() && pm.chain + 1 < keyframe_interval_) {
      if (parent_words.empty()) {
        decode_into(parent, parent_scratch_);
        parent_words = parent_scratch_;
      }
      // Delta candidate: (index, value) pairs where the key differs from
      // the parent's.  Worth storing only when strictly smaller than the
      // keyframe it replaces.
      pair_scratch_.clear();
      for (std::size_t k = 0; k < words.size(); ++k) {
        if (words[k] != parent_words[k]) {
          pair_scratch_.push_back(static_cast<std::uint64_t>(k));
          pair_scratch_.push_back(words[k]);
        }
      }
      if (pair_scratch_.size() < words.size()) {
        m.npairs = static_cast<std::uint16_t>(pair_scratch_.size() / 2);
        m.chain = pm.chain + 1;
        m.handle = arena_->append(pair_scratch_);
        encoded_words_ += pair_scratch_.size();
        keyframe = false;
      }
    }
  }
  if (keyframe) {
    m.npairs = 0;
    m.chain = 0;
    m.handle = arena_->append(words);
    encoded_words_ += words.size();
    ++keyframes_;
  }
  meta_.push_back(m);
  return id;
}

void DeltaCodec::decode_into(std::uint32_t id,
                             std::vector<std::uint64_t>& out) const {
  // Walk up to the nearest keyframe, then replay the deltas youngest-last.
  chain_scratch_.clear();
  std::uint32_t cur = id;
  while (meta_[cur].npairs != 0) {
    chain_scratch_.push_back(cur);
    cur = meta_[cur].parent;
  }
  const Meta& kf = meta_[cur];
  const auto base = arena_->view(kf.handle, kf.nwords);
  out.assign(base.begin(), base.end());
  for (std::size_t k = chain_scratch_.size(); k-- > 0;) {
    const Meta& dm = meta_[chain_scratch_[k]];
    const auto pairs =
        arena_->view(dm.handle, static_cast<std::size_t>(dm.npairs) * 2);
    for (std::size_t j = 0; j < pairs.size(); j += 2) {
      out[static_cast<std::size_t>(pairs[j])] = pairs[j + 1];
    }
  }
}

}  // namespace wfregs::storage
