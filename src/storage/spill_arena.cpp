#include "wfregs/storage/spill_arena.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <limits>
#include <stdexcept>

namespace wfregs::storage {

namespace {

// Process-global residency accounting (see ArenaGlobalStats).  Relaxed is
// enough: readers want recent totals, not a consistent cut.
std::atomic<std::uint64_t> g_total{0};
std::atomic<std::uint64_t> g_resident{0};
std::atomic<std::uint64_t> g_max_resident{0};
std::atomic<std::uint64_t> g_evictions{0};

void note_resident_delta(std::int64_t bytes) {
  const std::uint64_t now =
      g_resident.fetch_add(static_cast<std::uint64_t>(bytes),
                           std::memory_order_relaxed) +
      static_cast<std::uint64_t>(bytes);
  std::uint64_t seen = g_max_resident.load(std::memory_order_relaxed);
  while (now > seen && !g_max_resident.compare_exchange_weak(
                           seen, now, std::memory_order_relaxed)) {
  }
}

std::size_t page_size() {
  static const std::size_t page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

}  // namespace

ArenaGlobalStats arena_global_stats() noexcept {
  ArenaGlobalStats s;
  s.total_bytes = g_total.load(std::memory_order_relaxed);
  s.resident_bytes = g_resident.load(std::memory_order_relaxed);
  s.spilled_bytes = s.total_bytes - s.resident_bytes;
  s.max_resident_bytes = g_max_resident.load(std::memory_order_relaxed);
  s.evictions = g_evictions.load(std::memory_order_relaxed);
  return s;
}

SpillArena::SpillArena(Options options) : dir_(options.dir) {
  const std::size_t page = page_size();
  segment_bytes_ = options.segment_bytes < page
                       ? page
                       : (options.segment_bytes + page - 1) / page * page;
  words_per_segment_ = segment_bytes_ / sizeof(std::uint64_t);
  budget_bytes_ = options.budget_bytes;
  if (budget_bytes_ != 0 && dir_.empty()) {
    // A budget without a spill directory gets a private scratch dir: the
    // whole point of the budget is eviction, which needs file backing.
    namespace fs = std::filesystem;
    const std::string base =
        (fs::temp_directory_path() /
         ("wfregs-spill-" + std::to_string(::getpid())))
            .string();
    std::string candidate = base;
    for (int k = 0; fs::exists(candidate); ++k) {
      candidate = base + "-" + std::to_string(k);
    }
    dir_ = candidate;
    owns_dir_ = true;
  }
  if (!dir_.empty()) {
    std::filesystem::create_directories(dir_);
    file_backed_ = true;
  }
  if (budget_bytes_ != 0 && budget_bytes_ < 2 * segment_bytes_) {
    budget_bytes_ = 2 * segment_bytes_;
  }
}

SpillArena::~SpillArena() {
  for (std::size_t k = 0; k < segments_.size(); ++k) {
    Segment& seg = segments_[k];
    if (seg.base != nullptr) {
      if (seg.resident) note_resident_delta(-static_cast<std::int64_t>(
                            segment_bytes_));
      ::munmap(seg.base, segment_bytes_);
    }
    g_total.fetch_sub(segment_bytes_, std::memory_order_relaxed);
    if (file_backed_) {
      std::error_code ec;
      std::filesystem::remove(
          std::filesystem::path(dir_) / ("seg-" + std::to_string(k)), ec);
    }
  }
  if (owns_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
}

void SpillArena::new_segment() {
  void* base = MAP_FAILED;
  if (file_backed_) {
    const std::string path =
        (std::filesystem::path(dir_) /
         ("seg-" + std::to_string(segments_.size())))
            .string();
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      throw std::runtime_error("SpillArena: cannot open " + path + ": " +
                               std::strerror(errno));
    }
    if (::ftruncate(fd, static_cast<off_t>(segment_bytes_)) != 0) {
      ::close(fd);
      throw std::runtime_error("SpillArena: cannot size " + path + ": " +
                               std::strerror(errno));
    }
    base = ::mmap(nullptr, segment_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                  fd, 0);
    ::close(fd);  // the mapping keeps the file alive
  } else {
    base = ::mmap(nullptr, segment_bytes_, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  }
  if (base == MAP_FAILED) {
    throw std::runtime_error(std::string("SpillArena: mmap failed: ") +
                             std::strerror(errno));
  }
  Segment seg;
  seg.base = static_cast<std::uint64_t*>(base);
  seg.last_touch = ++tick_;
  segments_.push_back(seg);
  tail_used_ = 0;
  ++stats_.segments;
  stats_.total_bytes += segment_bytes_;
  stats_.resident_bytes += segment_bytes_;
  g_total.fetch_add(segment_bytes_, std::memory_order_relaxed);
  note_resident_delta(static_cast<std::int64_t>(segment_bytes_));
  enforce_budget(segments_.size() - 1);
}

void SpillArena::touch(std::size_t seg_idx) {
  Segment& seg = segments_[seg_idx];
  seg.last_touch = ++tick_;
  if (!seg.resident) {
    // The pages fault back in from the backing file on access; account the
    // whole segment as resident again and make room for it.
    seg.resident = true;
    stats_.resident_bytes += segment_bytes_;
    stats_.spilled_bytes -= segment_bytes_;
    ++stats_.refaults;
    note_resident_delta(static_cast<std::int64_t>(segment_bytes_));
    enforce_budget(seg_idx);
  }
}

void SpillArena::enforce_budget(std::size_t protect) {
  if (!file_backed_ || budget_bytes_ == 0) return;
  while (stats_.resident_bytes > budget_bytes_) {
    // Evict the least-recently-touched resident segment, never the one just
    // touched (`protect`) and never the append target (the last segment) --
    // its tail is still being written.
    std::size_t victim = segments_.size();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t k = 0; k + 1 < segments_.size(); ++k) {
      if (k == protect || !segments_[k].resident) continue;
      if (segments_[k].last_touch < oldest) {
        oldest = segments_[k].last_touch;
        victim = k;
      }
    }
    if (victim == segments_.size()) return;  // nothing evictable
    Segment& seg = segments_[victim];
    // MADV_DONTNEED on a MAP_SHARED file mapping drops this process's page
    // frames (RSS falls); dirty pages move to the page cache / backing
    // file, from which the next access refaults.
    if (::madvise(seg.base, segment_bytes_, MADV_DONTNEED) != 0) {
      throw std::runtime_error(std::string("SpillArena: madvise failed: ") +
                               std::strerror(errno));
    }
    seg.resident = false;
    stats_.resident_bytes -= segment_bytes_;
    stats_.spilled_bytes += segment_bytes_;
    ++stats_.evictions;
    note_resident_delta(-static_cast<std::int64_t>(segment_bytes_));
    g_evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t SpillArena::append(std::span<const std::uint64_t> words) {
  if (words.size() > words_per_segment_) {
    throw std::runtime_error("SpillArena: run larger than one segment");
  }
  if (segments_.empty() ||
      tail_used_ + words.size() > words_per_segment_) {
    new_segment();
  }
  const std::size_t seg_idx = segments_.size() - 1;
  touch(seg_idx);
  std::uint64_t* dst = segments_[seg_idx].base + tail_used_;
  std::memcpy(dst, words.data(), words.size() * sizeof(std::uint64_t));
  const std::uint64_t handle =
      static_cast<std::uint64_t>(seg_idx) * words_per_segment_ + tail_used_;
  tail_used_ += words.size();
  words_appended_ += words.size();
  return handle;
}

std::span<const std::uint64_t> SpillArena::view(std::uint64_t handle,
                                                std::size_t nwords) {
  const std::size_t seg_idx =
      static_cast<std::size_t>(handle / words_per_segment_);
  const std::size_t off = static_cast<std::size_t>(handle % words_per_segment_);
  touch(seg_idx);
  return {segments_[seg_idx].base + off, nwords};
}

}  // namespace wfregs::storage
