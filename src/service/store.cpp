#include "wfregs/service/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "wfregs/runtime/config_intern.hpp"
#include "wfregs/storage/record_log.hpp"

namespace wfregs::service {

namespace {

constexpr char kHeader[8] = {'W', 'F', 'V', 'S', 'T', 'O', 'R', '1'};
constexpr std::uint32_t kRecordMagic = 0x31564657u;  // "WFV1" little-endian
/// magic + payload_len + key_hi + key_lo + crc32.
constexpr std::size_t kRecordHeaderBytes = 4 + 4 + 8 + 8 + 4;

/// Standard CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320): the
/// canonical implementation now lives in the storage layer (shared with the
/// checkpoint record logs); the byte format is unchanged.
using storage::crc32;

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int k = 0; k < 4; ++k) v |= static_cast<std::uint32_t>(p[k]) << (8 * k);
  return v;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int k = 0; k < 8; ++k) v |= static_cast<std::uint64_t>(p[k]) << (8 * k);
  return v;
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
  for (int k = 0; k < 4; ++k) p[k] = (v >> (8 * k)) & 0xFF;
}

void store_u64(std::uint8_t* p, std::uint64_t v) {
  for (int k = 0; k < 8; ++k) p[k] = (v >> (8 * k)) & 0xFF;
}

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("VerdictStore: write failed: ") +
                               std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

std::uint64_t key_probe_hash(const JobKey& key) {
  const std::array<std::uint64_t, 2> words = {key.hi, key.lo};
  return config_hash_words(words);
}

}  // namespace

std::size_t parse_store_records(const std::uint8_t* data, std::size_t size,
                                std::vector<StoreRecord>* out) {
  std::size_t pos = 0;
  while (pos < size) {
    if (size - pos < kRecordHeaderBytes) break;  // torn header
    const std::uint8_t* rec = data + pos;
    if (load_u32(rec) != kRecordMagic) break;  // corrupt magic
    const std::uint32_t payload_len = load_u32(rec + 4);
    if (size - pos - kRecordHeaderBytes < payload_len) break;  // torn
    StoreRecord record;
    record.key.hi = load_u64(rec + 8);
    record.key.lo = load_u64(rec + 16);
    const std::uint32_t crc = load_u32(rec + 24);
    const std::uint8_t* payload = rec + kRecordHeaderBytes;
    if (crc32(payload, payload_len) != crc) break;  // corrupt payload
    record.payload.assign(payload, payload + payload_len);
    out->push_back(std::move(record));
    pos += kRecordHeaderBytes + payload_len;
  }
  return pos;
}

bool check_store_header(const std::uint8_t* data, std::size_t size) {
  static_assert(sizeof(kHeader) == kStoreHeaderBytes);
  return size >= sizeof(kHeader) &&
         std::memcmp(data, kHeader, sizeof(kHeader)) == 0;
}

VerdictStore::VerdictStore(std::string path) : path_(std::move(path)) {
  slots_.assign(64, 0);
  mask_ = slots_.size() - 1;
  if (path_.empty()) return;
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("VerdictStore: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  replay();
}

VerdictStore::~VerdictStore() {
  if (fd_ >= 0) ::close(fd_);
}

void VerdictStore::replay() {
  // Read the whole file; an empty file gets the header written, anything
  // else must start with it.
  std::vector<std::uint8_t> data;
  {
    std::array<std::uint8_t, 65536> buf;
    for (;;) {
      const ssize_t n = ::read(fd_, buf.data(), buf.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("VerdictStore: read failed: ") +
                                 std::strerror(errno));
      }
      if (n == 0) break;
      data.insert(data.end(), buf.data(), buf.data() + n);
    }
  }
  if (data.empty()) {
    write_all(fd_, reinterpret_cast<const std::uint8_t*>(kHeader),
              sizeof(kHeader));
    file_bytes_ = sizeof(kHeader);
    return;
  }
  if (!check_store_header(data.data(), data.size())) {
    throw std::runtime_error("VerdictStore: " + path_ +
                             " is not a verdict log (bad header)");
  }

  std::vector<StoreRecord> records;
  const std::size_t committed =
      sizeof(kHeader) + parse_store_records(data.data() + sizeof(kHeader),
                                            data.size() - sizeof(kHeader),
                                            &records);
  for (StoreRecord& record : records) {
    // Committed record: index it (last writer wins on duplicate keys).
    const std::uint32_t slot = find_slot(record.key);
    if (slots_[slot] != 0) {
      payloads_[slots_[slot] - 1] = std::move(record.payload);
    } else {
      keys_.push_back(record.key);
      payloads_.push_back(std::move(record.payload));
      index_insert(record.key, static_cast<std::uint32_t>(keys_.size()));
    }
  }
  if (committed < data.size()) {
    // Torn or corrupt tail: drop it so the next append lands on a clean
    // record boundary.
    recovered_drop_ = 1;
    if (::ftruncate(fd_, static_cast<off_t>(committed)) != 0) {
      throw std::runtime_error(
          std::string("VerdictStore: truncate failed: ") +
          std::strerror(errno));
    }
  }
  if (::lseek(fd_, static_cast<off_t>(committed), SEEK_SET) < 0) {
    throw std::runtime_error(std::string("VerdictStore: seek failed: ") +
                             std::strerror(errno));
  }
  file_bytes_ = committed;
}

std::uint32_t VerdictStore::find_slot(const JobKey& key) const {
  std::size_t slot = key_probe_hash(key) & mask_;
  while (slots_[slot] != 0 && !(keys_[slots_[slot] - 1] == key)) {
    slot = (slot + 1) & mask_;
  }
  return static_cast<std::uint32_t>(slot);
}

void VerdictStore::index_insert(const JobKey& key, std::uint32_t id) {
  if ((keys_.size() + 1) * 4 >= slots_.size() * 3) grow();
  slots_[find_slot(key)] = id;
}

void VerdictStore::grow() {
  std::vector<std::uint32_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, 0);
  mask_ = slots_.size() - 1;
  for (const std::uint32_t id : old) {
    if (id != 0) slots_[find_slot(keys_[id - 1])] = id;
  }
}

std::optional<Verdict> VerdictStore::lookup(const JobKey& key) const {
  const std::uint32_t slot = find_slot(key);
  if (slots_[slot] == 0) return std::nullopt;
  const std::vector<std::uint8_t>& bytes = payloads_[slots_[slot] - 1];
  return decode_verdict(bytes.data(), bytes.size());
}

std::optional<std::vector<std::uint8_t>> VerdictStore::lookup_encoded(
    const JobKey& key) const {
  const std::uint32_t slot = find_slot(key);
  if (slots_[slot] == 0) return std::nullopt;
  return payloads_[slots_[slot] - 1];
}

void VerdictStore::put(const JobKey& key, const Verdict& verdict) {
  put_encoded(key, encode_verdict(verdict));
}

void VerdictStore::put_encoded(const JobKey& key,
                               std::vector<std::uint8_t> payload) {
  // Validate before committing: a malformed payload (a corrupt replication
  // frame, a bad merge source) must fail loudly, not poison the log.
  decode_verdict(payload.data(), payload.size());
  append_record(key, payload);
  const std::uint32_t slot = find_slot(key);
  if (slots_[slot] != 0) {
    payloads_[slots_[slot] - 1] = std::move(payload);
  } else {
    keys_.push_back(key);
    payloads_.push_back(std::move(payload));
    index_insert(key, static_cast<std::uint32_t>(keys_.size()));
  }
}

bool VerdictStore::merge_encoded(const JobKey& key,
                                 const std::vector<std::uint8_t>& payload) {
  const std::uint32_t slot = find_slot(key);
  if (slots_[slot] != 0 && payloads_[slots_[slot] - 1] == payload) {
    return false;  // idempotent: identical record already committed
  }
  put_encoded(key, payload);
  return true;
}

std::vector<JobKey> VerdictStore::keys() const {
  std::vector<JobKey> out;
  out.reserve(keys_.size());
  for (const std::uint32_t id : slots_) {
    if (id != 0) out.push_back(keys_[id - 1]);
  }
  return out;
}

void VerdictStore::append_record(const JobKey& key,
                                 const std::vector<std::uint8_t>& payload) {
  if (fd_ < 0) return;
  std::vector<std::uint8_t> rec(kRecordHeaderBytes + payload.size());
  store_u32(rec.data(), kRecordMagic);
  store_u32(rec.data() + 4, static_cast<std::uint32_t>(payload.size()));
  store_u64(rec.data() + 8, key.hi);
  store_u64(rec.data() + 16, key.lo);
  store_u32(rec.data() + 24, crc32(payload.data(), payload.size()));
  std::memcpy(rec.data() + kRecordHeaderBytes, payload.data(), payload.size());
  // One write() per record: the kernel sees the whole record at once, so a
  // SIGKILL between records never tears one (a machine crash can still
  // leave a prefix, which replay() truncates).
  write_all(fd_, rec.data(), rec.size());
  file_bytes_ += rec.size();
}

}  // namespace wfregs::service
