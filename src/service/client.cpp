#include "wfregs/service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "wfregs/service/protocol.hpp"

namespace wfregs::service {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("Client: bad socket path: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("Client: socket: ") +
                             std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("Client: cannot connect to " + socket_path +
                             ": " + err);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::roundtrip(std::uint8_t type, const std::string& payload) {
  Frame request;
  request.type = static_cast<FrameType>(type);
  request.payload = payload;
  write_frame(fd_, request);
  std::optional<Frame> reply = read_frame(fd_);
  if (!reply) throw std::runtime_error("Client: daemon closed the connection");
  if (reply->type == FrameType::kError) {
    throw std::runtime_error("Client: daemon error: " + reply->payload);
  }
  if (reply->type != FrameType::kReply) {
    throw std::runtime_error("Client: unexpected reply frame type");
  }
  return std::move(reply->payload);
}

std::string Client::submit(const std::string& job_text) {
  return roundtrip(static_cast<std::uint8_t>(FrameType::kSubmit), job_text);
}

std::string Client::poll(const std::string& key_hex) {
  return roundtrip(static_cast<std::uint8_t>(FrameType::kPoll), key_hex);
}

std::string Client::wait(const std::string& key_hex,
                         std::chrono::milliseconds interval) {
  for (;;) {
    std::string reply = poll(key_hex);
    const bool pending =
        reply.find("\"status\":\"queued\"") != std::string::npos ||
        reply.find("\"status\":\"running\"") != std::string::npos;
    if (!pending) return reply;
    std::this_thread::sleep_for(interval);
  }
}

std::string Client::stats() {
  return roundtrip(static_cast<std::uint8_t>(FrameType::kStats), "");
}

std::string Client::shutdown() {
  return roundtrip(static_cast<std::uint8_t>(FrameType::kShutdown), "");
}

}  // namespace wfregs::service
