#include "wfregs/service/client.hpp"

#include <unistd.h>

#include <stdexcept>
#include <thread>

#include "wfregs/service/protocol.hpp"
#include "wfregs/service/transport.hpp"

namespace wfregs::service {

Client::Client(const std::string& endpoint) {
  fd_ = connect_endpoint(parse_endpoint(endpoint));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::roundtrip(std::uint8_t type, const std::string& payload) {
  Frame request;
  request.type = static_cast<FrameType>(type);
  request.payload = payload;
  write_frame(fd_, request);
  std::optional<Frame> reply = read_frame(fd_);
  if (!reply) throw std::runtime_error("Client: daemon closed the connection");
  if (reply->type == FrameType::kError) {
    throw std::runtime_error("Client: daemon error: " + reply->payload);
  }
  if (reply->type != FrameType::kReply) {
    throw std::runtime_error("Client: unexpected reply frame type");
  }
  return std::move(reply->payload);
}

std::string Client::submit(const std::string& job_text) {
  return roundtrip(static_cast<std::uint8_t>(FrameType::kSubmit), job_text);
}

std::string Client::submit_batch(const std::vector<std::string>& job_texts) {
  return roundtrip(static_cast<std::uint8_t>(FrameType::kBatchSubmit),
                   pack_batch(job_texts));
}

std::string Client::poll(const std::string& key_hex) {
  return roundtrip(static_cast<std::uint8_t>(FrameType::kPoll), key_hex);
}

std::string Client::poll_batch(const std::vector<std::string>& key_hexes) {
  return roundtrip(static_cast<std::uint8_t>(FrameType::kBatchPoll),
                   pack_batch(key_hexes));
}

std::string Client::wait(const std::string& key_hex,
                         std::chrono::milliseconds interval) {
  for (;;) {
    std::string reply = poll(key_hex);
    const bool pending =
        reply.find("\"status\":\"queued\"") != std::string::npos ||
        reply.find("\"status\":\"running\"") != std::string::npos;
    if (!pending) return reply;
    std::this_thread::sleep_for(interval);
  }
}

std::string Client::stats() {
  return roundtrip(static_cast<std::uint8_t>(FrameType::kStats), "");
}

std::string Client::shutdown() {
  return roundtrip(static_cast<std::uint8_t>(FrameType::kShutdown), "");
}

}  // namespace wfregs::service
