#include "wfregs/service/job.hpp"

#include <sstream>
#include <stdexcept>

#include "wfregs/runtime/config_intern.hpp"
#include "wfregs/typesys/serialize.hpp"

namespace wfregs::service {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char ch : text) {
    if (ch == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

[[noreturn]] void fail_at(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("parse_job: line " + std::to_string(line_no + 1) +
                           ": " + what);
}

}  // namespace

std::string job_key_hex(const JobKey& key) {
  static const char* hex = "0123456789abcdef";
  std::string out(32, '0');
  for (int k = 0; k < 16; ++k) {
    out[15 - k] = hex[(key.hi >> (4 * k)) & 0xF];
    out[31 - k] = hex[(key.lo >> (4 * k)) & 0xF];
  }
  return out;
}

JobKey parse_job_key(const std::string& hex) {
  if (hex.size() != 32) {
    throw std::runtime_error("parse_job_key: expected 32 hex digits");
  }
  JobKey key;
  for (int k = 0; k < 32; ++k) {
    const char ch = hex[k];
    std::uint64_t nib = 0;
    if (ch >= '0' && ch <= '9') {
      nib = ch - '0';
    } else if (ch >= 'a' && ch <= 'f') {
      nib = 10 + (ch - 'a');
    } else if (ch >= 'A' && ch <= 'F') {
      nib = 10 + (ch - 'A');
    } else {
      throw std::runtime_error("parse_job_key: non-hex digit");
    }
    if (k < 16) {
      key.hi = (key.hi << 4) | nib;
    } else {
      key.lo = (key.lo << 4) | nib;
    }
  }
  return key;
}

std::string print_job(const VerifyJob& job) {
  if (!job.impl) throw std::runtime_error("print_job: null implementation");
  std::ostringstream out;
  out << "job " << job_kind_name(job.kind) << "\n";
  // Emitted only when set: job texts (and so keys) from before the flag
  // existed stay stable.
  if (job.static_power) out << "static-power\n";
  if (job.kind == JobKind::kRegular) out << "values " << job.values << "\n";
  if (job.kind != JobKind::kConsensus) {
    for (std::size_t p = 0; p < job.scripts.size(); ++p) {
      out << "script " << p;
      for (const InvId inv : job.scripts[p]) out << " " << inv;
      out << "\n";
    }
  }
  out << print_verify_options(job.options, job.precheck);
  out << print_implementation(*job.impl);
  return out.str();
}

VerifyJob parse_job(const std::string& text) {
  const std::vector<std::string> lines = split_lines(text);
  std::size_t i = 0;
  // Skip leading blanks/comments (print_job emits none, but be tolerant on
  // the way in -- the canonical key is always formed from print_job output).
  auto skip_blank = [&] {
    while (i < lines.size() &&
           (lines[i].empty() || lines[i][0] == '#')) {
      ++i;
    }
  };
  skip_blank();
  if (i >= lines.size()) throw std::runtime_error("parse_job: empty input");

  VerifyJob job;
  {
    std::istringstream in(lines[i]);
    std::string tag, kind;
    in >> tag >> kind;
    if (tag != "job") fail_at(i, "expected 'job <kind>'");
    if (kind == "linearizable") {
      job.kind = JobKind::kLinearizable;
    } else if (kind == "regular") {
      job.kind = JobKind::kRegular;
    } else if (kind == "consensus") {
      job.kind = JobKind::kConsensus;
    } else {
      fail_at(i, "unknown job kind '" + kind + "'");
    }
    ++i;
  }
  skip_blank();
  if (i < lines.size() && lines[i] == "static-power") {
    job.static_power = true;
    ++i;
    skip_blank();
  }
  if (job.kind == JobKind::kRegular) {
    if (i >= lines.size()) fail_at(i, "expected 'values <n>'");
    std::istringstream in(lines[i]);
    std::string tag;
    if (!(in >> tag >> job.values) || tag != "values") {
      fail_at(i, "expected 'values <n>'");
    }
    ++i;
    skip_blank();
  }
  while (i < lines.size() && lines[i].rfind("script ", 0) == 0) {
    std::istringstream in(lines[i]);
    std::string tag;
    std::size_t port = 0;
    if (!(in >> tag >> port)) fail_at(i, "expected 'script <port> ...'");
    if (port != job.scripts.size()) {
      fail_at(i, "script ports must be dense and in order");
    }
    std::vector<InvId> script;
    InvId inv = 0;
    while (in >> inv) script.push_back(inv);
    if (!in.eof()) fail_at(i, "malformed invocation id");
    job.scripts.push_back(std::move(script));
    ++i;
    skip_blank();
  }

  // Options block: `options` ... `end options`.
  if (i >= lines.size() || lines[i] != "options") {
    fail_at(i, "expected 'options' block");
  }
  std::string options_text;
  bool options_closed = false;
  for (; i < lines.size(); ++i) {
    options_text += lines[i];
    options_text += '\n';
    if (lines[i] == "end options") {
      ++i;
      options_closed = true;
      break;
    }
  }
  if (!options_closed) fail_at(i, "unterminated options block");
  job.options = parse_verify_options(options_text, &job.precheck);

  // Everything left is the implementation.
  std::string impl_text;
  for (; i < lines.size(); ++i) {
    impl_text += lines[i];
    impl_text += '\n';
  }
  job.impl = parse_implementation(impl_text);
  return job;
}

JobKey hash_job_text(const std::string& text) {
  // Pack the bytes little-endian into 64-bit words (zero-padded), append the
  // byte length as a final word so texts differing only in trailing NULs
  // cannot collide, then run two independently salted config_hash_words
  // chains for the two key halves.
  std::vector<std::uint64_t> words;
  words.reserve(text.size() / 8 + 2);
  std::uint64_t w = 0;
  int shift = 0;
  for (const char ch : text) {
    w |= static_cast<std::uint64_t>(static_cast<unsigned char>(ch)) << shift;
    shift += 8;
    if (shift == 64) {
      words.push_back(w);
      w = 0;
      shift = 0;
    }
  }
  if (shift != 0) words.push_back(w);
  words.push_back(text.size());

  auto chain = [&](std::uint64_t salt) {
    std::uint64_t h =
        config_mix64(0x9e3779b97f4a7c15ULL ^ salt ^ words.size());
    for (const std::uint64_t word : words) {
      h = config_mix64(h ^ config_mix64(word ^ salt));
    }
    return h;
  };
  JobKey key;
  key.lo = chain(0);
  key.hi = chain(0x6a09e667f3bcc909ULL);
  return key;
}

JobKey job_key(const VerifyJob& job) { return hash_job_text(print_job(job)); }

}  // namespace wfregs::service
