#include "wfregs/service/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "wfregs/service/protocol.hpp"

namespace wfregs::service {

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  if (options_.socket_path.empty()) {
    throw std::runtime_error("Daemon: empty socket path");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("Daemon: socket path too long: " +
                             options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("Daemon: socket: ") +
                             std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a crash
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("Daemon: cannot listen on " +
                             options_.socket_path + ": " + err);
  }
  scheduler_ = std::make_unique<JobScheduler>(options_.scheduler);
}

Daemon::~Daemon() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(options_.socket_path.c_str());
}

std::uint64_t Daemon::run() {
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> handlers;
  std::mutex conn_mu;
  std::vector<int> open_fds;

  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("Daemon: poll: ") +
                               std::strerror(errno));
    }
    if (r == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      continue;  // transient accept failure: keep serving
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu);
      open_fds.push_back(fd);
    }
    handlers.emplace_back([this, fd, &served, &conn_mu, &open_fds] {
      handle_connection(fd, &served);
      std::lock_guard<std::mutex> lock(conn_mu);
      open_fds.erase(std::find(open_fds.begin(), open_fds.end(), fd));
      ::close(fd);
    });
  }

  // Unblock any handler still parked in read_frame(), then join them all
  // before draining the scheduler.
  {
    std::lock_guard<std::mutex> lock(conn_mu);
    for (const int fd : open_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : handlers) t.join();
  scheduler_->drain();
  return served.load(std::memory_order_relaxed);
}

void Daemon::handle_connection(int fd, std::atomic<std::uint64_t>* served) {
  try {
    for (;;) {
      std::optional<Frame> request = read_frame(fd);
      if (!request) return;  // clean EOF
      bool shutdown_requested = false;
      Frame reply;
      try {
        reply.type = FrameType::kReply;
        reply.payload = handle_request(*request, &shutdown_requested);
      } catch (const std::exception& e) {
        reply.type = FrameType::kError;
        reply.payload = e.what();
      }
      write_frame(fd, reply);
      served->fetch_add(1, std::memory_order_relaxed);
      if (shutdown_requested) {
        request_stop();
        return;
      }
    }
  } catch (const std::exception&) {
    // Torn connection or protocol violation: drop the connection, keep the
    // daemon alive.
  }
}

std::string Daemon::handle_request(const Frame& request, bool* shutdown) {
  std::ostringstream out;
  switch (request.type) {
    case FrameType::kSubmit: {
      const VerifyJob job = parse_job(request.payload);
      const Submitted s = scheduler_->try_submit(job);
      out << "{\"key\":\"" << job_key_hex(s.key) << "\",\"status\":\"";
      if (s.cached) {
        out << "cached\",\"verdict\":" << verdict_to_json(s.result.get());
      } else if (s.coalesced) {
        out << "coalesced\"";
      } else if (s.rejected) {
        out << "rejected\"";
      } else {
        out << "queued\"";
      }
      out << "}";
      return out.str();
    }
    case FrameType::kPoll: {
      const JobKey key = parse_job_key(request.payload);
      const std::optional<JobStatus> status = scheduler_->poll(key);
      out << "{\"key\":\"" << job_key_hex(key) << "\",\"status\":\"";
      if (!status) {
        out << "unknown\"}";
        return out.str();
      }
      out << job_state_name(status->state) << "\",\"from_cache\":"
          << (status->from_cache ? 1 : 0);
      if (status->state == JobState::kDone ||
          status->state == JobState::kCancelled ||
          status->state == JobState::kFailed) {
        out << ",\"verdict\":" << verdict_to_json(status->verdict);
      }
      out << "}";
      return out.str();
    }
    case FrameType::kStats:
      return metrics_to_json(scheduler_->metrics());
    case FrameType::kShutdown:
      *shutdown = true;
      return "{\"status\":\"draining\"}";
    default:
      throw std::runtime_error("unknown request frame type");
  }
}

}  // namespace wfregs::service
