#include "wfregs/service/daemon.hpp"

#include <unistd.h>

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "wfregs/service/protocol.hpp"

namespace wfregs::service {

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  if (options_.socket_path.empty() && options_.tcp.empty()) {
    throw std::runtime_error("Daemon: no listener configured");
  }
  loop_ = std::make_unique<EventLoop>(EventLoop::Handlers{
      /*on_open=*/{},
      /*on_frame=*/
      [this](std::uint64_t conn, Frame&& frame) {
        on_frame(conn, std::move(frame));
      },
      /*on_close=*/{}});
  if (!options_.socket_path.empty()) {
    Endpoint ep;
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = options_.socket_path;
    loop_->add_listener(listen_endpoint(ep));
  }
  if (!options_.tcp.empty()) {
    const Endpoint ep = parse_endpoint(options_.tcp);
    if (ep.kind != Endpoint::Kind::kTcp) {
      throw std::runtime_error("Daemon: tcp option must be a tcp: endpoint");
    }
    const int fd = listen_endpoint(ep);
    tcp_port_ = local_tcp_port(fd);
    loop_->add_listener(fd);
  }
  scheduler_ = std::make_unique<JobScheduler>(options_.scheduler);
}

Daemon::~Daemon() {
  loop_.reset();  // close fds before unlinking the socket
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
}

std::uint64_t Daemon::run() {
  while (!stopping_) {
    if (stop_.load(std::memory_order_acquire)) stopping_ = true;
    loop_->step(std::chrono::milliseconds(100));
  }
  // Final replies (the shutdown acknowledgement included) must reach their
  // clients before the scheduler drain blocks us.
  loop_->flush_all(std::chrono::milliseconds(500));
  scheduler_->drain();
  return served_;
}

void Daemon::on_frame(std::uint64_t conn, Frame&& frame) {
  bool shutdown_requested = false;
  Frame reply;
  try {
    reply.type = FrameType::kReply;
    reply.payload = handle_request(frame, &shutdown_requested);
  } catch (const std::exception& e) {
    reply.type = FrameType::kError;
    reply.payload = e.what();
  }
  loop_->send(conn, reply);
  ++served_;
  if (shutdown_requested) stopping_ = true;
}

std::string Daemon::submit_one(const std::string& text) {
  const VerifyJob job = parse_job(text);
  const Submitted s = scheduler_->try_submit(job);
  std::ostringstream out;
  out << "{\"key\":\"" << job_key_hex(s.key) << "\",\"status\":\"";
  if (s.cached) {
    out << "cached\",\"verdict\":" << verdict_to_json(s.result.get());
  } else if (s.coalesced) {
    out << "coalesced\"";
  } else if (s.rejected) {
    out << "rejected\"";
  } else {
    out << "queued\"";
  }
  out << "}";
  return out.str();
}

std::string Daemon::poll_one(const std::string& hex) {
  const JobKey key = parse_job_key(hex);
  const std::optional<JobStatus> status = scheduler_->poll(key);
  std::ostringstream out;
  out << "{\"key\":\"" << job_key_hex(key) << "\",\"status\":\"";
  if (!status) {
    out << "unknown\"}";
    return out.str();
  }
  out << job_state_name(status->state)
      << "\",\"from_cache\":" << (status->from_cache ? 1 : 0);
  if (status->state == JobState::kDone ||
      status->state == JobState::kCancelled ||
      status->state == JobState::kFailed) {
    out << ",\"verdict\":" << verdict_to_json(status->verdict);
  }
  out << "}";
  return out.str();
}

std::string Daemon::handle_request(const Frame& request, bool* shutdown) {
  switch (request.type) {
    case FrameType::kSubmit:
      return submit_one(request.payload);
    case FrameType::kPoll:
      return poll_one(request.payload);
    case FrameType::kBatchSubmit: {
      const std::vector<std::string> items = unpack_batch(request.payload);
      std::ostringstream out;
      out << "[";
      for (std::size_t k = 0; k < items.size(); ++k) {
        if (k) out << ",";
        out << submit_one(items[k]);
      }
      out << "]";
      return out.str();
    }
    case FrameType::kBatchPoll: {
      const std::vector<std::string> items = unpack_batch(request.payload);
      std::ostringstream out;
      out << "[";
      for (std::size_t k = 0; k < items.size(); ++k) {
        if (k) out << ",";
        out << poll_one(items[k]);
      }
      out << "]";
      return out.str();
    }
    case FrameType::kStats:
      return metrics_to_json(scheduler_->metrics());
    case FrameType::kShutdown:
      *shutdown = true;
      return "{\"status\":\"draining\"}";
    default:
      throw std::runtime_error("unknown request frame type");
  }
}

}  // namespace wfregs::service
