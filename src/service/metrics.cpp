#include "wfregs/service/metrics.hpp"

#include <sstream>

namespace wfregs::service {

std::string metrics_to_json(const Metrics& m) {
  std::ostringstream out;
  out << "{\"submitted\":" << m.submitted
      << ",\"cache_hits\":" << m.cache_hits
      << ",\"cache_misses\":" << m.cache_misses
      << ",\"coalesced\":" << m.coalesced
      << ",\"rejected\":" << m.rejected
      << ",\"completed\":" << m.completed
      << ",\"static_decisions\":" << m.static_decisions
      << ",\"cancelled\":" << m.cancelled
      << ",\"failed\":" << m.failed
      << ",\"evictions\":" << m.evictions
      << ",\"queue_depth\":" << m.queue_depth
      << ",\"in_flight\":" << m.in_flight
      << ",\"store_records\":" << m.store_records
      << ",\"store_bytes\":" << m.store_bytes
      << ",\"lookup_ns_total\":" << m.lookup_ns_total
      << ",\"lookup_count\":" << m.lookup_count
      << ",\"queue_ns_total\":" << m.queue_ns_total
      << ",\"queue_count\":" << m.queue_count
      << ",\"run_ns_total\":" << m.run_ns_total
      << ",\"run_count\":" << m.run_count
      << ",\"append_ns_total\":" << m.append_ns_total
      << ",\"append_count\":" << m.append_count << "}";
  return out.str();
}

}  // namespace wfregs::service
