#include "wfregs/service/metrics.hpp"

#include <cstdint>
#include <sstream>

namespace wfregs::service {

namespace {

/// Extracts the unsigned integer following `"name":` in a flat JSON
/// object; 0 when absent.  Enough for metrics_to_json output -- the only
/// JSON this module ever reads back.
std::uint64_t json_field(const std::string& json, const char* name) {
  const std::string needle = std::string("\"") + name + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return 0;
  std::uint64_t v = 0;
  for (std::size_t k = at + needle.size(); k < json.size(); ++k) {
    const char c = json[k];
    if (c < '0' || c > '9') break;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

std::string metrics_to_json(const Metrics& m) {
  std::ostringstream out;
  out << "{\"submitted\":" << m.submitted
      << ",\"cache_hits\":" << m.cache_hits
      << ",\"cache_misses\":" << m.cache_misses
      << ",\"coalesced\":" << m.coalesced
      << ",\"rejected\":" << m.rejected
      << ",\"completed\":" << m.completed
      << ",\"static_decisions\":" << m.static_decisions
      << ",\"cancelled\":" << m.cancelled
      << ",\"failed\":" << m.failed
      << ",\"evictions\":" << m.evictions
      << ",\"resumed_jobs\":" << m.resumed_jobs
      << ",\"partial_checkpoints\":" << m.partial_checkpoints
      << ",\"queue_depth\":" << m.queue_depth
      << ",\"in_flight\":" << m.in_flight
      << ",\"store_records\":" << m.store_records
      << ",\"store_bytes\":" << m.store_bytes
      << ",\"lookup_ns_total\":" << m.lookup_ns_total
      << ",\"lookup_count\":" << m.lookup_count
      << ",\"queue_ns_total\":" << m.queue_ns_total
      << ",\"queue_count\":" << m.queue_count
      << ",\"run_ns_total\":" << m.run_ns_total
      << ",\"run_count\":" << m.run_count
      << ",\"append_ns_total\":" << m.append_ns_total
      << ",\"append_count\":" << m.append_count
      << ",\"snapshot_retries\":" << m.snapshot_retries << "}";
  return out.str();
}

Metrics parse_metrics_json(const std::string& json) {
  Metrics m;
  m.submitted = json_field(json, "submitted");
  m.cache_hits = json_field(json, "cache_hits");
  m.cache_misses = json_field(json, "cache_misses");
  m.coalesced = json_field(json, "coalesced");
  m.rejected = json_field(json, "rejected");
  m.completed = json_field(json, "completed");
  m.static_decisions = json_field(json, "static_decisions");
  m.cancelled = json_field(json, "cancelled");
  m.failed = json_field(json, "failed");
  m.evictions = json_field(json, "evictions");
  m.resumed_jobs = json_field(json, "resumed_jobs");
  m.partial_checkpoints = json_field(json, "partial_checkpoints");
  m.queue_depth = json_field(json, "queue_depth");
  m.in_flight = json_field(json, "in_flight");
  m.store_records = json_field(json, "store_records");
  m.store_bytes = json_field(json, "store_bytes");
  m.lookup_ns_total = json_field(json, "lookup_ns_total");
  m.lookup_count = json_field(json, "lookup_count");
  m.queue_ns_total = json_field(json, "queue_ns_total");
  m.queue_count = json_field(json, "queue_count");
  m.run_ns_total = json_field(json, "run_ns_total");
  m.run_count = json_field(json, "run_count");
  m.append_ns_total = json_field(json, "append_ns_total");
  m.append_count = json_field(json, "append_count");
  m.snapshot_retries = json_field(json, "snapshot_retries");
  return m;
}

void accumulate_metrics(Metrics* into, const Metrics& m) {
  into->submitted += m.submitted;
  into->cache_hits += m.cache_hits;
  into->cache_misses += m.cache_misses;
  into->coalesced += m.coalesced;
  into->rejected += m.rejected;
  into->completed += m.completed;
  into->static_decisions += m.static_decisions;
  into->cancelled += m.cancelled;
  into->failed += m.failed;
  into->evictions += m.evictions;
  into->resumed_jobs += m.resumed_jobs;
  into->partial_checkpoints += m.partial_checkpoints;
  into->queue_depth += m.queue_depth;
  into->in_flight += m.in_flight;
  into->store_records += m.store_records;
  into->store_bytes += m.store_bytes;
  into->lookup_ns_total += m.lookup_ns_total;
  into->lookup_count += m.lookup_count;
  into->queue_ns_total += m.queue_ns_total;
  into->queue_count += m.queue_count;
  into->run_ns_total += m.run_ns_total;
  into->run_count += m.run_count;
  into->append_ns_total += m.append_ns_total;
  into->append_count += m.append_count;
  into->snapshot_retries += m.snapshot_retries;
}

}  // namespace wfregs::service
