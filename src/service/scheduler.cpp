#include "wfregs/service/scheduler.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "wfregs/analysis/consensus_power.hpp"
#include "wfregs/analysis/lint.hpp"
#include "wfregs/consensus/check.hpp"
#include "wfregs/runtime/regularity.hpp"
#include "wfregs/runtime/verify.hpp"

namespace wfregs::service {

namespace {

using Clock = std::chrono::steady_clock;

// Worker-side counter layout in JobScheduler::worker_stats_ (one wait-free
// writer slot per worker; kWorkerCounters must cover the last index).
constexpr std::size_t kWcCompleted = 0;
constexpr std::size_t kWcStaticDecisions = 1;
constexpr std::size_t kWcCancelled = 2;
constexpr std::size_t kWcFailed = 3;
constexpr std::size_t kWcEvictions = 4;
constexpr std::size_t kWcQueueNs = 5;
constexpr std::size_t kWcQueueCount = 6;
constexpr std::size_t kWcRunNs = 7;
constexpr std::size_t kWcRunCount = 8;
constexpr std::size_t kWcAppendNs = 9;
constexpr std::size_t kWcAppendCount = 10;
constexpr std::size_t kWcResumed = 11;
constexpr std::size_t kWcPartial = 12;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

std::shared_future<Verdict> ready_future(Verdict v) {
  std::promise<Verdict> p;
  p.set_value(std::move(v));
  return p.get_future().share();
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

struct JobScheduler::InFlight {
  VerifyJob job;
  JobKey key;
  JobState state = JobState::kQueued;
  std::atomic<bool> cancel{false};
  std::promise<Verdict> promise;
  std::shared_future<Verdict> future;
  Clock::time_point submitted_at;
  Clock::time_point deadline;
  bool has_deadline = false;
};

JobScheduler::Runner JobScheduler::default_runner(int explore_threads) {
  return [explore_threads](const VerifyJob& job,
                           const std::atomic<bool>& cancel) -> Verdict {
    VerifyOptions options = job.options;
    options.threads = explore_threads;
    options.limits.cancel = &cancel;
    if (job.precheck) options.static_precheck = analysis::static_precheck();
    Verdict v;
    v.kind = job.kind;
    switch (job.kind) {
      case JobKind::kLinearizable: {
        const VerifyResult r =
            verify_linearizable(job.impl, job.scripts, options);
        v.ok = r.ok;
        v.wait_free = r.wait_free;
        v.complete = r.complete;
        v.resumed = r.resumed;
        v.checkpointed = r.checkpointed;
        v.detail = r.detail;
        v.stats = r.stats;
        break;
      }
      case JobKind::kRegular: {
        const RegularVerifyResult r =
            verify_regular(job.impl, job.scripts, job.values, options);
        v.ok = r.ok;
        v.wait_free = r.wait_free;
        v.complete = r.complete;
        v.resumed = r.resumed;
        v.checkpointed = r.checkpointed;
        v.detail = r.detail;
        v.stats = r.stats;
        break;
      }
      case JobKind::kConsensus: {
        // The fast-path is installed INSIDE the runner (not at admission)
        // so cache lookups, coalescing and verdict storage see statically
        // decided jobs exactly like explored ones -- one code path, one
        // cache-coherence story; only provenance records the difference.
        if (job.static_power) {
          options.static_consensus = analysis::static_consensus_decider();
        }
        const consensus::ConsensusCheckResult r =
            consensus::check_consensus(job.impl, options);
        v.ok = r.solves;
        v.wait_free = r.wait_free;
        v.complete = r.complete;
        v.resumed = r.resumed;
        v.checkpointed = r.checkpointed;
        v.provenance = r.static_decision ? Provenance::kStatic
                                         : Provenance::kExplored;
        v.detail = r.detail;
        v.stats.configs = r.configs;
        v.stats.terminals = r.terminals;
        // The checker interns every configuration it counts (the explorers'
        // interned == configs contract holds per root, so it holds summed).
        v.stats.interned_configs = r.configs;
        v.stats.depth = r.depth;
        v.stats.max_accesses = r.max_accesses;
        v.stats.max_accesses_by_inv = r.max_accesses_by_inv;
        break;
      }
    }
    // A run cut short with a checkpoint on disk is resumable: mark the
    // verdict kPartial so poll()/history distinguish "lost work" from
    // "resubmit to continue".  Complete verdicts keep their provenance
    // (a resumed run's cached bytes must match a fresh run's).
    if (!v.complete && v.checkpointed) v.provenance = Provenance::kPartial;
    return v;
  };
}

JobScheduler::JobScheduler(SchedulerOptions options, Runner runner)
    : options_(options),
      runner_(runner ? std::move(runner)
                     : default_runner(options.explore_threads)),
      store_(options.store_path),
      worker_stats_(static_cast<std::size_t>(std::max(options.workers, 1)),
                    kWorkerCounters) {
  if (options_.workers < 1) options_.workers = 1;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back(
        [this, w] { worker_main(static_cast<std::size_t>(w)); });
  }
  timer_ = std::thread([this] { timer_main(); });
}

JobScheduler::~JobScheduler() { shutdown(); }

Submitted JobScheduler::submit(const VerifyJob& job) {
  Submitted s = admit(job, /*reject_when_full=*/false);
  return s;
}

Submitted JobScheduler::try_submit(const VerifyJob& job) {
  return admit(job, /*reject_when_full=*/true);
}

Submitted JobScheduler::admit(const VerifyJob& job, bool reject_when_full) {
  // Serialize + hash outside the lock (print_job can be sizeable).
  const JobKey key = job_key(job);
  Submitted out;
  out.key = key;

  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    throw std::runtime_error("JobScheduler: draining, submission refused");
  }

  // 1. Cache first.
  const Clock::time_point t0 = Clock::now();
  std::optional<Verdict> hit = store_.lookup(key);
  metrics_.lookup_ns_total += ns_between(t0, Clock::now());
  metrics_.lookup_count += 1;
  if (hit) {
    metrics_.submitted += 1;
    metrics_.cache_hits += 1;
    out.cached = true;
    out.result = ready_future(std::move(*hit));
    return out;
  }

  // 2. Coalesce with an identical queued/running job.
  for (const std::shared_ptr<InFlight>& f : inflight_) {
    if (f->key == key) {
      metrics_.submitted += 1;
      metrics_.coalesced += 1;
      out.coalesced = true;
      out.result = f->future;
      return out;
    }
  }

  // 3. Bounded queue.
  if (queue_.size() >= options_.queue_capacity) {
    metrics_.rejected += 1;
    if (!reject_when_full) {
      throw std::runtime_error("JobScheduler: submission queue full");
    }
    out.rejected = true;
    return out;
  }

  auto f = std::make_shared<InFlight>();
  f->job = job;
  f->key = key;
  f->future = f->promise.get_future().share();
  f->submitted_at = Clock::now();
  if (options_.default_deadline.count() > 0) {
    f->deadline = f->submitted_at + options_.default_deadline;
    f->has_deadline = true;
  }
  queue_.push_back(f);
  inflight_.push_back(f);
  metrics_.submitted += 1;
  metrics_.cache_misses += 1;
  out.result = f->future;
  lock.unlock();
  work_cv_.notify_one();
  if (f->has_deadline) timer_cv_.notify_one();
  return out;
}

std::string JobScheduler::job_checkpoint_dir(const JobKey& key) const {
  if (options_.storage.checkpoint_dir.empty()) return {};
  return options_.storage.checkpoint_dir + "/" + job_key_hex(key);
}

void JobScheduler::worker_main(std::size_t wid) {
  concurrent::StatsSnapshot::Writer w = worker_stats_.writer(wid);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    std::shared_ptr<InFlight> f = queue_.front();
    queue_.pop_front();
    f->state = JobState::kRunning;
    const Clock::time_point picked = Clock::now();
    lock.unlock();
    // Counter updates are wait-free writer-slot stores from here on --
    // mu_ now serializes admission and queue state only, never accounting.
    w.add(kWcQueueNs, ns_between(f->submitted_at, picked));
    w.add(kWcQueueCount, 1);

    Verdict v;
    JobState final_state = JobState::kDone;
    if (f->cancel.load(std::memory_order_relaxed)) {
      // Deadline expired (or shutdown) while still queued.
      v.kind = f->job.kind;
      v.complete = false;
      v.detail = "cancelled before running";
      final_state = JobState::kCancelled;
    } else {
      try {
        if (const std::string dir = job_checkpoint_dir(f->key);
            !dir.empty()) {
          // Out-of-core run: specialize the scheduler's storage template to
          // this job's content-addressed checkpoint directory, so a
          // resubmission of the same key resumes the same checkpoint.
          VerifyJob job = f->job;
          job.options.storage = options_.storage;
          job.options.storage.checkpoint_dir = dir;
          v = runner_(job, f->cancel);
        } else {
          v = runner_(f->job, f->cancel);
        }
        if (v.resumed) w.add(kWcResumed, 1);
        if (f->cancel.load(std::memory_order_relaxed) && !v.complete) {
          final_state = JobState::kCancelled;
          if (v.checkpointed) w.add(kWcPartial, 1);
          if (v.detail.empty()) {
            v.detail = v.provenance == Provenance::kPartial
                           ? "cancelled (deadline); checkpointed, resumable"
                           : "cancelled (deadline)";
          }
        }
      } catch (const std::exception& e) {
        v = Verdict{};
        v.kind = f->job.kind;
        v.complete = false;
        v.detail = e.what();
        final_state = JobState::kFailed;
      }
    }
    w.add(kWcRunNs, ns_between(picked, Clock::now()));
    w.add(kWcRunCount, 1);

    lock.lock();
    finish(f, std::move(v), final_state, w);
    // finish() released nothing; we still hold the lock for the next wait.
  }
}

void JobScheduler::finish(const std::shared_ptr<InFlight>& job, Verdict verdict,
                          JobState state,
                          concurrent::StatsSnapshot::Writer& w) {
  // Caller holds mu_ (for queue / inflight / store state; the counter
  // writes below touch only the worker's private staging slot).
  if (state == JobState::kDone && verdict.provenance == Provenance::kStatic) {
    w.add(kWcStaticDecisions, 1);
  }
  if (state == JobState::kDone && verdict.complete) {
    const Clock::time_point t0 = Clock::now();
    store_.put(job->key, verdict);
    w.add(kWcAppendNs, ns_between(t0, Clock::now()));
    w.add(kWcAppendCount, 1);
    w.add(kWcCompleted, 1);
    if (const std::string dir = job_checkpoint_dir(job->key); !dir.empty()) {
      // The verdict is cached; the checkpoint has nothing left to resume.
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  } else {
    // Incomplete / cancelled / failed verdicts never enter the store; keep
    // the outcome around for poll().
    if (state == JobState::kDone) {
      w.add(kWcCompleted, 1);
    } else if (state == JobState::kCancelled) {
      w.add(kWcCancelled, 1);
    } else {
      w.add(kWcFailed, 1);
    }
    remember_status(job->key, state, verdict, w);
  }
  job->state = state;
  inflight_.erase(std::find(inflight_.begin(), inflight_.end(), job));
  // Publish BEFORE fulfilling the promise: a caller whose future resolved
  // must see this job in metrics() (the seqlock publication is the release
  // edge a subsequent collect acquires).
  w.publish();
  job->promise.set_value(std::move(verdict));
  drain_cv_.notify_all();
}

void JobScheduler::remember_status(const JobKey& key, JobState state,
                                   const Verdict& verdict,
                                   concurrent::StatsSnapshot::Writer& w) {
  JobStatus status;
  status.state = state;
  status.verdict = verdict;
  recent_.emplace_back(key, std::move(status));
  while (recent_.size() > options_.status_history) {
    recent_.pop_front();
    w.add(kWcEvictions, 1);
  }
}

void JobScheduler::timer_main() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_ && queue_.empty() && inflight_.empty()) return;
    Clock::time_point next = Clock::time_point::max();
    for (const std::shared_ptr<InFlight>& f : inflight_) {
      if (f->has_deadline && f->deadline < next) next = f->deadline;
    }
    if (next == Clock::time_point::max()) {
      timer_cv_.wait(lock);
    } else {
      timer_cv_.wait_until(lock, next);
    }
    const Clock::time_point now = Clock::now();
    for (const std::shared_ptr<InFlight>& f : inflight_) {
      if (f->has_deadline && f->deadline <= now) {
        f->cancel.store(true, std::memory_order_relaxed);
      }
    }
  }
}

std::optional<Verdict> JobScheduler::lookup(const JobKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_.lookup(key);
}

std::optional<JobStatus> JobScheduler::poll(const JobKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::shared_ptr<InFlight>& f : inflight_) {
    if (f->key == key) {
      JobStatus status;
      status.state = f->state;
      return status;
    }
  }
  // Most recent uncacheable outcome wins.
  for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
    if (it->first == key) return it->second;
  }
  if (std::optional<Verdict> v = store_.lookup(key)) {
    JobStatus status;
    status.state = JobState::kDone;
    status.from_cache = true;
    status.verdict = std::move(*v);
    return status;
  }
  return std::nullopt;
}

Metrics JobScheduler::metrics() const {
  // Worker-side counters first, without mu_: the collect reads a
  // consistent cut of every worker's published record and never stalls a
  // worker (workers publish wait-free and don't retry either).
  concurrent::ContentionCounters cc;
  const std::vector<std::uint64_t> totals = worker_stats_.collect(&cc);
  const std::uint64_t retries =
      collect_retries_.fetch_add(cc.snapshot_retries,
                                 std::memory_order_relaxed) +
      cc.snapshot_retries;

  std::lock_guard<std::mutex> lock(mu_);
  Metrics m = metrics_;
  m.resumed_jobs = totals[kWcResumed];
  m.partial_checkpoints = totals[kWcPartial];
  m.completed = totals[kWcCompleted];
  m.static_decisions = totals[kWcStaticDecisions];
  m.cancelled = totals[kWcCancelled];
  m.failed = totals[kWcFailed];
  m.evictions = totals[kWcEvictions];
  m.queue_ns_total = totals[kWcQueueNs];
  m.queue_count = totals[kWcQueueCount];
  m.run_ns_total = totals[kWcRunNs];
  m.run_count = totals[kWcRunCount];
  m.append_ns_total = totals[kWcAppendNs];
  m.append_count = totals[kWcAppendCount];
  m.snapshot_retries = retries;
  m.queue_depth = queue_.size();
  m.in_flight = inflight_.size() - queue_.size();
  m.store_records = store_.size();
  m.store_bytes = store_.file_bytes();
  return m;
}

void JobScheduler::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;  // already drained
    stopping_ = true;
    if (cancel_all_) {
      for (const std::shared_ptr<InFlight>& f : inflight_) {
        f->cancel.store(true, std::memory_order_relaxed);
      }
    }
  }
  work_cv_.notify_all();
  timer_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  timer_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
}

void JobScheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancel_all_ = true;
  }
  drain();
}

}  // namespace wfregs::service
