#include "wfregs/service/fleet.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "wfregs/service/job.hpp"
#include "wfregs/service/verdict.hpp"

namespace wfregs::service {

namespace {

/// Worker names land in JSON keys; keep them to a safe alphabet.
std::string sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::uint64_t parse_u64(const std::string& s) {
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return 0;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

std::string fleet_metrics_to_json(const FleetMetrics& m,
                                  const Metrics& fleet_totals) {
  std::ostringstream out;
  out << "{\"role\":\"coordinator\",\"workers\":" << m.workers
      << ",\"submitted\":" << m.submitted
      << ",\"batch_frames\":" << m.batch_frames
      << ",\"cache_hits\":" << m.cache_hits
      << ",\"dispatched\":" << m.dispatched << ",\"steals\":" << m.steals
      << ",\"admission_rejections\":" << m.admission_rejections
      << ",\"completed\":" << m.completed << ",\"failed\":" << m.failed
      << ",\"requeued\":" << m.requeued
      << ",\"merged_records\":" << m.merged_records
      << ",\"sync_frames\":" << m.sync_frames
      << ",\"queue_depth\":" << m.queue_depth
      << ",\"in_flight\":" << m.in_flight << ",\"hits_by_origin\":{";
  bool first = true;
  for (const auto& [name, hits] : m.hits_by_origin) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << hits;
  }
  out << "},\"fleet_totals\":" << metrics_to_json(fleet_totals) << "}";
  return out.str();
}

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)), store_(options_.store_path) {
  if (options_.listen.empty() && options_.listen_tcp.empty()) {
    throw std::runtime_error("Coordinator: no listener configured");
  }
  loop_ = std::make_unique<EventLoop>(EventLoop::Handlers{
      /*on_open=*/{},
      /*on_frame=*/
      [this](std::uint64_t conn, Frame&& frame) {
        on_frame(conn, std::move(frame));
      },
      /*on_close=*/[this](std::uint64_t conn) { on_close(conn); }});
  const auto add = [this](const std::string& spec) {
    const Endpoint ep = parse_endpoint(spec);
    const int fd = listen_endpoint(ep);
    if (ep.kind == Endpoint::Kind::kTcp) tcp_port_ = local_tcp_port(fd);
    loop_->add_listener(fd);
  };
  if (!options_.listen.empty()) add(options_.listen);
  if (!options_.listen_tcp.empty()) add(options_.listen_tcp);
  // Records already in the store predate every worker: their hits are
  // attributed to "local".
  for (const JobKey& key : store_.keys()) {
    origin_.emplace(key_pair(key), "local");
  }
}

Coordinator::~Coordinator() = default;

std::uint64_t Coordinator::run() {
  using clock = std::chrono::steady_clock;
  bool drain_timer_set = false;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) stopping_ = true;
    if (stopping_ && !drain_timer_set) {
      drain_deadline_ = clock::now() + options_.drain_grace;
      drain_timer_set = true;
    }
    if (stopping_ && !workers_notified_ &&
        (pending_.empty() || clock::now() >= drain_deadline_)) {
      // Pending work is done (or the grace expired): tell every worker to
      // drain and go; they answer with a final sync and close.
      for (const auto& [conn, w] : workers_) {
        (void)w;
        loop_->send(conn, Frame{FrameType::kShutdown, ""});
      }
      workers_notified_ = true;
      drain_deadline_ = clock::now() + options_.drain_grace;
    }
    if (workers_notified_ &&
        (workers_.empty() || clock::now() >= drain_deadline_)) {
      break;
    }
    loop_->step(options_.poll_interval);
  }
  loop_->flush_all(std::chrono::milliseconds(500));
  return served_;
}

void Coordinator::on_frame(std::uint64_t conn, Frame&& frame) {
  ++served_;
  try {
    switch (frame.type) {
      case FrameType::kWorkerHello:
      case FrameType::kWorkerResult:
      case FrameType::kWorkerSync:
        handle_worker_frame(conn, frame);
        return;
      case FrameType::kSubmit: {
        const std::string reply = handle_submit_one(frame.payload);
        loop_->send(conn, Frame{FrameType::kReply, reply});
        dispatch();
        return;
      }
      case FrameType::kBatchSubmit: {
        ++fleet_.batch_frames;
        const std::vector<std::string> items = unpack_batch(frame.payload);
        std::ostringstream out;
        out << "[";
        for (std::size_t k = 0; k < items.size(); ++k) {
          if (k) out << ",";
          out << handle_submit_one(items[k]);
        }
        out << "]";
        loop_->send(conn, Frame{FrameType::kReply, out.str()});
        dispatch();
        return;
      }
      case FrameType::kPoll:
        loop_->send(conn,
                    Frame{FrameType::kReply, handle_poll_one(frame.payload)});
        return;
      case FrameType::kBatchPoll: {
        ++fleet_.batch_frames;
        const std::vector<std::string> items = unpack_batch(frame.payload);
        std::ostringstream out;
        out << "[";
        for (std::size_t k = 0; k < items.size(); ++k) {
          if (k) out << ",";
          out << handle_poll_one(items[k]);
        }
        out << "]";
        loop_->send(conn, Frame{FrameType::kReply, out.str()});
        return;
      }
      case FrameType::kStats:
        loop_->send(conn, Frame{FrameType::kReply, stats_json()});
        return;
      case FrameType::kShutdown:
        stopping_ = true;
        loop_->send(conn,
                    Frame{FrameType::kReply, "{\"status\":\"draining\"}"});
        return;
      default:
        throw std::runtime_error("unknown request frame type");
    }
  } catch (const std::exception& e) {
    loop_->send(conn, Frame{FrameType::kError, e.what()});
  }
}

std::string Coordinator::handle_submit_one(const std::string& text) {
  // Re-canonicalize: the key must be the hash of print_job output, whatever
  // whitespace the client sent (parse_job also validates the text).
  const VerifyJob job = parse_job(text);
  const std::string canonical = print_job(job);
  const JobKey key = hash_job_text(canonical);
  std::ostringstream out;
  out << "{\"key\":\"" << job_key_hex(key) << "\",\"status\":\"";
  if (const auto encoded = store_.lookup_encoded(key)) {
    ++fleet_.cache_hits;
    ++hits_by_origin_[origin_of(key)];
    const Verdict v = decode_verdict(encoded->data(), encoded->size());
    out << "cached\",\"verdict\":" << verdict_to_json(v) << "}";
    return out.str();
  }
  if (pending_.count(key_pair(key)) != 0) {
    out << "coalesced\"}";
    return out.str();
  }
  if (stopping_ || total_pending() >= options_.admission_capacity) {
    // Bounded admission: the client retries later (protocol EAGAIN).
    ++fleet_.admission_rejections;
    out << "rejected\"}";
    return out.str();
  }
  ++fleet_.submitted;
  PendingJob p;
  p.text = canonical;
  if (worker_order_.empty()) {
    p.where = Where::kOrphan;
    orphan_.push_back(key);
  } else {
    const std::size_t idx = (key.hi ^ key.lo) % worker_order_.size();
    p.where = Where::kWorkerQueue;
    p.conn = worker_order_[idx];
    workers_[p.conn].queue.push_back(key);
  }
  pending_[key_pair(key)] = std::move(p);
  out << "queued\"}";
  return out.str();
}

std::string Coordinator::handle_poll_one(const std::string& hex) const {
  const JobKey key = parse_job_key(hex);
  std::ostringstream out;
  out << "{\"key\":\"" << job_key_hex(key) << "\",\"status\":\"";
  if (const auto encoded = store_.lookup_encoded(key)) {
    const Verdict v = decode_verdict(encoded->data(), encoded->size());
    out << "done\",\"from_cache\":1,\"verdict\":" << verdict_to_json(v)
        << "}";
    return out.str();
  }
  const auto pit = pending_.find(key_pair(key));
  if (pit != pending_.end()) {
    out << (pit->second.where == Where::kInflight ? "running" : "queued")
        << "\"}";
    return out.str();
  }
  for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
    if (it->first == key_pair(key)) {
      out << it->second.first << "\",\"from_cache\":0,\"verdict\":"
          << it->second.second << "}";
      return out.str();
    }
  }
  out << "unknown\"}";
  return out.str();
}

void Coordinator::handle_worker_frame(std::uint64_t conn,
                                      const Frame& frame) {
  if (frame.type == FrameType::kWorkerHello) {
    const std::vector<std::string> parts = unpack_batch(frame.payload);
    WorkerState w;
    std::string name = parts.empty() ? "" : sanitize_name(parts[0]);
    if (name.empty()) name = "w" + std::to_string(next_worker_id_);
    ++next_worker_id_;
    // Names key hits_by_origin: keep them unique.
    for (const auto& [c2, w2] : workers_) {
      (void)c2;
      if (w2.name == name) {
        name += "-" + std::to_string(next_worker_id_);
        break;
      }
    }
    w.name = name;
    w.window = options_.max_inflight_per_worker;
    const std::uint64_t cap = parts.size() > 1 ? parse_u64(parts[1]) : 0;
    if (cap > 0 && cap < w.window) w.window = static_cast<std::size_t>(cap);
    workers_[conn] = std::move(w);
    worker_order_.push_back(conn);
    loop_->send(conn, Frame{FrameType::kWorkerWelcome, pack_batch({name})});
    dispatch();  // a new worker drains the orphan queue
    return;
  }

  const auto wit = workers_.find(conn);
  if (wit == workers_.end()) {
    throw std::runtime_error("frame from unregistered worker");
  }
  WorkerState& w = wit->second;

  if (frame.type == FrameType::kWorkerResult) {
    const std::vector<std::string> parts = unpack_batch(frame.payload);
    if (parts.size() != 3) {
      throw std::runtime_error("malformed worker result frame");
    }
    const JobKey key = parse_job_key(parts[0]);
    const auto ii = std::find(w.inflight.begin(), w.inflight.end(), key);
    if (ii != w.inflight.end()) w.inflight.erase(ii);
    const std::string& state = parts[1];
    if (state == "rejected") {
      // The worker's own queue bounced it: back to the orphan queue.
      const auto pit = pending_.find(key_pair(key));
      if (pit != pending_.end()) {
        pit->second.where = Where::kOrphan;
        orphan_.push_back(key);
        ++fleet_.requeued;
      }
    } else if (state == "done") {
      pending_.erase(key_pair(key));
      std::vector<std::uint8_t> bytes(parts[2].begin(), parts[2].end());
      // merge (not put): a sync may have landed the record already, and the
      // log must not grow on the duplicate.
      if (store_.merge_encoded(key, bytes)) record_origin(key, w.name);
      ++fleet_.completed;
    } else {
      pending_.erase(key_pair(key));
      std::string verdict_json = "{}";
      if (!parts[2].empty()) {
        const auto* data =
            reinterpret_cast<const std::uint8_t*>(parts[2].data());
        verdict_json = verdict_to_json(decode_verdict(data, parts[2].size()));
      }
      remember_status(key, state, verdict_json);
      ++fleet_.failed;
    }
    dispatch();
    return;
  }

  // kWorkerSync: metrics snapshot + record-log tail.
  const std::vector<std::string> parts = unpack_batch(frame.payload);
  if (parts.size() != 2) {
    throw std::runtime_error("malformed worker sync frame");
  }
  w.last = parse_metrics_json(parts[0]);
  w.synced = true;
  ++fleet_.sync_frames;
  std::vector<StoreRecord> records;
  parse_store_records(reinterpret_cast<const std::uint8_t*>(parts[1].data()),
                      parts[1].size(), &records);
  for (const StoreRecord& record : records) {
    if (store_.merge_encoded(record.key, record.payload)) {
      ++fleet_.merged_records;
      record_origin(record.key, w.name);
    }
  }
}

void Coordinator::dispatch() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (const std::uint64_t conn : worker_order_) {
      WorkerState& w = workers_[conn];
      if (w.inflight.size() >= w.window) continue;
      JobKey key;
      bool have = false;
      bool stolen = false;
      if (!w.queue.empty()) {
        key = w.queue.front();
        w.queue.pop_front();
        have = true;
      } else if (!orphan_.empty()) {
        // Unowned work first: draining the orphan queue is not a steal.
        key = orphan_.front();
        orphan_.pop_front();
        have = true;
      } else {
        WorkerState* victim = nullptr;
        for (auto& [c2, w2] : workers_) {
          if (c2 == conn || w2.queue.empty()) continue;
          if (victim == nullptr || w2.queue.size() > victim->queue.size()) {
            victim = &w2;
          }
        }
        if (victim != nullptr) {
          key = victim->queue.front();
          victim->queue.pop_front();
          have = true;
          stolen = true;
        }
      }
      if (!have) continue;
      if (stolen) ++fleet_.steals;
      assign(conn, &w, key);
      progress = true;
    }
  }
}

void Coordinator::assign(std::uint64_t conn, WorkerState* w,
                         const JobKey& key) {
  const auto pit = pending_.find(key_pair(key));
  if (pit == pending_.end()) return;  // already resolved (defensive)
  loop_->send(conn, Frame{FrameType::kAssign,
                          pack_batch({job_key_hex(key), pit->second.text})});
  pit->second.where = Where::kInflight;
  pit->second.conn = conn;
  w->inflight.push_back(key);
  ++fleet_.dispatched;
}

void Coordinator::on_close(std::uint64_t conn) {
  const auto wit = workers_.find(conn);
  if (wit == workers_.end()) return;  // clients come and go silently
  if (wit->second.synced) accumulate_metrics(&departed_totals_, wit->second.last);
  requeue_worker_jobs(conn, &wit->second);
  worker_order_.erase(
      std::find(worker_order_.begin(), worker_order_.end(), conn));
  workers_.erase(wit);
  if (!stopping_) dispatch();
}

void Coordinator::requeue_worker_jobs(std::uint64_t conn, WorkerState* w) {
  (void)conn;
  const auto back_to_orphan = [this](const JobKey& key) {
    const auto pit = pending_.find(key_pair(key));
    if (pit == pending_.end()) return;
    pit->second.where = Where::kOrphan;
    orphan_.push_back(key);
    ++fleet_.requeued;
  };
  for (const JobKey& key : w->queue) back_to_orphan(key);
  for (const JobKey& key : w->inflight) back_to_orphan(key);
  w->queue.clear();
  w->inflight.clear();
}

void Coordinator::record_origin(const JobKey& key, const std::string& origin) {
  origin_.emplace(key_pair(key), origin);
}

const std::string& Coordinator::origin_of(const JobKey& key) const {
  static const std::string kLocal = "local";
  const auto it = origin_.find(key_pair(key));
  return it == origin_.end() ? kLocal : it->second;
}

void Coordinator::remember_status(const JobKey& key, const std::string& state,
                                  const std::string& verdict_json) {
  recent_.emplace_back(key_pair(key), std::make_pair(state, verdict_json));
  while (recent_.size() > options_.status_history) recent_.pop_front();
}

std::string Coordinator::stats_json() const {
  return fleet_metrics_to_json(metrics(), fleet_totals());
}

FleetMetrics Coordinator::metrics() const {
  FleetMetrics m = fleet_;
  m.workers = workers_.size();
  m.queue_depth = orphan_.size();
  m.in_flight = 0;
  for (const auto& [conn, w] : workers_) {
    (void)conn;
    m.queue_depth += w.queue.size();
    m.in_flight += w.inflight.size();
  }
  for (const auto& [name, hits] : hits_by_origin_) {
    m.hits_by_origin.emplace_back(name, hits);
  }
  return m;
}

Metrics Coordinator::fleet_totals() const {
  Metrics totals = departed_totals_;
  for (const auto& [conn, w] : workers_) {
    (void)conn;
    if (w.synced) accumulate_metrics(&totals, w.last);
  }
  return totals;
}

Worker::Worker(WorkerOptions options) : options_(std::move(options)) {
  scheduler_ =
      std::make_unique<JobScheduler>(options_.scheduler, options_.runner);
}

Worker::~Worker() = default;

std::uint64_t Worker::run() {
  const Endpoint ep = parse_endpoint(options_.connect);
  int fd = -1;
  const auto connect_deadline =
      std::chrono::steady_clock::now() + options_.connect_timeout;
  for (;;) {
    try {
      fd = connect_endpoint(ep);
      break;
    } catch (const std::exception& e) {
      if (std::chrono::steady_clock::now() >= connect_deadline) {
        throw std::runtime_error("Worker: cannot connect to " +
                                 options_.connect + ": " + e.what());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  bool shutdown = false;
  bool conn_lost = false;
  try {
    write_frame(
        fd, Frame{FrameType::kWorkerHello,
                  pack_batch({options_.name,
                              std::to_string(
                                  options_.scheduler.queue_capacity)})});
    auto next_sync = std::chrono::steady_clock::now() + options_.sync_interval;
    while (!conn_lost) {
      if (stop_.load(std::memory_order_acquire)) shutdown = true;
      pollfd p{};
      p.fd = fd;
      p.events = POLLIN;
      const int r = ::poll(&p, 1,
                           static_cast<int>(options_.poll_interval.count()));
      if (r < 0 && errno != EINTR) break;
      // Drain every buffered frame this wakeup: a coordinator pipelining N
      // assignments in one send must not pay one poll interval per frame.
      for (;;) {
        pollfd q{};
        q.fd = fd;
        q.events = POLLIN;
        if (::poll(&q, 1, 0) <= 0 ||
            (q.revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
          break;
        }
        std::optional<Frame> frame;
        try {
          frame = read_frame(fd);
        } catch (const std::exception&) {
          frame.reset();
        }
        if (!frame) {
          conn_lost = true;
          break;
        }
        handle_frame(fd, *frame, &shutdown);
      }
      if (conn_lost) break;
      sweep_results(fd);
      if (std::chrono::steady_clock::now() >= next_sync) {
        send_sync(fd);
        next_sync = std::chrono::steady_clock::now() + options_.sync_interval;
      }
      if (shutdown && pending_.empty()) break;
    }
    if (!conn_lost) {
      // Orderly goodbye: finish everything, ship the last results and a
      // final sync so the coordinator's cache and stats are complete.
      scheduler_->drain();
      sweep_results(fd);
      send_sync(fd);
    }
  } catch (const std::exception&) {
    // Connection torn mid-write: nothing left to ship.
  }
  ::close(fd);
  scheduler_->drain();
  return results_sent_;
}

void Worker::handle_frame(int fd, const Frame& frame, bool* shutdown) {
  switch (frame.type) {
    case FrameType::kWorkerWelcome:
      return;  // name acknowledgement; nothing to do
    case FrameType::kAssign: {
      const std::vector<std::string> parts = unpack_batch(frame.payload);
      if (parts.size() != 2) return;
      const std::string& hex = parts[0];
      try {
        const VerifyJob job = parse_job(parts[1]);
        const Submitted s = scheduler_->try_submit(job);
        if (s.rejected) {
          write_frame(fd, Frame{FrameType::kWorkerResult,
                                pack_batch({hex, "rejected", ""})});
          ++results_sent_;
        } else {
          pending_.push_back({s.key, s.result});
        }
      } catch (const std::exception&) {
        write_frame(fd, Frame{FrameType::kWorkerResult,
                              pack_batch({hex, "failed", ""})});
        ++results_sent_;
      }
      return;
    }
    case FrameType::kShutdown:
      *shutdown = true;
      return;
    default:
      return;  // unknown coordinator frame: ignore
  }
}

std::size_t Worker::sweep_results(int fd) {
  std::size_t sent = 0;
  for (std::size_t k = 0; k < pending_.size();) {
    PendingResult& p = pending_[k];
    if (p.result.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ++k;
      continue;
    }
    const std::optional<JobStatus> status = scheduler_->poll(p.key);
    const bool final_state =
        status && (status->state == JobState::kDone ||
                   status->state == JobState::kCancelled ||
                   status->state == JobState::kFailed);
    if (status && !final_state) {
      // Future satisfied but the status table not yet final: next sweep.
      ++k;
      continue;
    }
    std::string state = "failed";
    std::string payload;
    if (status) {
      state = job_state_name(status->state);
      const std::vector<std::uint8_t> encoded = encode_verdict(status->verdict);
      payload.assign(encoded.begin(), encoded.end());
    }
    write_frame(fd, Frame{FrameType::kWorkerResult,
                          pack_batch({job_key_hex(p.key), state, payload})});
    ++results_sent_;
    ++sent;
    pending_[k] = pending_.back();
    pending_.pop_back();
  }
  return sent;
}

void Worker::send_sync(int fd) {
  std::string tail;
  const std::string& path = options_.scheduler.store_path;
  if (!path.empty()) {
    const int sfd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (sfd >= 0) {
      std::string buf;
      char chunk[65536];
      off_t off = static_cast<off_t>(sync_offset_);
      for (;;) {
        const ssize_t n = ::pread(sfd, chunk, sizeof(chunk), off);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        buf.append(chunk, static_cast<std::size_t>(n));
        off += n;
      }
      ::close(sfd);
      std::vector<StoreRecord> records;
      const std::size_t consumed = parse_store_records(
          reinterpret_cast<const std::uint8_t*>(buf.data()), buf.size(),
          &records);
      // Ship only fully committed records; a torn in-progress append stays
      // behind the offset and is re-read on the next sync.
      tail = buf.substr(0, consumed);
      sync_offset_ += consumed;
    }
  }
  write_frame(fd, Frame{FrameType::kWorkerSync,
                        pack_batch({metrics_to_json(scheduler_->metrics()),
                                    tail})});
}

}  // namespace wfregs::service
