#include "wfregs/service/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace wfregs::service {

namespace {

int checked_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  return fd;
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("bad unix socket path: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  return addr;
}

sockaddr_in tcp_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad tcp host (numeric IPv4 only): " + ep.host);
  }
  return addr;
}

std::uint16_t parse_port(const std::string& text) {
  if (text.empty()) throw std::runtime_error("empty tcp port");
  char* end = nullptr;
  const long port = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || port < 0 || port > 65535) {
    throw std::runtime_error("bad tcp port: " + text);
  }
  return static_cast<std::uint16_t>(port);
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      ep.host = "127.0.0.1";
      ep.port = parse_port(rest);
    } else {
      ep.host = rest.substr(0, colon);
      ep.port = parse_port(rest.substr(colon + 1));
    }
    if (ep.host.empty()) ep.host = "127.0.0.1";
    return ep;
  }
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = spec.rfind("unix:", 0) == 0 ? spec.substr(5) : spec;
  if (ep.path.empty()) throw std::runtime_error("empty endpoint: " + spec);
  return ep;
}

std::string endpoint_to_string(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kTcp) {
    return "tcp:" + ep.host + ":" + std::to_string(ep.port);
  }
  return "unix:" + ep.path;
}

int listen_endpoint(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_addr(ep.path);
    const int fd = checked_socket(AF_UNIX);
    ::unlink(ep.path.c_str());  // stale socket from a crash
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 128) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      throw std::runtime_error("cannot listen on " + endpoint_to_string(ep) +
                               ": " + err);
    }
    return fd;
  }
  const sockaddr_in addr = tcp_addr(ep);
  const int fd = checked_socket(AF_INET);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot listen on " + endpoint_to_string(ep) +
                             ": " + err);
  }
  return fd;
}

int connect_endpoint(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_addr(ep.path);
    const int fd = checked_socket(AF_UNIX);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      throw std::runtime_error("cannot connect to " + endpoint_to_string(ep) +
                               ": " + err);
    }
    return fd;
  }
  const sockaddr_in addr = tcp_addr(ep);
  const int fd = checked_socket(AF_INET);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot connect to " + endpoint_to_string(ep) +
                             ": " + err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

std::uint16_t local_tcp_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw std::runtime_error(std::string("getsockname: ") +
                             std::strerror(errno));
  }
  return ntohs(addr.sin_port);
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK)
                              : (flags & ~O_NONBLOCK)) < 0) {
    throw std::runtime_error(std::string("fcntl(O_NONBLOCK): ") +
                             std::strerror(errno));
  }
}

bool FrameSplitter::next(Frame* out) {
  if (buf_.size() - pos_ < 4) return false;
  const auto* head = reinterpret_cast<const std::uint8_t*>(buf_.data() + pos_);
  std::uint32_t len = 0;
  for (int k = 0; k < 4; ++k) {
    len |= static_cast<std::uint32_t>(head[k]) << (8 * k);
  }
  if (len < 1) throw std::runtime_error("frame: zero-length frame");
  if (len > kMaxFrame) throw std::runtime_error("frame: oversized frame");
  if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(len)) return false;
  out->type = static_cast<FrameType>(head[4]);
  out->payload.assign(buf_, pos_ + 5, len - 1);
  pos_ += 4 + static_cast<std::size_t>(len);
  // Compact once the consumed prefix dominates, keeping feed() amortized
  // linear without erasing per frame.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

bool read_available(int fd, FrameSplitter* in) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      in->feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // hard error: drop the connection
  }
}

EventLoop::EventLoop(Handlers handlers) : handlers_(std::move(handlers)) {}

EventLoop::~EventLoop() {
  for (const int fd : listeners_) ::close(fd);
  for (auto& [id, c] : conns_) ::close(c.fd);
}

void EventLoop::add_listener(int fd) {
  set_nonblocking(fd, true);
  listeners_.push_back(fd);
}

std::uint64_t EventLoop::adopt(int fd) {
  set_nonblocking(fd, true);
  const std::uint64_t id = next_id_++;
  conns_[id].fd = fd;
  return id;
}

void EventLoop::send(std::uint64_t conn, const Frame& frame) {
  const auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.closing) return;
  std::string& out = it->second.out;
  const std::uint32_t len =
      static_cast<std::uint32_t>(1 + frame.payload.size());
  for (int k = 0; k < 4; ++k) {
    out.push_back(static_cast<char>((len >> (8 * k)) & 0xFF));
  }
  out.push_back(static_cast<char>(frame.type));
  out.append(frame.payload);
}

void EventLoop::close_conn(std::uint64_t conn) {
  const auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  it->second.closing = true;
  if (!flush_conn(&it->second) ||
      it->second.out_pos == it->second.out.size()) {
    drop(conn);
  }
}

bool EventLoop::flush_conn(Conn* c) {
  while (c->out_pos < c->out.size()) {
    const ssize_t n = ::write(c->fd, c->out.data() + c->out_pos,
                              c->out.size() - c->out_pos);
    if (n > 0) {
      c->out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  if (c->out_pos == c->out.size() && c->out_pos > 0) {
    c->out.clear();
    c->out_pos = 0;
  }
  return true;
}

void EventLoop::drop(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  conns_.erase(it);
}

void EventLoop::step(std::chrono::milliseconds timeout) {
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> ids;  // ids[k - listeners] for conn pfds
  pfds.reserve(listeners_.size() + conns_.size());
  for (const int fd : listeners_) {
    pfds.push_back({fd, POLLIN, 0});
  }
  for (const auto& [id, c] : conns_) {
    short events = c.closing ? 0 : POLLIN;
    if (c.out_pos < c.out.size()) events |= POLLOUT;
    pfds.push_back({c.fd, events, 0});
    ids.push_back(id);
  }

  const int r = ::poll(pfds.data(), pfds.size(),
                       static_cast<int>(timeout.count()));
  if (r < 0) {
    if (errno == EINTR) return;
    throw std::runtime_error(std::string("EventLoop: poll: ") +
                             std::strerror(errno));
  }
  if (r == 0) return;

  // Accept every pending connection on every ready listener.
  for (std::size_t k = 0; k < listeners_.size(); ++k) {
    if ((pfds[k].revents & POLLIN) == 0) continue;
    for (;;) {
      const int fd = ::accept(listeners_[k], nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN, EINTR, transient failure: next step
      const std::uint64_t id = adopt(fd);
      if (handlers_.on_open) handlers_.on_open(id);
    }
  }

  for (std::size_t k = 0; k < ids.size(); ++k) {
    const pollfd& p = pfds[listeners_.size() + k];
    const std::uint64_t id = ids[k];
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // closed by an earlier handler

    if (p.revents & (POLLIN | POLLHUP | POLLERR)) {
      const bool open = read_available(it->second.fd, &it->second.in);
      // Dispatch EVERY complete frame buffered on this connection: a
      // pipelined client must not be latency-bound on poll wakeups.
      bool framing_ok = true;
      for (;;) {
        Frame frame;
        bool have = false;
        try {
          have = it->second.in.next(&frame);
        } catch (const std::exception&) {
          framing_ok = false;  // malformed length prefix
        }
        if (!framing_ok || !have) break;
        if (handlers_.on_frame) handlers_.on_frame(id, std::move(frame));
        it = conns_.find(id);  // the handler may have closed the conn
        if (it == conns_.end()) break;
      }
      if (it == conns_.end()) continue;
      if (!open || !framing_ok) {
        // Peer EOF / error / protocol violation: flush what we owe (error
        // replies included), then drop.
        flush_conn(&it->second);
        drop(id);
        if (handlers_.on_close) handlers_.on_close(id);
        continue;
      }
    }

    if (!flush_conn(&it->second)) {
      drop(id);
      if (handlers_.on_close) handlers_.on_close(id);
      continue;
    }
    if (it->second.closing &&
        it->second.out_pos == it->second.out.size()) {
      drop(id);
    }
  }
}

void EventLoop::flush_all(std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  for (auto& [id, c] : conns_) {
    set_nonblocking(c.fd, true);
    while (c.out_pos < c.out.size() &&
           std::chrono::steady_clock::now() < until) {
      pollfd p{c.fd, POLLOUT, 0};
      if (::poll(&p, 1, 50) <= 0) continue;
      if (!flush_conn(&c)) break;
    }
  }
}

}  // namespace wfregs::service
