#include "wfregs/service/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace wfregs::service {

namespace {

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("write_frame: ") +
                               std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Reads exactly `size` bytes; returns false on EOF before the first byte,
/// throws on error or EOF mid-read.
bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("read_frame: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error("read_frame: EOF mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void write_frame(int fd, const Frame& frame) {
  const std::uint32_t len = static_cast<std::uint32_t>(1 + frame.payload.size());
  std::vector<std::uint8_t> buf;
  buf.reserve(4 + len);
  for (int k = 0; k < 4; ++k) buf.push_back((len >> (8 * k)) & 0xFF);
  buf.push_back(static_cast<std::uint8_t>(frame.type));
  buf.insert(buf.end(), frame.payload.begin(), frame.payload.end());
  write_all(fd, buf.data(), buf.size());
}

std::optional<Frame> read_frame(int fd) {
  std::uint8_t head[4];
  if (!read_all(fd, head, 4)) return std::nullopt;
  std::uint32_t len = 0;
  for (int k = 0; k < 4; ++k) {
    len |= static_cast<std::uint32_t>(head[k]) << (8 * k);
  }
  if (len < 1) throw std::runtime_error("read_frame: zero-length frame");
  if (len > kMaxFrame) throw std::runtime_error("read_frame: oversized frame");
  std::vector<std::uint8_t> body(len);
  if (!read_all(fd, body.data(), body.size())) {
    throw std::runtime_error("read_frame: EOF mid-frame");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(body[0]);
  frame.payload.assign(reinterpret_cast<const char*>(body.data() + 1),
                       body.size() - 1);
  return frame;
}

}  // namespace wfregs::service
