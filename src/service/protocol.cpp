#include "wfregs/service/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace wfregs::service {

namespace {

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("write_frame: ") +
                               std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Reads exactly `size` bytes; returns false on EOF before the first byte,
/// throws on error or EOF mid-read.
bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("read_frame: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error("read_frame: EOF mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void write_frame(int fd, const Frame& frame) {
  const std::uint32_t len = static_cast<std::uint32_t>(1 + frame.payload.size());
  std::vector<std::uint8_t> buf;
  buf.reserve(4 + len);
  for (int k = 0; k < 4; ++k) buf.push_back((len >> (8 * k)) & 0xFF);
  buf.push_back(static_cast<std::uint8_t>(frame.type));
  buf.insert(buf.end(), frame.payload.begin(), frame.payload.end());
  write_all(fd, buf.data(), buf.size());
}

std::optional<Frame> read_frame(int fd) {
  std::uint8_t head[4];
  if (!read_all(fd, head, 4)) return std::nullopt;
  std::uint32_t len = 0;
  for (int k = 0; k < 4; ++k) {
    len |= static_cast<std::uint32_t>(head[k]) << (8 * k);
  }
  if (len < 1) throw std::runtime_error("read_frame: zero-length frame");
  if (len > kMaxFrame) throw std::runtime_error("read_frame: oversized frame");
  std::vector<std::uint8_t> body(len);
  if (!read_all(fd, body.data(), body.size())) {
    throw std::runtime_error("read_frame: EOF mid-frame");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(body[0]);
  frame.payload.assign(reinterpret_cast<const char*>(body.data() + 1),
                       body.size() - 1);
  return frame;
}

std::string pack_batch(const std::vector<std::string>& items) {
  std::string out;
  std::size_t total = 4;
  for (const std::string& item : items) total += 4 + item.size();
  out.reserve(total);
  const auto append_u32 = [&out](std::uint32_t v) {
    for (int k = 0; k < 4; ++k) {
      out.push_back(static_cast<char>((v >> (8 * k)) & 0xFF));
    }
  };
  append_u32(static_cast<std::uint32_t>(items.size()));
  for (const std::string& item : items) {
    append_u32(static_cast<std::uint32_t>(item.size()));
    out.append(item);
  }
  return out;
}

std::vector<std::string> unpack_batch(const std::string& payload) {
  const auto* data = reinterpret_cast<const std::uint8_t*>(payload.data());
  const std::size_t size = payload.size();
  std::size_t pos = 0;
  const auto take_u32 = [&]() -> std::uint32_t {
    if (size - pos < 4) throw std::runtime_error("unpack_batch: truncated");
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      v |= static_cast<std::uint32_t>(data[pos + k]) << (8 * k);
    }
    pos += 4;
    return v;
  };
  const std::uint32_t count = take_u32();
  // Each item costs at least a 4-byte length prefix: reject counts that
  // cannot possibly fit before reserving anything.
  if (static_cast<std::size_t>(count) * 4 > size - pos) {
    throw std::runtime_error("unpack_batch: item count exceeds payload");
  }
  std::vector<std::string> items;
  items.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::uint32_t len = take_u32();
    if (size - pos < len) throw std::runtime_error("unpack_batch: truncated");
    items.emplace_back(payload, pos, len);
    pos += len;
  }
  if (pos != size) throw std::runtime_error("unpack_batch: trailing bytes");
  return items;
}

}  // namespace wfregs::service
