#include "wfregs/service/verdict.hpp"

#include <sstream>
#include <stdexcept>

namespace wfregs::service {

namespace {

void push_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int k = 0; k < 4; ++k) out.push_back((v >> (8 * k)) & 0xFF);
}

void push_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int k = 0; k < 8; ++k) out.push_back((v >> (8 * k)) & 0xFF);
}

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * k);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int k = 0; k < 8; ++k) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * k);
    }
    return v;
  }
  std::string bytes(std::size_t n) {
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw std::runtime_error("decode_verdict: truncated payload");
    }
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Version 2 added the provenance byte (after the flags byte).
constexpr std::uint8_t kVersion = 2;

void json_escape_into(std::ostream& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(ch >> 4) & 0xF] << hex[ch & 0xF];
        } else {
          out << ch;
        }
    }
  }
}

}  // namespace

const char* job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kLinearizable: return "linearizable";
    case JobKind::kRegular: return "regular";
    case JobKind::kConsensus: return "consensus";
  }
  return "unknown";
}

const char* provenance_name(Provenance p) {
  switch (p) {
    case Provenance::kExplored: return "explored";
    case Provenance::kStatic: return "static";
    case Provenance::kPartial: return "partial";
  }
  return "unknown";
}

bool operator==(const Verdict& a, const Verdict& b) {
  return a.kind == b.kind && a.ok == b.ok && a.wait_free == b.wait_free &&
         a.complete == b.complete && a.provenance == b.provenance &&
         a.detail == b.detail &&
         a.stats.configs == b.stats.configs && a.stats.edges == b.stats.edges &&
         a.stats.terminals == b.stats.terminals &&
         a.stats.interned_configs == b.stats.interned_configs &&
         a.stats.depth == b.stats.depth &&
         a.stats.max_accesses == b.stats.max_accesses &&
         a.stats.max_accesses_by_inv == b.stats.max_accesses_by_inv;
}

std::vector<std::uint8_t> encode_verdict(const Verdict& v) {
  std::vector<std::uint8_t> out;
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(v.kind));
  out.push_back(static_cast<std::uint8_t>((v.ok ? 1 : 0) |
                                          (v.wait_free ? 2 : 0) |
                                          (v.complete ? 4 : 0)));
  out.push_back(static_cast<std::uint8_t>(v.provenance));
  push_u64(out, v.stats.configs);
  push_u64(out, v.stats.edges);
  push_u64(out, v.stats.terminals);
  push_u64(out, v.stats.interned_configs);
  push_u64(out, static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(v.stats.depth)));
  push_u32(out, static_cast<std::uint32_t>(v.detail.size()));
  out.insert(out.end(), v.detail.begin(), v.detail.end());
  push_u32(out, static_cast<std::uint32_t>(v.stats.max_accesses.size()));
  for (const std::size_t a : v.stats.max_accesses) push_u64(out, a);
  push_u32(out, static_cast<std::uint32_t>(v.stats.max_accesses_by_inv.size()));
  for (const auto& per : v.stats.max_accesses_by_inv) {
    push_u32(out, static_cast<std::uint32_t>(per.size()));
    for (const std::size_t a : per) push_u64(out, a);
  }
  return out;
}

Verdict decode_verdict(const std::uint8_t* data, std::size_t size) {
  Reader in(data, size);
  if (in.u8() != kVersion) {
    throw std::runtime_error("decode_verdict: unknown version");
  }
  Verdict v;
  const std::uint8_t kind = in.u8();
  if (kind > static_cast<std::uint8_t>(JobKind::kConsensus)) {
    throw std::runtime_error("decode_verdict: unknown job kind");
  }
  v.kind = static_cast<JobKind>(kind);
  const std::uint8_t flags = in.u8();
  v.ok = flags & 1;
  v.wait_free = flags & 2;
  v.complete = flags & 4;
  const std::uint8_t prov = in.u8();
  if (prov > static_cast<std::uint8_t>(Provenance::kPartial)) {
    throw std::runtime_error("decode_verdict: unknown provenance");
  }
  v.provenance = static_cast<Provenance>(prov);
  v.stats.configs = in.u64();
  v.stats.edges = in.u64();
  v.stats.terminals = in.u64();
  v.stats.interned_configs = in.u64();
  v.stats.depth = static_cast<int>(static_cast<std::int64_t>(in.u64()));
  v.detail = in.bytes(in.u32());
  const std::uint32_t n_acc = in.u32();
  v.stats.max_accesses.reserve(n_acc);
  for (std::uint32_t k = 0; k < n_acc; ++k) {
    v.stats.max_accesses.push_back(in.u64());
  }
  const std::uint32_t n_obj = in.u32();
  v.stats.max_accesses_by_inv.reserve(n_obj);
  for (std::uint32_t g = 0; g < n_obj; ++g) {
    const std::uint32_t n_inv = in.u32();
    std::vector<std::size_t> per;
    per.reserve(n_inv);
    for (std::uint32_t k = 0; k < n_inv; ++k) per.push_back(in.u64());
    v.stats.max_accesses_by_inv.push_back(std::move(per));
  }
  if (!in.done()) {
    throw std::runtime_error("decode_verdict: trailing bytes");
  }
  return v;
}

std::string verdict_to_json(const Verdict& v) {
  std::ostringstream out;
  out << "{\"kind\":\"" << job_kind_name(v.kind) << "\""
      << ",\"ok\":" << (v.ok ? "true" : "false")
      << ",\"wait_free\":" << (v.wait_free ? "true" : "false")
      << ",\"complete\":" << (v.complete ? "true" : "false")
      << ",\"provenance\":\"" << provenance_name(v.provenance) << "\""
      << ",\"resumed\":" << (v.resumed ? "true" : "false")
      << ",\"checkpointed\":" << (v.checkpointed ? "true" : "false")
      << ",\"detail\":\"";
  json_escape_into(out, v.detail);
  out << "\",\"stats\":{\"configs\":" << v.stats.configs
      << ",\"edges\":" << v.stats.edges
      << ",\"terminals\":" << v.stats.terminals
      << ",\"interned_configs\":" << v.stats.interned_configs
      << ",\"depth\":" << v.stats.depth << ",\"max_accesses\":[";
  for (std::size_t k = 0; k < v.stats.max_accesses.size(); ++k) {
    out << (k ? "," : "") << v.stats.max_accesses[k];
  }
  out << "],\"max_accesses_by_inv\":[";
  for (std::size_t g = 0; g < v.stats.max_accesses_by_inv.size(); ++g) {
    out << (g ? "," : "") << "[";
    const auto& per = v.stats.max_accesses_by_inv[g];
    for (std::size_t k = 0; k < per.size(); ++k) {
      out << (k ? "," : "") << per[k];
    }
    out << "]";
  }
  out << "]}}";
  return out.str();
}

Verdict decision_projection(const Verdict& v) {
  Verdict p;
  p.kind = v.kind;
  p.ok = v.ok;
  p.wait_free = v.wait_free;
  p.complete = v.complete;
  return p;
}

}  // namespace wfregs::service
