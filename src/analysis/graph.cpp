#include "wfregs/analysis/graph.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace wfregs::analysis {

namespace {

/// Tarjan SCC over the subgraph reachable from `roots`.
struct SccResult {
  std::vector<int> comp;     // per node, -1 when unreachable
  int num_comps = 0;
  std::vector<bool> cyclic;  // per component: size > 1 or a self loop
};

SccResult compute_sccs(const std::vector<std::vector<int>>& succ,
                       const std::vector<int>& roots) {
  const int n = static_cast<int>(succ.size());
  SccResult r;
  r.comp.assign(static_cast<std::size_t>(n), -1);
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  int next_index = 0;

  // Iterative Tarjan (an explicit frame stack keeps deep graphs safe).
  struct Frame {
    int node;
    std::size_t child = 0;
  };
  for (const int root : roots) {
    if (root < 0 || root >= n ||
        index[static_cast<std::size_t>(root)] != -1) {
      continue;
    }
    std::vector<Frame> frames{{root, 0}};
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto u = static_cast<std::size_t>(f.node);
      if (f.child == 0) {
        index[u] = low[u] = next_index++;
        stack.push_back(f.node);
        on_stack[u] = true;
      }
      if (f.child < succ[u].size()) {
        const int v = succ[u][f.child++];
        const auto vu = static_cast<std::size_t>(v);
        if (index[vu] == -1) {
          frames.push_back({v, 0});
        } else if (on_stack[vu]) {
          low[u] = std::min(low[u], index[vu]);
        }
        continue;
      }
      if (low[u] == index[u]) {
        const int c = r.num_comps++;
        bool self_loop = false;
        int size = 0;
        while (true) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          r.comp[static_cast<std::size_t>(w)] = c;
          ++size;
          for (const int s : succ[static_cast<std::size_t>(w)]) {
            if (s == w) self_loop = true;
          }
          if (w == f.node) break;
        }
        r.cyclic.push_back(size > 1 || self_loop);
      }
      const int done = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        const auto pu = static_cast<std::size_t>(frames.back().node);
        low[pu] = std::min(low[pu], low[static_cast<std::size_t>(done)]);
      }
    }
  }
  return r;
}

}  // namespace

Bound longest_weighted_path(const std::vector<std::vector<int>>& succ,
                            const std::vector<int>& roots,
                            const std::function<Bound(int)>& weight) {
  if (succ.empty() || roots.empty()) return Bound::of(0);
  const SccResult scc = compute_sccs(succ, roots);
  if (scc.num_comps == 0) return Bound::of(0);

  // Per-component cost: infinite when a weighted node can repeat.
  std::vector<Bound> cost(static_cast<std::size_t>(scc.num_comps),
                          Bound::of(0));
  for (int u = 0; u < static_cast<int>(succ.size()); ++u) {
    const int c = scc.comp[static_cast<std::size_t>(u)];
    if (c < 0) continue;
    const Bound w = weight(u);
    if (w.is_zero()) continue;
    auto& cc = cost[static_cast<std::size_t>(c)];
    cc = scc.cyclic[static_cast<std::size_t>(c)] ? Bound::inf() : cc + w;
  }
  // Tarjan emits components in reverse topological order, so a forward scan
  // over components sees all successors before their predecessors.
  std::vector<std::vector<int>> comp_succ(
      static_cast<std::size_t>(scc.num_comps));
  for (int u = 0; u < static_cast<int>(succ.size()); ++u) {
    const int c = scc.comp[static_cast<std::size_t>(u)];
    if (c < 0) continue;
    for (const int s : succ[static_cast<std::size_t>(u)]) {
      const int cs = scc.comp[static_cast<std::size_t>(s)];
      if (cs >= 0 && cs != c) {
        comp_succ[static_cast<std::size_t>(c)].push_back(cs);
      }
    }
  }
  std::vector<Bound> best(static_cast<std::size_t>(scc.num_comps));
  for (int c = 0; c < scc.num_comps; ++c) {
    Bound tail = Bound::of(0);
    for (const int s : comp_succ[static_cast<std::size_t>(c)]) {
      tail = Bound::max(tail, best[static_cast<std::size_t>(s)]);
    }
    best[static_cast<std::size_t>(c)] =
        cost[static_cast<std::size_t>(c)] + tail;
  }
  Bound result = Bound::of(0);
  for (const int root : roots) {
    if (root < 0 || root >= static_cast<int>(succ.size())) continue;
    const int c = scc.comp[static_cast<std::size_t>(root)];
    if (c >= 0) result = Bound::max(result, best[static_cast<std::size_t>(c)]);
  }
  return result;
}

std::optional<std::vector<int>> weighted_witness(
    const std::vector<std::vector<int>>& succ, const std::vector<int>& roots,
    const std::function<bool(int)>& site, std::size_t want) {
  // Greedy stitching: repeatedly extend the walk to the nearest matching
  // site via BFS.  When the caller has already certified (via
  // longest_weighted_path) that `want` sites are attainable, this follows
  // the DP structure closely enough in practice; on a dead end the partial
  // walk is returned -- diagnostic quality degrades gracefully, verdicts
  // never depend on it.
  std::optional<std::vector<int>> best;
  std::size_t best_got = 0;
  for (const int root : roots) {
    if (root < 0 || root >= static_cast<int>(succ.size())) continue;
    std::vector<int> path{root};
    std::size_t got = site(root) ? 1 : 0;
    int cur = root;
    while (got < want) {
      std::map<int, int> parent;
      std::deque<int> q;
      for (const int s : succ[static_cast<std::size_t>(cur)]) {
        if (!parent.count(s)) {
          parent[s] = cur;
          q.push_back(s);
        }
      }
      int found = -1;
      while (!q.empty()) {
        const int u = q.front();
        q.pop_front();
        if (site(u)) {
          found = u;
          break;
        }
        for (const int s : succ[static_cast<std::size_t>(u)]) {
          if (!parent.count(s)) {
            parent[s] = u;
            q.push_back(s);
          }
        }
      }
      if (found < 0) break;
      std::vector<int> seg;
      for (int u = found; u != cur; u = parent[u]) seg.push_back(u);
      std::reverse(seg.begin(), seg.end());
      path.insert(path.end(), seg.begin(), seg.end());
      cur = found;
      ++got;
    }
    if (got >= want) return path;
    if (got > best_got) {
      best_got = got;
      best = std::move(path);
    }
  }
  if (best_got == 0) return std::nullopt;
  return best;
}

}  // namespace wfregs::analysis
