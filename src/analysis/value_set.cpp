#include "wfregs/analysis/value_set.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace wfregs::analysis {

namespace {

__extension__ typedef __int128 Wide;  // saturating arithmetic headroom

constexpr Val kValMin = std::numeric_limits<Val>::min();
constexpr Val kValMax = std::numeric_limits<Val>::max();

bool fits(Wide w) { return w >= Wide(kValMin) && w <= Wide(kValMax); }

}  // namespace

ValueSet ValueSet::singleton(Val v) { return of({v}); }

ValueSet ValueSet::range(Val lo, Val hi) {
  if (lo > hi) return bottom();
  return make_range(true, lo, true, hi);
}

ValueSet ValueSet::top() { return make_range(false, 0, false, 0); }

ValueSet ValueSet::of(std::vector<Val> vals) {
  if (vals.empty()) return bottom();
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  if (vals.size() > kMaxPrecise) {
    return range(vals.front(), vals.back());
  }
  ValueSet s;
  s.rep_ = Rep::kSet;
  s.vals_ = std::move(vals);
  return s;
}

ValueSet ValueSet::make_range(bool has_lo, Val lo, bool has_hi, Val hi) {
  // A fully bounded, small range is kept as an explicit set so equality
  // branches can still prune it.
  if (has_lo && has_hi && hi >= lo &&
      Wide(hi) - Wide(lo) < Wide(kMaxPrecise)) {
    std::vector<Val> vals;
    for (Val v = lo; v <= hi; ++v) vals.push_back(v);
    return of(std::move(vals));
  }
  ValueSet s;
  s.rep_ = Rep::kRange;
  s.has_lo_ = has_lo;
  s.lo_ = has_lo ? lo : 0;
  s.has_hi_ = has_hi;
  s.hi_ = has_hi ? hi : 0;
  return s;
}

const std::vector<Val>& ValueSet::values() const {
  if (rep_ != Rep::kSet) {
    throw std::logic_error("ValueSet::values: not a precise set");
  }
  return vals_;
}

bool ValueSet::contains(Val v) const {
  switch (rep_) {
    case Rep::kBottom:
      return false;
    case Rep::kSet:
      return std::binary_search(vals_.begin(), vals_.end(), v);
    case Rep::kRange:
      return (!has_lo_ || v >= lo_) && (!has_hi_ || v <= hi_);
  }
  return false;
}

Val ValueSet::lower_bound() const {
  if (rep_ == Rep::kSet) return vals_.front();
  if (rep_ == Rep::kRange && has_lo_) return lo_;
  throw std::logic_error("ValueSet::lower_bound: unbounded or bottom");
}

Val ValueSet::upper_bound() const {
  if (rep_ == Rep::kSet) return vals_.back();
  if (rep_ == Rep::kRange && has_hi_) return hi_;
  throw std::logic_error("ValueSet::upper_bound: unbounded or bottom");
}

std::vector<Val> ValueSet::enumerate_within(Val lo, Val hi) const {
  std::vector<Val> out;
  if (rep_ == Rep::kSet) {
    for (const Val v : vals_) {
      if (v >= lo && v <= hi) out.push_back(v);
    }
    return out;
  }
  for (Val v = lo; v <= hi; ++v) {
    if (contains(v)) out.push_back(v);
    if (v == hi) break;  // guard against hi == kValMax overflow
  }
  return out;
}

std::optional<std::vector<Val>> ValueSet::enumerate(std::size_t cap) const {
  switch (rep_) {
    case Rep::kBottom:
      return std::vector<Val>{};
    case Rep::kSet:
      if (vals_.size() > cap) return std::nullopt;
      return vals_;
    case Rep::kRange: {
      if (!has_lo_ || !has_hi_) return std::nullopt;
      if (Wide(hi_) - Wide(lo_) + 1 > Wide(cap)) return std::nullopt;
      std::vector<Val> out;
      for (Val v = lo_; v <= hi_; ++v) {
        out.push_back(v);
        if (v == hi_) break;  // guard against hi_ == kValMax overflow
      }
      return out;
    }
  }
  return std::nullopt;
}

void ValueSet::bounds(bool& has_lo, Val& lo, bool& has_hi, Val& hi) const {
  if (rep_ == Rep::kSet) {
    has_lo = has_hi = true;
    lo = vals_.front();
    hi = vals_.back();
  } else {
    has_lo = has_lo_;
    lo = lo_;
    has_hi = has_hi_;
    hi = hi_;
  }
}

ValueSet ValueSet::join(const ValueSet& a, const ValueSet& b) {
  if (a.is_bottom()) return b;
  if (b.is_bottom()) return a;
  if (a.rep_ == Rep::kSet && b.rep_ == Rep::kSet) {
    std::vector<Val> merged;
    merged.reserve(a.vals_.size() + b.vals_.size());
    std::merge(a.vals_.begin(), a.vals_.end(), b.vals_.begin(),
               b.vals_.end(), std::back_inserter(merged));
    return of(std::move(merged));
  }
  bool alo, ahi, blo, bhi;
  Val alov, ahiv, blov, bhiv;
  a.bounds(alo, alov, ahi, ahiv);
  b.bounds(blo, blov, bhi, bhiv);
  const bool has_lo = alo && blo;
  const bool has_hi = ahi && bhi;
  return make_range(has_lo, has_lo ? std::min(alov, blov) : 0, has_hi,
                    has_hi ? std::max(ahiv, bhiv) : 0);
}

ValueSet ValueSet::widen(const ValueSet& prev, const ValueSet& next) {
  const ValueSet joined = join(prev, next);
  if (prev.is_bottom() || joined == prev) return joined;
  bool plo, phi, jlo, jhi;
  Val plov, phiv, jlov, jhiv;
  prev.bounds(plo, plov, phi, phiv);
  joined.bounds(jlo, jlov, jhi, jhiv);
  const bool keep_lo = jlo && plo && jlov >= plov;
  const bool keep_hi = jhi && phi && jhiv <= phiv;
  return make_range(keep_lo, keep_lo ? jlov : 0, keep_hi,
                    keep_hi ? jhiv : 0);
}

namespace {

/// Pointwise op over two precise sets, degrading when the product blows up.
template <typename Fn>
std::optional<ValueSet> precise_binary(const ValueSet& a, const ValueSet& b,
                                       const Fn& fn) {
  if (!a.is_precise() || !b.is_precise()) return std::nullopt;
  const auto& av = a.values();
  const auto& bv = b.values();
  if (av.size() * bv.size() > 4 * ValueSet::kMaxPrecise) return std::nullopt;
  std::vector<Val> out;
  out.reserve(av.size() * bv.size());
  for (const Val x : av) {
    for (const Val y : bv) {
      Wide w;
      if (!fn(x, y, w)) continue;  // undefined pair (e.g. division by 0)
      if (!fits(w)) return std::nullopt;
      out.push_back(static_cast<Val>(w));
    }
  }
  return ValueSet::of(std::move(out));
}

}  // namespace

ValueSet ValueSet::add(const ValueSet& a, const ValueSet& b) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  if (auto p = precise_binary(a, b, [](Val x, Val y, Wide& w) {
        w = Wide(x) + Wide(y);
        return true;
      })) {
    return *p;
  }
  bool alo, ahi, blo, bhi;
  Val alov, ahiv, blov, bhiv;
  a.bounds(alo, alov, ahi, ahiv);
  b.bounds(blo, blov, bhi, bhiv);
  const Wide lo = Wide(alov) + Wide(blov);
  const Wide hi = Wide(ahiv) + Wide(bhiv);
  const bool has_lo = alo && blo && fits(lo);
  const bool has_hi = ahi && bhi && fits(hi);
  return make_range(has_lo, has_lo ? static_cast<Val>(lo) : 0, has_hi,
                    has_hi ? static_cast<Val>(hi) : 0);
}

ValueSet ValueSet::sub(const ValueSet& a, const ValueSet& b) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  if (auto p = precise_binary(a, b, [](Val x, Val y, Wide& w) {
        w = Wide(x) - Wide(y);
        return true;
      })) {
    return *p;
  }
  bool alo, ahi, blo, bhi;
  Val alov, ahiv, blov, bhiv;
  a.bounds(alo, alov, ahi, ahiv);
  b.bounds(blo, blov, bhi, bhiv);
  const Wide lo = Wide(alov) - Wide(bhiv);
  const Wide hi = Wide(ahiv) - Wide(blov);
  const bool has_lo = alo && bhi && fits(lo);
  const bool has_hi = ahi && blo && fits(hi);
  return make_range(has_lo, has_lo ? static_cast<Val>(lo) : 0, has_hi,
                    has_hi ? static_cast<Val>(hi) : 0);
}

ValueSet ValueSet::mul(const ValueSet& a, const ValueSet& b) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  if (auto p = precise_binary(a, b, [](Val x, Val y, Wide& w) {
        w = Wide(x) * Wide(y);
        return true;
      })) {
    return *p;
  }
  bool alo, ahi, blo, bhi;
  Val alov, ahiv, blov, bhiv;
  a.bounds(alo, alov, ahi, ahiv);
  b.bounds(blo, blov, bhi, bhiv);
  // Interval multiplication is only straightforward when both intervals are
  // fully bounded; otherwise give up (top).
  if (!(alo && ahi && blo && bhi)) return top();
  const Wide c[4] = {Wide(alov) * Wide(blov), Wide(alov) * Wide(bhiv),
                     Wide(ahiv) * Wide(blov), Wide(ahiv) * Wide(bhiv)};
  Wide lo = c[0], hi = c[0];
  for (const Wide w : c) {
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  if (!fits(lo) || !fits(hi)) return top();
  return make_range(true, static_cast<Val>(lo), true, static_cast<Val>(hi));
}

ValueSet ValueSet::div(const ValueSet& a, const ValueSet& b) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  if (auto p = precise_binary(a, b, [](Val x, Val y, Wide& w) {
        if (y == 0) return false;
        if (x == kValMin && y == -1) return false;  // would overflow
        w = Wide(x) / Wide(y);
        return true;
      })) {
    return *p;
  }
  // Constant positive divisor: truncated division is monotone, so bounds map
  // to bounds.  Anything fancier is not needed by the constructions.
  bool blo, bhi;
  Val blov, bhiv;
  b.bounds(blo, blov, bhi, bhiv);
  if (blo && bhi && blov == bhiv && blov > 0) {
    bool alo, ahi;
    Val alov, ahiv;
    a.bounds(alo, alov, ahi, ahiv);
    return make_range(alo, alo ? alov / blov : 0, ahi, ahi ? ahiv / blov : 0);
  }
  return top();
}

ValueSet ValueSet::mod(const ValueSet& a, const ValueSet& b) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  if (auto p = precise_binary(a, b, [](Val x, Val y, Wide& w) {
        if (y == 0) return false;
        if (x == kValMin && y == -1) return false;
        w = Wide(x) % Wide(y);
        return true;
      })) {
    return *p;
  }
  bool blo, bhi;
  Val blov, bhiv;
  b.bounds(blo, blov, bhi, bhiv);
  if (blo && bhi && blov == bhiv && blov != 0 && blov != kValMin) {
    const Val m = blov < 0 ? -blov : blov;
    bool alo, ahi;
    Val alov, ahiv;
    a.bounds(alo, alov, ahi, ahiv);
    const bool nonneg = alo && alov >= 0;
    const bool nonpos = ahi && ahiv <= 0;
    ValueSet r = range(nonneg ? 0 : -(m - 1), nonpos ? 0 : m - 1);
    // The result magnitude also never exceeds |a|.
    if (alo && ahi) {
      const Val abs_max = std::max(ahiv < 0 ? -ahiv : ahiv,
                                   alov < 0 ? -alov : alov);
      if (abs_max < m) {
        r = range(std::max(r.lower_bound(), nonneg ? Val{0} : -abs_max),
                  std::min(r.upper_bound(), nonpos ? Val{0} : abs_max));
      }
    }
    return r;
  }
  return top();
}

ValueSet ValueSet::bools(bool can_false, bool can_true) {
  std::vector<Val> v;
  if (can_false) v.push_back(0);
  if (can_true) v.push_back(1);
  return of(std::move(v));
}

ValueSet ValueSet::cmp_eq(const ValueSet& a, const ValueSet& b) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  // Equality can hold iff the sets intersect; it can fail iff either side
  // has two candidates or the sets differ.
  bool can_true;
  if (a.is_precise() && b.is_precise()) {
    can_true = false;
    for (const Val v : a.values()) {
      if (b.contains(v)) {
        can_true = true;
        break;
      }
    }
  } else {
    bool alo, ahi, blo, bhi;
    Val alov, ahiv, blov, bhiv;
    a.bounds(alo, alov, ahi, ahiv);
    b.bounds(blo, blov, bhi, bhiv);
    const bool disjoint =
        (ahi && blo && ahiv < blov) || (bhi && alo && bhiv < alov);
    can_true = !disjoint;
  }
  const bool a_single = a.is_precise() && a.values().size() == 1;
  const bool b_single = b.is_precise() && b.values().size() == 1;
  const bool can_false = !(a_single && b_single && a == b);
  return bools(can_false, can_true);
}

ValueSet ValueSet::cmp_ne(const ValueSet& a, const ValueSet& b) {
  return logic_not(cmp_eq(a, b));
}

ValueSet ValueSet::cmp_lt(const ValueSet& a, const ValueSet& b) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  bool alo, ahi, blo, bhi;
  Val alov, ahiv, blov, bhiv;
  a.bounds(alo, alov, ahi, ahiv);
  b.bounds(blo, blov, bhi, bhiv);
  const bool always = ahi && blo && ahiv < blov;
  const bool never = alo && bhi && alov >= bhiv;
  return bools(!always, !never);
}

ValueSet ValueSet::cmp_le(const ValueSet& a, const ValueSet& b) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  bool alo, ahi, blo, bhi;
  Val alov, ahiv, blov, bhiv;
  a.bounds(alo, alov, ahi, ahiv);
  b.bounds(blo, blov, bhi, bhiv);
  const bool always = ahi && blo && ahiv <= blov;
  const bool never = alo && bhi && alov > bhiv;
  return bools(!always, !never);
}

ValueSet ValueSet::logic_and(const ValueSet& a, const ValueSet& b) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  const bool a_true = !(a.is_precise() && a.values() == std::vector<Val>{0});
  const bool b_true = !(b.is_precise() && b.values() == std::vector<Val>{0});
  const bool a_false = a.contains(0);
  const bool b_false = b.contains(0);
  return bools(a_false || b_false, a_true && b_true);
}

ValueSet ValueSet::logic_or(const ValueSet& a, const ValueSet& b) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  const bool a_true = !(a.is_precise() && a.values() == std::vector<Val>{0});
  const bool b_true = !(b.is_precise() && b.values() == std::vector<Val>{0});
  const bool a_false = a.contains(0);
  const bool b_false = b.contains(0);
  return bools(a_false && b_false, a_true || b_true);
}

ValueSet ValueSet::logic_not(const ValueSet& a) {
  if (a.is_bottom()) return bottom();
  const bool a_true = !(a.is_precise() && a.values() == std::vector<Val>{0});
  const bool a_false = a.contains(0);
  return bools(a_true, a_false);
}

ValueSet ValueSet::clamp_le(Val k) const {
  if (is_bottom()) return bottom();
  if (rep_ == Rep::kSet) {
    std::vector<Val> out;
    for (const Val v : vals_) {
      if (v <= k) out.push_back(v);
    }
    return of(std::move(out));
  }
  if (has_lo_ && lo_ > k) return bottom();
  return make_range(has_lo_, lo_, true, has_hi_ ? std::min(hi_, k) : k);
}

ValueSet ValueSet::clamp_ge(Val k) const {
  if (is_bottom()) return bottom();
  if (rep_ == Rep::kSet) {
    std::vector<Val> out;
    for (const Val v : vals_) {
      if (v >= k) out.push_back(v);
    }
    return of(std::move(out));
  }
  if (has_hi_ && hi_ < k) return bottom();
  return make_range(true, has_lo_ ? std::max(lo_, k) : k, has_hi_, hi_);
}

ValueSet ValueSet::clamp_eq(Val k) const {
  return contains(k) ? singleton(k) : bottom();
}

ValueSet ValueSet::clamp_ne(Val k) const {
  if (rep_ == Rep::kSet) {
    std::vector<Val> out;
    for (const Val v : vals_) {
      if (v != k) out.push_back(v);
    }
    return of(std::move(out));
  }
  return *this;  // ranges cannot exclude an interior point
}

std::string ValueSet::to_string() const {
  switch (rep_) {
    case Rep::kBottom:
      return "{}";
    case Rep::kSet: {
      std::string s = "{";
      for (std::size_t i = 0; i < vals_.size(); ++i) {
        if (i) s += ",";
        s += std::to_string(vals_[i]);
      }
      return s + "}";
    }
    case Rep::kRange: {
      std::string s = "[";
      s += has_lo_ ? std::to_string(lo_) : "-inf";
      s += ", ";
      s += has_hi_ ? std::to_string(hi_) : "+inf";
      return s + "]";
    }
  }
  return "?";
}

}  // namespace wfregs::analysis
