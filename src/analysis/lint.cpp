#include "wfregs/analysis/lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "wfregs/analysis/exact_facts.hpp"
#include "wfregs/analysis/program_facts.hpp"
#include "wfregs/core/register_elimination.hpp"

namespace wfregs::analysis {

namespace {

using Severity = Diagnostic::Severity;
using Pass = Diagnostic::Pass;

const char* pass_name(Pass p) {
  switch (p) {
    case Pass::kStructure: return "structure";
    case Pass::kPortDiscipline: return "port-discipline";
    case Pass::kOneUse: return "one-use";
    case Pass::kBounds: return "bounds";
    case Pass::kTypeSpec: return "typespec";
  }
  return "?";
}

std::string join_ports(const std::set<PortId>& ports) {
  std::string out = "{";
  bool first = true;
  for (PortId p : ports) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(p);
  }
  return out + "}";
}

/// Keeps long counterexample paths readable.
std::vector<std::string> truncate_trace(std::vector<std::string> t) {
  constexpr std::size_t kMax = 48;
  if (t.size() <= kMax) return t;
  std::vector<std::string> out(t.begin(), t.begin() + kMax / 2);
  out.push_back("... (" + std::to_string(t.size() - kMax) + " steps elided)");
  out.insert(out.end(), t.end() - static_cast<long>(kMax / 2 - 1), t.end());
  return out;
}

/// One program analyzed under one persistent-input environment: the exact
/// enumeration when it applies, the abstract interpretation otherwise.
struct ProgAnalysis {
  ProgramFacts abs;
  ExactProgramFacts exact;

  bool inspectable() const { return exact.available || abs.inspectable; }

  ValueSet returns() const {
    return exact.available ? exact.return_values : abs.return_values;
  }

  const std::vector<ValueSet>& pers_out() const {
    return exact.available ? exact.persistent_out : abs.persistent_out;
  }

  /// Every invocation id the program can issue on `slot`.
  ValueSet slot_invs(int slot) const {
    if (exact.available) {
      if (slot < 0 || slot >= static_cast<int>(exact.slot_invs.size())) {
        return ValueSet::bottom();
      }
      return exact.slot_invs[static_cast<std::size_t>(slot)];
    }
    ValueSet out = ValueSet::bottom();
    for (std::size_t pc = 0; pc < abs.code.size(); ++pc) {
      if (abs.code[pc].op == StaticInstr::Op::kInvoke &&
          abs.code[pc].slot == slot && abs.reachable[pc]) {
        out = ValueSet::join(out, abs.invoke_invs[pc]);
      }
    }
    return out;
  }

  /// Max over executions of the summed weights of visited invoke sites.
  Bound max_site_weight(
      const std::function<Bound(int slot, const ValueSet& invs)>& w) const {
    if (exact.available) {
      return exact.max_weight([&](int slot, Val inv) {
        return w(slot, ValueSet::singleton(inv));
      });
    }
    if (abs.inspectable) {
      return abs.max_weight([&](int pc) {
        const StaticInstr& ins = abs.code[static_cast<std::size_t>(pc)];
        return w(ins.slot, abs.invoke_invs[static_cast<std::size_t>(pc)]);
      });
    }
    return Bound::inf();
  }

  /// A rendered execution visiting matching sites >= `want` times.
  std::vector<std::string> witness(
      const std::function<bool(int slot, const ValueSet& invs)>& site,
      std::size_t want) const {
    std::vector<std::string> out;
    if (exact.available) {
      auto w = exact.witness(
          [&](int slot, Val inv) {
            return site(slot, ValueSet::singleton(inv));
          },
          want);
      if (w) {
        out.reserve(w->size());
        for (int s : *w) out.push_back(exact.describe_state(s));
      }
    } else if (abs.inspectable) {
      auto w = abs.witness_path(
          [&](int pc) {
            const StaticInstr& ins = abs.code[static_cast<std::size_t>(pc)];
            return ins.op == StaticInstr::Op::kInvoke &&
                   site(ins.slot, abs.invoke_invs[static_cast<std::size_t>(pc)]);
          },
          want);
      if (w) {
        out.reserve(w->size());
        for (int pc : *w) out.push_back(abs.describe_pc(pc));
      }
    }
    return truncate_trace(std::move(out));
  }
};

/// All programs of one Implementation node analyzed at the per-port
/// persistent fixpoint.
struct NodeSummary {
  // progs[inv][port]; null when the node has no such program.
  std::vector<std::vector<std::shared_ptr<ProgAnalysis>>> progs;
  // Per port: join of the persistent registers over any operation history.
  std::vector<std::vector<ValueSet>> persist;
};

enum class AccessKind { kAny, kRead, kWrite };

bool matches_kind(const ValueSet& invs, AccessKind kind) {
  switch (kind) {
    case AccessKind::kAny: return !invs.is_bottom();
    case AccessKind::kRead: return invs.contains(0);
    case AccessKind::kWrite: return !invs.clamp_ge(1).is_bottom();
  }
  return false;
}

bool at_most_one(Bound b) { return b.finite && b.n <= 1; }

class Linter {
 public:
  explicit Linter(const Implementation& root) : root_(root) {}

  LintReport run() {
    // The assumed usage of the implementation itself: every (invocation,
    // port) it provides a program for, each "driven" by its own port.
    UseMap root_usage;
    for (PortId p = 0; p < root_.iface().ports(); ++p) {
      std::vector<Val> invs;
      for (InvId i = 0; i < root_.iface().num_invocations(); ++i) {
        if (root_.has_program(i, p)) invs.push_back(i);
      }
      if (!invs.empty()) root_usage[p][p] = ValueSet::of(std::move(invs));
    }
    std::vector<int> path;
    walk(root_, path, root_usage);

    for (const BaseUse& b : bases_) {
      check_base_structure(b);
      check_register_discipline(b);
      check_one_use(b);
    }
    compute_static_bounds();

    LintReport report;
    report.diagnostics = std::move(diags_);
    report.bounds = std::move(bounds_);
    return report;
  }

 private:
  // port -> driving outer port -> invocation ids it can issue there.
  using UseMap = std::map<PortId, std::map<PortId, ValueSet>>;

  struct BaseUse {
    std::vector<int> path;
    const ObjectDecl* decl = nullptr;
    UseMap usage;
  };

  // ---- diagnostics -------------------------------------------------------

  void emit(Severity sev, Pass pass, std::vector<int> path, std::string msg,
            std::vector<std::string> trace = {}) {
    Diagnostic d;
    d.severity = sev;
    d.pass = pass;
    d.object = render_path(path);
    d.path = std::move(path);
    d.message = std::move(msg);
    d.trace = std::move(trace);
    diags_.push_back(std::move(d));
  }

  std::string render_path(std::span<const int> path) const {
    std::string out = root_.name();
    const Implementation* cur = &root_;
    for (int idx : path) {
      const ObjectDecl& d = cur->objects()[static_cast<std::size_t>(idx)];
      out += " /" + std::to_string(idx) + "(" +
             (d.is_base() ? d.spec->name() : d.impl->name()) + ")";
      if (!d.is_base()) cur = d.impl.get();
    }
    return out;
  }

  // ---- node summaries (bottom-up) ----------------------------------------

  const NodeSummary& summary(const Implementation& node) {
    auto it = summaries_.find(&node);
    if (it != summaries_.end()) return *it->second;
    in_progress_.insert(&node);

    auto s = std::make_shared<NodeSummary>();
    const int nports = node.iface().ports();
    const int ninvs = node.iface().num_invocations();
    const int num_slots = static_cast<int>(node.objects().size());
    s->persist.assign(static_cast<std::size_t>(nports), {});
    for (auto& regs : s->persist) {
      for (Val v : node.persistent_initial()) {
        regs.push_back(ValueSet::singleton(v));
      }
    }
    s->progs.assign(
        static_cast<std::size_t>(ninvs),
        std::vector<std::shared_ptr<ProgAnalysis>>(
            static_cast<std::size_t>(nports)));

    // Per-port persistent fixpoint: operations on a port may run in any
    // number and order, so iterate join(initial, outputs) to a fixpoint,
    // widening if it drags on and bailing to top as a backstop.
    constexpr int kWidenAfter = 16;
    constexpr int kMaxRounds = 200;
    bool force_top = false;
    for (int round = 0;; ++round) {
      bool changed = false;
      for (PortId p = 0; p < nports; ++p) {
        const ResponseOracle oracle = make_oracle(node, p);
        std::vector<ValueSet> next = s->persist[p];
        for (InvId i = 0; i < ninvs; ++i) {
          if (!node.has_program(i, p)) continue;
          auto a = std::make_shared<ProgAnalysis>();
          const ProgramCode& prog = *node.program(i, p);
          a->exact =
              enumerate_program(prog, s->persist[p], num_slots, oracle, {});
          a->abs = analyze_program(prog, s->persist[p], oracle);
          s->progs[static_cast<std::size_t>(i)][static_cast<std::size_t>(p)] =
              a;
          if (a->inspectable()) {
            const auto& out = a->pers_out();
            for (std::size_t k = 0; k < next.size() && k < out.size(); ++k) {
              next[k] = ValueSet::join(next[k], out[k]);
            }
          } else {
            // Opaque program: it may store anything back.
            for (auto& v : next) v = ValueSet::top();
          }
        }
        if (round >= kWidenAfter) {
          for (std::size_t k = 0; k < next.size(); ++k) {
            next[k] = ValueSet::widen(s->persist[p][k], next[k]);
          }
        }
        if (force_top) {
          for (auto& v : next) v = ValueSet::top();
        }
        if (next != s->persist[p]) {
          s->persist[p] = std::move(next);
          changed = true;
        }
      }
      if (!changed) break;
      if (round >= kMaxRounds) force_top = true;
    }

    in_progress_.erase(&node);
    summaries_[&node] = s;
    return *s;
  }

  ResponseOracle make_oracle(const Implementation& node, PortId p) {
    return [this, &node, p](int slot, const ValueSet& invs) -> ValueSet {
      if (slot < 0 || slot >= static_cast<int>(node.objects().size())) {
        return ValueSet::bottom();
      }
      const ObjectDecl& d = node.objects()[static_cast<std::size_t>(slot)];
      if (p < 0 || p >= static_cast<PortId>(d.port_of_outer.size())) {
        return ValueSet::bottom();
      }
      const PortId pp = d.port_of_outer[static_cast<std::size_t>(p)];
      if (pp == kNoPort) return ValueSet::bottom();
      if (d.is_base()) return base_responses(d, pp, invs);
      return nested_responses(*d.impl, pp, invs);
    };
  }

  ValueSet base_responses(const ObjectDecl& d, PortId port,
                          const ValueSet& invs) {
    const TypeSpec& spec = *d.spec;
    if (port < 0 || port >= spec.ports()) return ValueSet::bottom();
    auto& reach = reachable_cache_[{&spec, d.initial}];
    if (reach.empty()) reach = spec.reachable_from(d.initial);
    std::vector<Val> resps;
    for (Val iv : invs.enumerate_within(0, spec.num_invocations() - 1)) {
      for (StateId q : reach) {
        for (const Transition& t :
             spec.delta(q, port, static_cast<InvId>(iv))) {
          resps.push_back(t.resp);
        }
      }
    }
    return ValueSet::of(std::move(resps));
  }

  ValueSet nested_responses(const Implementation& child, PortId port,
                            const ValueSet& invs) {
    if (port < 0 || port >= child.iface().ports()) return ValueSet::bottom();
    if (in_progress_.count(&child)) return ValueSet::top();  // cycle guard
    const NodeSummary& cs = summary(child);
    ValueSet out = ValueSet::bottom();
    const int n = child.iface().num_invocations();
    for (Val iv : invs.enumerate_within(0, n - 1)) {
      const InvId i = static_cast<InvId>(iv);
      if (!child.has_program(i, port)) continue;  // dead access, no response
      const auto& a = cs.progs[static_cast<std::size_t>(i)]
                              [static_cast<std::size_t>(port)];
      if (!a || !a->inspectable()) return ValueSet::top();
      out = ValueSet::join(out, a->returns());
    }
    return out;
  }

  // ---- top-down usage walk ----------------------------------------------

  void walk(const Implementation& node, std::vector<int>& path,
            const UseMap& usage) {
    const NodeSummary& s = summary(node);
    const int ninvs = node.iface().num_invocations();
    std::vector<UseMap> child_usage(node.objects().size());

    for (const auto& [p, drivers] : usage) {
      for (const auto& [driver, invs] : drivers) {
        for (Val iv : invs.enumerate_within(0, ninvs - 1)) {
          const InvId i = static_cast<InvId>(iv);
          if (!node.has_program(i, p)) {
            if (missing_reported_.insert({&node, i, p}).second) {
              emit(Severity::kError, Pass::kStructure, path,
                   "no program for invocation " + std::to_string(i) +
                       " on port " + std::to_string(p) +
                       ", but outer port " + std::to_string(driver) +
                       " can issue it");
            }
            continue;
          }
          const auto& a = s.progs[static_cast<std::size_t>(i)]
                                 [static_cast<std::size_t>(p)];
          if (!a->inspectable()) {
            if (opaque_reported_.insert({&node, i, p}).second) {
              emit(Severity::kWarning, Pass::kStructure, path,
                   "program '" + node.program(i, p)->name() +
                       "' (invocation " + std::to_string(i) + ", port " +
                       std::to_string(p) +
                       ") is not statically inspectable; discipline not "
                       "checked through it");
            }
            continue;
          }
          for (std::size_t slot = 0; slot < node.objects().size(); ++slot) {
            const ValueSet to = a->slot_invs(static_cast<int>(slot));
            if (to.is_bottom()) continue;
            const ObjectDecl& d = node.objects()[slot];
            const PortId pp = d.port_of_outer[static_cast<std::size_t>(p)];
            std::vector<int> opath = path;
            opath.push_back(static_cast<int>(slot));
            if (pp == kNoPort) {
              emit(Severity::kError, Pass::kStructure, std::move(opath),
                   "program '" + node.program(i, p)->name() + "' on port " +
                       std::to_string(p) +
                       " can invoke this object, but port_of_outer[" +
                       std::to_string(p) + "] is kNoPort",
                   a->witness(
                       [&](int sl, const ValueSet&) {
                         return sl == static_cast<int>(slot);
                       },
                       1));
              continue;
            }
            const int inner_invs =
                d.is_base() ? d.spec->num_invocations()
                            : d.impl->iface().num_invocations();
            if (!to.clamp_le(-1).is_bottom() ||
                !to.clamp_ge(inner_invs).is_bottom()) {
              emit(Severity::kError, Pass::kStructure, std::move(opath),
                   "program '" + node.program(i, p)->name() + "' on port " +
                       std::to_string(p) + " can issue invocation ids " +
                       to.to_string() + " outside [0, " +
                       std::to_string(inner_invs) + ")");
            }
            const ValueSet in_range =
                ValueSet::of(to.enumerate_within(0, inner_invs - 1));
            if (in_range.is_bottom()) continue;
            auto& cell = child_usage[slot][pp][driver];
            cell = ValueSet::join(cell, in_range);
          }
        }
      }
    }

    for (std::size_t slot = 0; slot < node.objects().size(); ++slot) {
      const ObjectDecl& d = node.objects()[slot];
      path.push_back(static_cast<int>(slot));
      if (d.is_base()) {
        bases_.push_back(BaseUse{path, &d, std::move(child_usage[slot])});
      } else {
        walk(*d.impl, path, child_usage[slot]);
      }
      path.pop_back();
    }
  }

  // ---- pass 0: base-object structure ------------------------------------

  void check_base_structure(const BaseUse& b) {
    const TypeSpec& spec = *b.decl->spec;
    if (!spec.is_total()) {
      std::string why = "type table is partial";
      try {
        spec.validate();
      } catch (const std::exception& e) {
        why = e.what();
      }
      emit(Severity::kError, Pass::kTypeSpec, b.path, why);
    }
    if (b.decl->initial < 0 || b.decl->initial >= spec.num_states()) {
      emit(Severity::kError, Pass::kStructure, b.path,
           "initial state " + std::to_string(b.decl->initial) +
               " outside [0, " + std::to_string(spec.num_states()) + ")");
    }
  }

  // ---- pass 1: register port discipline (Section 4.1) --------------------

  void check_register_discipline(const BaseUse& b) {
    const TypeSpec& spec = *b.decl->spec;
    const auto shape = core::classify_register(spec);
    if (!shape) {
      // Non-register base: port sharing is fine only for oblivious types.
      if (!spec.is_oblivious()) {
        for (const auto& [pp, drivers] : b.usage) {
          if (drivers.size() > 1) {
            std::set<PortId> ds;
            for (const auto& [d, _] : drivers) ds.insert(d);
            emit(Severity::kWarning, Pass::kPortDiscipline, b.path,
                 "port " + std::to_string(pp) +
                     " of a non-oblivious type is driven by outer ports " +
                     join_ports(ds));
          }
        }
      }
      return;
    }

    using Kind = core::RegisterShape::Kind;
    const auto is_reader_port = [&](PortId p) {
      switch (shape->kind) {
        case Kind::kSrsw: return p == 0;
        case Kind::kMrsw: return p < shape->readers;
        case Kind::kMrmw: return true;
      }
      return false;
    };
    const auto is_writer_port = [&](PortId p) {
      switch (shape->kind) {
        case Kind::kSrsw: return p == 1;
        case Kind::kMrsw: return p == shape->readers;
        case Kind::kMrmw: return true;
      }
      return false;
    };
    const char* kind_name = shape->kind == Kind::kSrsw   ? "SRSW"
                            : shape->kind == Kind::kMrsw ? "MRSW"
                                                         : "MRMW";

    std::set<PortId> read_drivers, write_drivers;
    for (const auto& [pp, drivers] : b.usage) {
      bool reads = false, writes = false;
      std::set<PortId> ds;
      for (const auto& [driver, invs] : drivers) {
        ds.insert(driver);
        if (invs.contains(0)) {
          reads = true;
          read_drivers.insert(driver);
        }
        if (!invs.clamp_ge(1).is_bottom()) {
          writes = true;
          write_drivers.insert(driver);
        }
      }
      if (ds.size() > 1) {
        emit(Severity::kError, Pass::kPortDiscipline, b.path,
             std::string(kind_name) + " register port " +
                 std::to_string(pp) + " is driven by outer ports " +
                 join_ports(ds) + "; a register port belongs to one process");
      }
      if (reads && !is_reader_port(pp)) {
        emit(Severity::kError, Pass::kPortDiscipline, b.path,
             "read invocation arrives on port " + std::to_string(pp) +
                 ", which is not a reader port of this " + kind_name +
                 " register");
      }
      if (writes && !is_writer_port(pp)) {
        emit(Severity::kError, Pass::kPortDiscipline, b.path,
             "write invocation arrives on port " + std::to_string(pp) +
                 ", which is not the writer port of this " + kind_name +
                 " register");
      }
    }
    if (write_drivers.size() > 1) {
      emit(Severity::kError, Pass::kPortDiscipline, b.path,
           std::string(kind_name) + " register is written from outer ports " +
               join_ports(write_drivers) +
               "; Section 4.1 normal form requires a single writer");
    }
    if (shape->kind == Kind::kMrmw && read_drivers.size() > 1) {
      emit(Severity::kError, Pass::kPortDiscipline, b.path,
           "MRMW register is read from outer ports " +
               join_ports(read_drivers) +
               "; only SRSW/MRSW register bases admit multiple readers "
               "(Section 4.1)");
    }
  }

  // ---- pass 2: one-use discipline (Section 3) ----------------------------

  void check_one_use(const BaseUse& b) {
    if (!core::is_one_use_bit_spec(*b.decl->spec)) return;

    const auto trace_for = [&](AccessKind kind, std::size_t want)
        -> std::vector<std::string> {
      // Render the violation inside the outermost program that exhibits it:
      // sites are invokes on the first path component (precise about the
      // invocation kind only when the bit is a direct child).
      return root_trace(b.path, kind, want);
    };

    Bound total_reads = Bound::of(0), total_writes = Bound::of(0);
    std::set<PortId> reading_ports, writing_ports;
    for (PortId p = 0; p < root_.iface().ports(); ++p) {
      Bound port_reads = Bound::of(0), port_writes = Bound::of(0);
      for (InvId i = 0; i < root_.iface().num_invocations(); ++i) {
        if (!root_.has_program(i, p)) continue;
        const Bound r = access_bound(root_, i, p, b.path, AccessKind::kRead);
        const Bound w = access_bound(root_, i, p, b.path, AccessKind::kWrite);
        if (!at_most_one(r)) {
          emit(Severity::kError, Pass::kOneUse, b.path,
               "one operation (invocation " + std::to_string(i) +
                   " on port " + std::to_string(p) + ") can read this "
                   "one-use bit " + r.to_string() + " times",
               trace_for(AccessKind::kRead, 2));
        }
        if (!at_most_one(w)) {
          emit(Severity::kError, Pass::kOneUse, b.path,
               "one operation (invocation " + std::to_string(i) +
                   " on port " + std::to_string(p) + ") can write this "
                   "one-use bit " + w.to_string() + " times",
               trace_for(AccessKind::kWrite, 2));
        }
        port_reads = Bound::max(port_reads, r);
        port_writes = Bound::max(port_writes, w);
      }
      if (!port_reads.is_zero()) reading_ports.insert(p);
      if (!port_writes.is_zero()) writing_ports.insert(p);
      total_reads = total_reads + port_reads;
      total_writes = total_writes + port_writes;
    }
    if (!at_most_one(total_reads) && reading_ports.size() > 1) {
      emit(Severity::kError, Pass::kOneUse, b.path,
           "one-use bit can be read from outer ports " +
               join_ports(reading_ports) +
               " (combined bound " + total_reads.to_string() +
               "); a one-use bit supports a single read");
    }
    if (!at_most_one(total_writes) && writing_ports.size() > 1) {
      emit(Severity::kError, Pass::kOneUse, b.path,
           "one-use bit can be written from outer ports " +
               join_ports(writing_ports) +
               " (combined bound " + total_writes.to_string() +
               "); a one-use bit supports a single write");
    }
  }

  std::vector<std::string> root_trace(std::span<const int> path,
                                      AccessKind kind, std::size_t want) {
    const NodeSummary& s = summary(root_);
    const int first = path.front();
    const bool direct = path.size() == 1;
    for (PortId p = 0; p < root_.iface().ports(); ++p) {
      for (InvId i = 0; i < root_.iface().num_invocations(); ++i) {
        if (!root_.has_program(i, p)) continue;
        const auto& a = s.progs[static_cast<std::size_t>(i)]
                               [static_cast<std::size_t>(p)];
        if (!a || !a->inspectable()) continue;
        auto t = a->witness(
            [&](int slot, const ValueSet& invs) {
              if (slot != first) return false;
              return !direct || matches_kind(invs, kind);
            },
            want);
        if (!t.empty()) return t;
      }
    }
    return {};
  }

  // ---- pass 3: static access bounds (Section 4.2) ------------------------

  void compute_static_bounds() {
    for (const BaseUse& b : bases_) {
      StaticObjectBound sb;
      sb.path = b.path;
      sb.type_name = b.decl->spec->name();
      sb.accesses = Bound::of(0);
      sb.reads = Bound::of(0);
      sb.writes = Bound::of(0);
      // The Section 4.2 scenario: each outer port performs one operation,
      // so the static bound is the sum over ports of the worst single
      // operation on that port.
      for (PortId p = 0; p < root_.iface().ports(); ++p) {
        Bound any = Bound::of(0), rd = Bound::of(0), wr = Bound::of(0);
        for (InvId i = 0; i < root_.iface().num_invocations(); ++i) {
          if (!root_.has_program(i, p)) continue;
          any = Bound::max(any,
                           access_bound(root_, i, p, b.path, AccessKind::kAny));
          rd = Bound::max(rd,
                          access_bound(root_, i, p, b.path, AccessKind::kRead));
          wr = Bound::max(
              wr, access_bound(root_, i, p, b.path, AccessKind::kWrite));
        }
        sb.accesses = sb.accesses + any;
        sb.reads = sb.reads + rd;
        sb.writes = sb.writes + wr;
      }
      bounds_.push_back(std::move(sb));
    }
  }

  /// Max accesses (of the given kind) to the base object at `relpath`
  /// (relative to `node`) during one execution of node's program for
  /// (inv, port).  Telescopes: the weight of an invoke on a nested object
  /// is the recursively computed bound of the inner program it triggers.
  Bound access_bound(const Implementation& node, InvId inv, PortId port,
                     std::span<const int> relpath, AccessKind kind) {
    const BoundKey key{&node, inv, port, static_cast<int>(kind),
                       path_key(relpath)};
    if (auto it = bound_memo_.find(key); it != bound_memo_.end()) {
      return it->second;
    }
    if (!bound_active_.insert(key).second) return Bound::inf();

    Bound result = Bound::of(0);
    if (node.has_program(inv, port)) {
      const NodeSummary& s = summary(node);
      const auto& a = s.progs[static_cast<std::size_t>(inv)]
                             [static_cast<std::size_t>(port)];
      if (!a || !a->inspectable()) {
        result = Bound::inf();
      } else {
        result = a->max_site_weight([&](int slot, const ValueSet& invs) {
          if (slot != relpath.front() || invs.is_bottom()) return Bound::of(0);
          const ObjectDecl& d =
              node.objects()[static_cast<std::size_t>(slot)];
          if (relpath.size() == 1) {
            if (!d.is_base()) return Bound::of(0);
            return matches_kind(invs, kind) ? Bound::of(1) : Bound::of(0);
          }
          if (d.is_base()) return Bound::of(0);
          const PortId pp = d.port_of_outer[static_cast<std::size_t>(port)];
          if (pp == kNoPort) return Bound::of(0);
          const int n = d.impl->iface().num_invocations();
          Bound best = Bound::of(0);
          for (Val iv : invs.enumerate_within(0, n - 1)) {
            best = Bound::max(
                best, access_bound(*d.impl, static_cast<InvId>(iv), pp,
                                   relpath.subspan(1), kind));
          }
          return best;
        });
      }
    }

    bound_active_.erase(key);
    bound_memo_[key] = result;
    return result;
  }

  static std::string path_key(std::span<const int> relpath) {
    std::string out;
    for (int x : relpath) {
      out += std::to_string(x);
      out += '/';
    }
    return out;
  }

  using BoundKey =
      std::tuple<const Implementation*, InvId, PortId, int, std::string>;

  const Implementation& root_;
  std::vector<Diagnostic> diags_;
  std::vector<StaticObjectBound> bounds_;
  std::vector<BaseUse> bases_;
  std::map<const Implementation*, std::shared_ptr<NodeSummary>> summaries_;
  std::set<const Implementation*> in_progress_;
  std::map<std::pair<const TypeSpec*, StateId>, std::vector<StateId>>
      reachable_cache_;
  std::set<std::tuple<const Implementation*, InvId, PortId>>
      missing_reported_, opaque_reported_;
  std::map<BoundKey, Bound> bound_memo_;
  std::set<BoundKey> bound_active_;
};

}  // namespace

// ---- public API -----------------------------------------------------------

std::string Diagnostic::to_string() const {
  std::string out = severity == Severity::kError ? "[error]" : "[warning]";
  out += " (";
  out += pass_name(pass);
  out += ") ";
  out += object;
  out += ": ";
  out += message;
  for (const std::string& line : trace) {
    out += "\n      ";
    out += line;
  }
  return out;
}

std::size_t LintReport::error_count() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::size_t LintReport::warning_count() const {
  return diagnostics.size() - error_count();
}

std::string LintReport::to_string() const {
  std::ostringstream os;
  os << error_count() << " error(s), " << warning_count() << " warning(s)\n";
  for (const Diagnostic& d : diagnostics) os << d.to_string() << "\n";
  if (!bounds.empty()) {
    os << "static access bounds (per base object, one operation per port):\n";
    for (const StaticObjectBound& b : bounds) {
      os << "  ";
      for (std::size_t i = 0; i < b.path.size(); ++i) {
        os << (i ? "/" : "") << b.path[i];
      }
      os << " (" << b.type_name << "): accesses<=" << b.accesses.to_string()
         << " reads<=" << b.reads.to_string()
         << " writes<=" << b.writes.to_string() << "\n";
    }
  }
  return os.str();
}

LintReport lint(const Implementation& impl) { return Linter(impl).run(); }

LintReport lint_type(const TypeSpec& spec, StateId initial) {
  LintReport report;
  const auto emit = [&](Severity sev, std::string msg) {
    Diagnostic d;
    d.severity = sev;
    d.pass = Pass::kTypeSpec;
    d.object = spec.name();
    d.message = std::move(msg);
    report.diagnostics.push_back(std::move(d));
  };

  // Totality: every cell of delta must offer a transition (Section 2.1).
  int partial_cells = 0;
  std::string first_partial;
  for (StateId q = 0; q < spec.num_states(); ++q) {
    for (PortId p = 0; p < spec.ports(); ++p) {
      for (InvId i = 0; i < spec.num_invocations(); ++i) {
        if (spec.delta(q, p, i).empty()) {
          if (partial_cells == 0) {
            first_partial = "delta(" + spec.state_name(q) + ", port " +
                            std::to_string(p) + ", " +
                            spec.invocation_name(i) + ") is empty";
          }
          ++partial_cells;
        }
      }
    }
  }
  if (partial_cells > 0) {
    emit(Severity::kError,
         "type is partial: " + std::to_string(partial_cells) +
             " empty delta cell(s); first: " + first_partial);
  }

  if (!spec.is_deterministic() && partial_cells == 0) {
    int nondet = 0;
    for (StateId q = 0; q < spec.num_states(); ++q) {
      for (PortId p = 0; p < spec.ports(); ++p) {
        for (InvId i = 0; i < spec.num_invocations(); ++i) {
          if (spec.delta(q, p, i).size() > 1) ++nondet;
        }
      }
    }
    emit(Severity::kWarning,
         "type is nondeterministic (" + std::to_string(nondet) +
             " cell(s) with multiple transitions); the Section 5 "
             "single-object deciders require determinism");
  }

  if (!spec.is_oblivious()) {
    emit(Severity::kWarning,
         "type is not oblivious: delta depends on the port (see the "
         "Section 5.2 general construction)");
  }

  if (initial >= 0 && initial < spec.num_states()) {
    const auto reach = spec.reachable_from(initial);
    std::vector<StateId> unreachable;
    for (StateId q = 0; q < spec.num_states(); ++q) {
      if (!std::binary_search(reach.begin(), reach.end(), q)) {
        unreachable.push_back(q);
      }
    }
    if (!unreachable.empty()) {
      std::string names;
      for (std::size_t k = 0; k < unreachable.size() && k < 8; ++k) {
        if (k) names += ", ";
        names += spec.state_name(unreachable[k]);
      }
      if (unreachable.size() > 8) names += ", ...";
      emit(Severity::kWarning,
           std::to_string(unreachable.size()) +
               " state(s) unreachable from " + spec.state_name(initial) +
               ": " + names);
    }
  } else {
    emit(Severity::kError, "initial state " + std::to_string(initial) +
                               " outside [0, " +
                               std::to_string(spec.num_states()) + ")");
  }
  return report;
}

std::vector<Diagnostic> check_bound_dominance(const LintReport& statics,
                                              const core::AccessBounds& dyn) {
  std::vector<Diagnostic> out;
  const auto emit = [&](std::vector<int> path, std::string msg) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.pass = Pass::kBounds;
    d.path = path;
    for (std::size_t i = 0; i < path.size(); ++i) {
      d.object += (i ? "/" : "") + std::to_string(path[i]);
    }
    d.message = std::move(msg);
    out.push_back(std::move(d));
  };

  std::map<std::vector<int>, const StaticObjectBound*> by_path;
  for (const StaticObjectBound& sb : statics.bounds) by_path[sb.path] = &sb;

  for (const core::ObjectBound& ob : dyn.per_object) {
    const auto it = by_path.find(ob.path);
    if (it == by_path.end()) {
      emit(ob.path, "dynamic bounds cover a base object (" + ob.type_name +
                        ") the static analysis did not see");
      continue;
    }
    const StaticObjectBound& sb = *it->second;
    const auto check = [&](const char* what, Bound stat, std::size_t d) {
      if (!Bound::dominates(stat, d)) {
        emit(ob.path, std::string("static ") + what + " bound " +
                          stat.to_string() + " is below the exact dynamic " +
                          what + " bound " + std::to_string(d) + " (" +
                          ob.type_name + "): one of the analyses is unsound");
      }
    };
    check("access", sb.accesses, ob.max_accesses);
    check("read", sb.reads, ob.read_bound);
    check("write", sb.writes, ob.write_bound);
  }
  return out;
}

std::function<std::optional<std::string>(const Implementation&)>
static_precheck() {
  return [](const Implementation& impl) -> std::optional<std::string> {
    const LintReport report = lint(impl);
    if (report.ok()) return std::nullopt;
    std::string msg = "static precheck: " +
                      std::to_string(report.error_count()) +
                      " lint error(s) in '" + impl.name() + "'; first: ";
    for (const Diagnostic& d : report.diagnostics) {
      if (d.severity == Severity::kError) {
        msg += d.to_string();
        break;
      }
    }
    return msg;
  };
}

}  // namespace wfregs::analysis
