#include "wfregs/analysis/program_facts.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "wfregs/analysis/graph.hpp"

namespace wfregs::analysis {

namespace {

/// Abstract register file; bottom is represented by an empty vector.
using AbsRegs = std::vector<ValueSet>;

ValueSet eval_expr(const Expr& e, const AbsRegs& regs) {
  using K = Expr::Kind;
  switch (e.kind()) {
    case K::kConst:
      return ValueSet::singleton(e.const_value());
    case K::kReg: {
      const int r = e.reg_index();
      if (r < 0 || r >= static_cast<int>(regs.size())) {
        return ValueSet::top();
      }
      return regs[static_cast<std::size_t>(r)];
    }
    default:
      break;
  }
  const auto a = e.child_a();
  const auto b = e.child_b();
  const ValueSet va = a ? eval_expr(*a, regs) : ValueSet::bottom();
  const ValueSet vb = b ? eval_expr(*b, regs) : ValueSet::bottom();
  switch (e.kind()) {
    case K::kAdd: return ValueSet::add(va, vb);
    case K::kSub: return ValueSet::sub(va, vb);
    case K::kMul: return ValueSet::mul(va, vb);
    case K::kDiv: return ValueSet::div(va, vb);
    case K::kMod: return ValueSet::mod(va, vb);
    case K::kEq: return ValueSet::cmp_eq(va, vb);
    case K::kNe: return ValueSet::cmp_ne(va, vb);
    case K::kLt: return ValueSet::cmp_lt(va, vb);
    case K::kLe: return ValueSet::cmp_le(va, vb);
    case K::kAnd: return ValueSet::logic_and(va, vb);
    case K::kOr: return ValueSet::logic_or(va, vb);
    case K::kNot: return ValueSet::logic_not(va);
    default: return ValueSet::top();
  }
}

/// Narrows `regs` under the assumption that `cond` evaluated to
/// `taken`.  Only shapes the ProgramBuilder mini-language actually produces
/// are refined (comparisons of a bare register against a bounded operand,
/// possibly under kNot / kAnd / kOr); everything else is left untouched,
/// which is always sound.
void refine(const Expr& cond, bool taken, AbsRegs& regs) {
  using K = Expr::Kind;
  const K k = cond.kind();
  if (k == K::kNot) {
    if (const auto a = cond.child_a()) refine(*a, !taken, regs);
    return;
  }
  if ((k == K::kAnd && taken) || (k == K::kOr && !taken)) {
    // Both conjuncts hold / both disjuncts fail.
    if (const auto a = cond.child_a()) refine(*a, taken, regs);
    if (const auto b = cond.child_b()) refine(*b, taken, regs);
    return;
  }
  if (k != K::kEq && k != K::kNe && k != K::kLt && k != K::kLe) return;
  const auto a = cond.child_a();
  const auto b = cond.child_b();
  if (!a || !b) return;

  const auto narrow = [&](const Expr& reg_side, const Expr& other,
                          bool reg_is_left) {
    if (reg_side.kind() != K::kReg) return;
    const int r = reg_side.reg_index();
    if (r < 0 || r >= static_cast<int>(regs.size())) return;
    const ValueSet o = eval_expr(other, regs);
    if (o.is_bottom()) return;
    ValueSet& cur = regs[static_cast<std::size_t>(r)];
    const bool single = o.is_precise() && o.values().size() == 1;
    switch (k) {
      case K::kEq:
        if (taken && single) cur = cur.clamp_eq(o.values().front());
        if (!taken && single) cur = cur.clamp_ne(o.values().front());
        break;
      case K::kNe:
        if (taken && single) cur = cur.clamp_ne(o.values().front());
        if (!taken && single) cur = cur.clamp_eq(o.values().front());
        break;
      case K::kLt:
        if (reg_is_left) {
          // reg < o (taken) / reg >= o (fallthrough)
          if (taken && o.has_upper_bound() &&
              o.upper_bound() > std::numeric_limits<Val>::min()) {
            cur = cur.clamp_le(o.upper_bound() - 1);
          }
          if (!taken && o.has_lower_bound()) {
            cur = cur.clamp_ge(o.lower_bound());
          }
        } else {
          // o < reg (taken) / o >= reg (fallthrough)
          if (taken && o.has_lower_bound() &&
              o.lower_bound() < std::numeric_limits<Val>::max()) {
            cur = cur.clamp_ge(o.lower_bound() + 1);
          }
          if (!taken && o.has_upper_bound()) {
            cur = cur.clamp_le(o.upper_bound());
          }
        }
        break;
      case K::kLe:
        if (reg_is_left) {
          if (taken && o.has_upper_bound()) {
            cur = cur.clamp_le(o.upper_bound());
          }
          if (!taken && o.has_lower_bound() &&
              o.lower_bound() < std::numeric_limits<Val>::max()) {
            cur = cur.clamp_ge(o.lower_bound() + 1);
          }
        } else {
          if (taken && o.has_lower_bound()) {
            cur = cur.clamp_ge(o.lower_bound());
          }
          if (!taken && o.has_upper_bound() &&
              o.upper_bound() > std::numeric_limits<Val>::min()) {
            cur = cur.clamp_le(o.upper_bound() - 1);
          }
        }
        break;
      default:
        break;
    }
  };
  narrow(*a, *b, true);
  narrow(*b, *a, false);
}

AbsRegs join_regs(const AbsRegs& a, const AbsRegs& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  AbsRegs out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = ValueSet::join(a[i], b[i]);
  }
  return out;
}

AbsRegs widen_regs(const AbsRegs& prev, const AbsRegs& next) {
  if (prev.empty()) return next;
  AbsRegs out(prev.size());
  for (std::size_t i = 0; i < prev.size(); ++i) {
    out[i] = ValueSet::widen(prev[i], next[i]);
  }
  return out;
}

}  // namespace

ProgramFacts analyze_program(const ProgramCode& prog,
                             const std::vector<ValueSet>& persistent_in,
                             const ResponseOracle& oracle) {
  ProgramFacts facts;
  facts.name = prog.name();
  auto code = prog.static_code();
  if (!code) return facts;  // opaque program: inspectable stays false
  facts.inspectable = true;
  facts.code = std::move(*code);
  const int n = static_cast<int>(facts.code.size());
  const int num_regs = prog.num_regs();
  facts.reachable.assign(static_cast<std::size_t>(n), false);
  facts.succ.assign(static_cast<std::size_t>(n), {});
  facts.invoke_invs.assign(static_cast<std::size_t>(n), ValueSet::bottom());
  facts.persistent_out.assign(persistent_in.size(), ValueSet::bottom());

  if (n == 0) return facts;

  // Widening kicks in once a pc has been updated this many times; loops in
  // practice stabilize in a handful of iterations, so this only guards
  // against genuinely growing counters (e.g. unbounded retry loops).
  constexpr int kWidenAfter = 24;

  std::vector<AbsRegs> state(static_cast<std::size_t>(n));
  std::vector<int> updates(static_cast<std::size_t>(n), 0);
  AbsRegs entry(static_cast<std::size_t>(num_regs), ValueSet::singleton(0));
  for (std::size_t i = 0;
       i < persistent_in.size() && i < entry.size(); ++i) {
    entry[i] = persistent_in[i];
  }

  std::deque<int> worklist;
  const auto propagate = [&](int pc, const AbsRegs& regs) {
    if (pc < 0 || pc >= n) return;  // corrupt target: ignore statically
    auto& cur = state[static_cast<std::size_t>(pc)];
    AbsRegs merged = join_regs(cur, regs);
    if (updates[static_cast<std::size_t>(pc)] > kWidenAfter) {
      merged = widen_regs(cur, merged);
    }
    if (merged == cur && facts.reachable[static_cast<std::size_t>(pc)]) {
      return;
    }
    cur = std::move(merged);
    facts.reachable[static_cast<std::size_t>(pc)] = true;
    ++updates[static_cast<std::size_t>(pc)];
    worklist.push_back(pc);
  };
  propagate(0, entry);

  // One transfer step from pc; `record` switches between fixpoint mode and
  // the final fact-collection pass.
  const auto step = [&](int pc, bool record) {
    const StaticInstr& ins = facts.code[static_cast<std::size_t>(pc)];
    const AbsRegs& in = state[static_cast<std::size_t>(pc)];
    auto& succ = facts.succ[static_cast<std::size_t>(pc)];
    using Op = StaticInstr::Op;
    switch (ins.op) {
      case Op::kAssign: {
        AbsRegs out = in;
        if (ins.reg >= 0 && ins.reg < num_regs) {
          out[static_cast<std::size_t>(ins.reg)] = eval_expr(*ins.expr, in);
        }
        if (record) succ.push_back(pc + 1);
        else propagate(pc + 1, out);
        break;
      }
      case Op::kInvoke: {
        const ValueSet invs = eval_expr(*ins.expr, in);
        if (record) {
          facts.invoke_invs[static_cast<std::size_t>(pc)] = invs;
          succ.push_back(pc + 1);
          break;
        }
        const ValueSet resp =
            oracle ? oracle(ins.slot, invs) : ValueSet::top();
        if (resp.is_bottom()) break;  // access cannot produce a response
        AbsRegs out = in;
        if (ins.reg >= 0 && ins.reg < num_regs) {
          out[static_cast<std::size_t>(ins.reg)] = resp;
        }
        propagate(pc + 1, out);
        break;
      }
      case Op::kJump:
        if (record) succ.push_back(ins.target);
        else propagate(ins.target, in);
        break;
      case Op::kBranchIf: {
        const ValueSet c = eval_expr(*ins.expr, in);
        if (c.is_bottom()) break;
        const bool can_true =
            !(c.is_precise() && c.values() == std::vector<Val>{0});
        const bool can_false = c.contains(0);
        if (can_true) {
          if (record) {
            succ.push_back(ins.target);
          } else {
            AbsRegs out = in;
            refine(*ins.expr, true, out);
            propagate(ins.target, out);
          }
        }
        if (can_false) {
          if (record) {
            succ.push_back(pc + 1);
          } else {
            AbsRegs out = in;
            refine(*ins.expr, false, out);
            propagate(pc + 1, out);
          }
        }
        break;
      }
      case Op::kRet:
        if (record) {
          facts.return_values = ValueSet::join(
              facts.return_values, eval_expr(*ins.expr, in));
          for (std::size_t i = 0; i < facts.persistent_out.size(); ++i) {
            if (i < in.size()) {
              facts.persistent_out[i] =
                  ValueSet::join(facts.persistent_out[i], in[i]);
            }
          }
        }
        break;
      case Op::kFail:
        break;  // aborts the run: no dataflow out
    }
  };

  while (!worklist.empty()) {
    const int pc = worklist.front();
    worklist.pop_front();
    step(pc, /*record=*/false);
  }
  // Final pass over the fixpoint: collect pruned edges, invocation sets,
  // return and persistent-out values.
  for (int pc = 0; pc < n; ++pc) {
    if (facts.reachable[static_cast<std::size_t>(pc)]) {
      step(pc, /*record=*/true);
    }
  }
  return facts;
}

// ---- path counting ----------------------------------------------------------

Bound ProgramFacts::max_weight(
    const std::function<Bound(int pc)>& weight) const {
  if (!inspectable || code.empty()) return Bound::of(0);
  return longest_weighted_path(succ, {0}, [&](int pc) {
    if (code[static_cast<std::size_t>(pc)].op != StaticInstr::Op::kInvoke) {
      return Bound::of(0);
    }
    return weight(pc);
  });
}

Bound ProgramFacts::max_count(
    const std::function<bool(int pc)>& counted) const {
  return max_weight([&](int pc) {
    return counted(pc) ? Bound::of(1) : Bound::of(0);
  });
}

Bound ProgramFacts::slot_count(int slot) const {
  return max_count([&](int pc) {
    return code[static_cast<std::size_t>(pc)].slot == slot;
  });
}

std::optional<std::vector<int>> ProgramFacts::witness_path(
    const std::function<bool(int pc)>& counted, std::size_t want) const {
  if (!inspectable || code.empty()) return std::nullopt;
  return weighted_witness(succ, {0}, [&](int pc) {
    return code[static_cast<std::size_t>(pc)].op ==
               StaticInstr::Op::kInvoke &&
           counted(pc);
  }, want);
}

std::string ProgramFacts::describe_pc(int pc) const {
  const StaticInstr& ins = code[static_cast<std::size_t>(pc)];
  std::string s = "pc" + std::to_string(pc) + ": ";
  using Op = StaticInstr::Op;
  switch (ins.op) {
    case Op::kAssign:
      return s + "assign r" + std::to_string(ins.reg);
    case Op::kInvoke:
      return s + "invoke slot " + std::to_string(ins.slot) + " inv " +
             invoke_invs[static_cast<std::size_t>(pc)].to_string();
    case Op::kJump:
      return s + "jump -> pc" + std::to_string(ins.target);
    case Op::kBranchIf:
      return s + "branch -> pc" + std::to_string(ins.target);
    case Op::kRet:
      return s + "ret";
    case Op::kFail:
      return s + "fail";
  }
  return s + "?";
}

}  // namespace wfregs::analysis
