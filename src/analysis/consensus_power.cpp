#include "wfregs/analysis/consensus_power.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "wfregs/analysis/lint.hpp"
#include "wfregs/typesys/compiled_type.hpp"

namespace wfregs::analysis {

namespace {

// ---- shared small helpers ---------------------------------------------------

std::size_t coo_index(const TypeSpec& t, StateId q, PortId a, InvId i1,
                      PortId b, InvId i2) {
  const std::size_t P = static_cast<std::size_t>(t.ports());
  const std::size_t I = static_cast<std::size_t>(t.num_invocations());
  return (((static_cast<std::size_t>(q) * P + static_cast<std::size_t>(a)) *
               I +
           static_cast<std::size_t>(i1)) *
              P +
          static_cast<std::size_t>(b)) *
             I +
         static_cast<std::size_t>(i2);
}

std::size_t coo_size(const TypeSpec& t) {
  const std::size_t P = static_cast<std::size_t>(t.ports());
  const std::size_t I = static_cast<std::size_t>(t.num_invocations());
  return static_cast<std::size_t>(t.num_states()) * P * I * P * I;
}

// ---- classifier side (CompiledType + the Section 5 deciders) ---------------

/// The Herlihy critical-state table.  Seeds kCommute from the precomputed
/// pairwise commutation matrix and inspects delta only for the residue.
std::optional<CommuteOverwriteCert> build_commute_overwrite(
    const TypeSpec& t, const CompiledType& c) {
  if (!c.is_deterministic()) return std::nullopt;
  CommuteOverwriteCert cert;
  cert.dispositions.assign(coo_size(t), kPairUnused);
  for (PortId a = 0; a < c.ports(); ++a) {
    for (PortId b = a + 1; b < c.ports(); ++b) {
      for (InvId i1 = 0; i1 < c.num_invocations(); ++i1) {
        for (InvId i2 = 0; i2 < c.num_invocations(); ++i2) {
          const bool everywhere = c.commutes_everywhere(a, i1, b, i2);
          for (StateId q = 0; q < c.num_states(); ++q) {
            std::uint8_t d;
            if (everywhere) {
              d = static_cast<std::uint8_t>(PairDisposition::kCommute);
            } else {
              const Transition t1 = c.delta_unchecked(q, a, i1)[0];
              const Transition t2 = c.delta_unchecked(q, b, i2)[0];
              const Transition t12 = c.delta_unchecked(t1.next, b, i2)[0];
              const Transition t21 = c.delta_unchecked(t2.next, a, i1)[0];
              if (t12.next == t21.next && t1.resp == t21.resp &&
                  t2.resp == t12.resp) {
                d = static_cast<std::uint8_t>(PairDisposition::kCommute);
              } else if (t12 == t2) {
                d = static_cast<std::uint8_t>(
                    PairDisposition::kSecondOverwritesFirst);
              } else if (t21 == t1) {
                d = static_cast<std::uint8_t>(
                    PairDisposition::kFirstOverwritesSecond);
              } else {
                return std::nullopt;  // the pair interferes at q
              }
            }
            cert.dispositions[coo_index(t, q, a, i1, b, i2)] = d;
          }
        }
      }
    }
  }
  return cert;
}

/// Section 5.1 as a one-step invariant: responses constant along every edge.
std::optional<TrivialObliviousCert> build_trivial_oblivious(
    const CompiledType& c) {
  if (!c.is_deterministic() || !c.is_oblivious()) return std::nullopt;
  const int Q = c.num_states();
  const int I = c.num_invocations();
  TrivialObliviousCert cert;
  cert.resp.resize(static_cast<std::size_t>(Q) * static_cast<std::size_t>(I));
  for (StateId q = 0; q < Q; ++q) {
    for (InvId i = 0; i < I; ++i) {
      cert.resp[static_cast<std::size_t>(q) * I + i] =
          c.delta_unchecked(q, 0, i)[0].resp;
    }
  }
  for (StateId q = 0; q < Q; ++q) {
    for (InvId j = 0; j < I; ++j) {
      const StateId next = c.delta_unchecked(q, 0, j)[0].next;
      for (InvId i = 0; i < I; ++i) {
        if (cert.resp[static_cast<std::size_t>(next) * I + i] !=
            cert.resp[static_cast<std::size_t>(q) * I + i]) {
          return std::nullopt;
        }
      }
    }
  }
  return cert;
}

/// Section 5.2 via the Mealy partitions: trivial iff no non-trivial pair
/// exists, and the per-port trace classes are then the certificate.
std::optional<TrivialGeneralCert> build_trivial_general(const TypeSpec& t) {
  if (!t.is_deterministic() || t.ports() < 2) return std::nullopt;
  if (find_nontrivial_pair(t)) return std::nullopt;
  TrivialGeneralCert cert;
  const std::size_t Q = static_cast<std::size_t>(t.num_states());
  cert.classes.resize(static_cast<std::size_t>(t.ports()) * Q);
  for (PortId j = 0; j < t.ports(); ++j) {
    const std::vector<int> classes = port_trace_classes(t, j);
    std::copy(classes.begin(), classes.end(),
              cert.classes.begin() + static_cast<std::ptrdiff_t>(j * Q));
  }
  return cert;
}

/// Cross-port race: both sides' responses distinguish first from second.
std::optional<RaceCert> find_race_cert(const CompiledType& c) {
  if (!c.is_deterministic() || c.ports() < 2) return std::nullopt;
  for (StateId q = 0; q < c.num_states(); ++q) {
    for (PortId a = 0; a < c.ports(); ++a) {
      for (PortId b = a + 1; b < c.ports(); ++b) {
        for (InvId ia = 0; ia < c.num_invocations(); ++ia) {
          for (InvId ib = 0; ib < c.num_invocations(); ++ib) {
            const Transition ta = c.delta_unchecked(q, a, ia)[0];
            const Transition tb = c.delta_unchecked(q, b, ib)[0];
            const RespId second_a = c.delta_unchecked(tb.next, a, ia)[0].resp;
            const RespId second_b = c.delta_unchecked(ta.next, b, ib)[0].resp;
            if (ta.resp == second_a || tb.resp == second_b) continue;
            RaceCert cert;
            cert.q = q;
            cert.port_a = a;
            cert.port_b = b;
            cert.inv_a = ia;
            cert.inv_b = ib;
            cert.first_a = ta.resp;
            cert.second_a = second_a;
            cert.first_b = tb.resp;
            cert.second_b = second_b;
            // The derived Section 5.2 pair: [i_a] on port a distinguishes
            // q from delta(q, b, i_b).next.
            cert.pair.q = q;
            cert.pair.reader_port = a;
            cert.pair.writer_port = b;
            cert.pair.write_inv = ib;
            cert.pair.read_seq = {ia};
            cert.pair.unwritten_resp = ta.resp;
            cert.pair.written_resp = second_a;
            return cert;
          }
        }
      }
    }
  }
  return std::nullopt;
}

/// Collects the first-value constraints of the depth-d adopt gadget for a
/// fixed (q0, inv0, inv1): every injective port sequence over ports
/// 0..depth-1, every value assignment.  Returns the decide table (-1 =
/// unreachable) or nullopt on a conflict.
std::optional<std::vector<int>> adopt_constraints(const CompiledType& c,
                                                  StateId q0, InvId inv0,
                                                  InvId inv1, int depth) {
  const int R = c.num_responses();
  std::vector<int> decide(2 * static_cast<std::size_t>(R), -1);
  const InvId inv[2] = {inv0, inv1};
  // DFS over (state, used-port mask, first value) with a visited memo; each
  // node's outgoing constraints are emitted exactly once.
  std::set<std::tuple<StateId, unsigned, int>> seen;
  struct Frame {
    StateId state;
    unsigned mask;
    int first;
  };
  std::vector<Frame> stack;
  for (PortId p = 0; p < depth; ++p) {
    for (int v = 0; v < 2; ++v) {
      const Transition tr = c.delta_unchecked(q0, p, inv[v])[0];
      int& slot = decide[static_cast<std::size_t>(v) * R + tr.resp];
      if (slot == -1) slot = v;
      if (slot != v) return std::nullopt;
      stack.push_back({tr.next, 1u << p, v});
    }
  }
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (!seen.insert({f.state, f.mask, f.first}).second) continue;
    for (PortId p = 0; p < depth; ++p) {
      if (f.mask & (1u << p)) continue;
      for (int v = 0; v < 2; ++v) {
        const Transition tr = c.delta_unchecked(f.state, p, inv[v])[0];
        int& slot = decide[static_cast<std::size_t>(v) * R + tr.resp];
        if (slot == -1) slot = f.first;
        if (slot != f.first) return std::nullopt;
        stack.push_back({tr.next, f.mask | (1u << p), f.first});
      }
    }
  }
  return decide;
}

std::optional<AdoptCert> find_adopt_cert(const CompiledType& c) {
  if (!c.is_deterministic() || c.ports() < 2) return std::nullopt;
  const int max_depth = std::min(c.ports(), 8);  // mask width guard
  for (int depth = max_depth; depth >= 2; --depth) {
    for (StateId q = 0; q < c.num_states(); ++q) {
      for (InvId i0 = 0; i0 < c.num_invocations(); ++i0) {
        for (InvId i1 = 0; i1 < c.num_invocations(); ++i1) {
          if (auto decide = adopt_constraints(c, q, i0, i1, depth)) {
            AdoptCert cert;
            cert.q = q;
            cert.depth = depth;
            cert.inv[0] = i0;
            cert.inv[1] = i1;
            cert.decide = std::move(*decide);
            return cert;
          }
        }
      }
    }
  }
  return std::nullopt;
}

AdoptCert solo_cert(const TypeSpec& t) {
  // Depth 1: invoke anything, decide your own input -- consistent for any
  // total type (including nondeterministic ones).
  AdoptCert cert;
  cert.q = 0;
  cert.depth = 1;
  cert.inv[0] = 0;
  cert.inv[1] = 0;
  cert.decide.resize(2 * static_cast<std::size_t>(t.num_responses()));
  for (int v = 0; v < 2; ++v) {
    for (RespId r = 0; r < t.num_responses(); ++r) {
      cert.decide[static_cast<std::size_t>(v) * t.num_responses() + r] = v;
    }
  }
  return cert;
}

// ---- independent checker helpers (raw delta only) --------------------------

/// The checker's own determinism probe: exactly one transition in the cell.
std::optional<Transition> det_cell(const TypeSpec& t, StateId q, PortId p,
                                   InvId i) {
  const auto cell = t.delta(q, p, i);
  if (cell.size() != 1) return std::nullopt;
  return cell[0];
}

CertCheckResult fail(std::string why) { return {false, std::move(why)}; }

CertCheckResult check_commute_overwrite(const TypeSpec& t,
                                        const PowerClaim& claim,
                                        const CommuteOverwriteCert& cert) {
  if (claim.bound != 1) return fail("commute-or-overwrite proves bound 1");
  if (cert.dispositions.size() != coo_size(t)) {
    return fail("disposition table has the wrong size");
  }
  for (StateId q = 0; q < t.num_states(); ++q) {
    for (PortId a = 0; a < t.ports(); ++a) {
      for (PortId b = 0; b < t.ports(); ++b) {
        for (InvId i1 = 0; i1 < t.num_invocations(); ++i1) {
          for (InvId i2 = 0; i2 < t.num_invocations(); ++i2) {
            const std::uint8_t d =
                cert.dispositions[coo_index(t, q, a, i1, b, i2)];
            if (a >= b) {
              if (d != kPairUnused) {
                return fail("a >= b slot not marked unused");
              }
              continue;
            }
            const auto t1 = det_cell(t, q, a, i1);
            const auto t2 = det_cell(t, q, b, i2);
            if (!t1 || !t2) return fail("nondeterministic cell in table");
            const auto t12 = det_cell(t, t1->next, b, i2);
            const auto t21 = det_cell(t, t2->next, a, i1);
            if (!t12 || !t21) return fail("nondeterministic cell in table");
            std::ostringstream at;
            at << "state " << q << " pair (" << a << "," << i1 << ")/(" << b
               << "," << i2 << ")";
            switch (d) {
              case static_cast<std::uint8_t>(PairDisposition::kCommute):
                if (t12->next != t21->next || t1->resp != t21->resp ||
                    t2->resp != t12->resp) {
                  return fail("claimed commute does not hold at " + at.str());
                }
                break;
              case static_cast<std::uint8_t>(
                  PairDisposition::kFirstOverwritesSecond):
                if (!(*t21 == *t1)) {
                  return fail("claimed first-overwrites-second does not "
                              "hold at " +
                              at.str());
                }
                break;
              case static_cast<std::uint8_t>(
                  PairDisposition::kSecondOverwritesFirst):
                if (!(*t12 == *t2)) {
                  return fail("claimed second-overwrites-first does not "
                              "hold at " +
                              at.str());
                }
                break;
              default:
                return fail("invalid disposition at " + at.str());
            }
          }
        }
      }
    }
  }
  return {true, {}};
}

CertCheckResult check_trivial_oblivious(const TypeSpec& t,
                                        const PowerClaim& claim,
                                        const TrivialObliviousCert& cert) {
  if (claim.bound != 1) return fail("triviality proves bound 1");
  const int Q = t.num_states();
  const int I = t.num_invocations();
  if (cert.resp.size() !=
      static_cast<std::size_t>(Q) * static_cast<std::size_t>(I)) {
    return fail("response table has the wrong size");
  }
  for (StateId q = 0; q < Q; ++q) {
    for (InvId i = 0; i < I; ++i) {
      const auto base = det_cell(t, q, 0, i);
      if (!base) return fail("nondeterministic cell");
      // Obliviousness, checked directly against every port.
      for (PortId p = 1; p < t.ports(); ++p) {
        const auto other = t.delta(q, p, i);
        if (other.size() != 1 || !(other[0] == *base)) {
          return fail("type is not oblivious");
        }
      }
      if (cert.resp[static_cast<std::size_t>(q) * I + i] != base->resp) {
        return fail("response table disagrees with delta");
      }
    }
  }
  for (StateId q = 0; q < Q; ++q) {
    for (InvId j = 0; j < I; ++j) {
      const StateId next = det_cell(t, q, 0, j)->next;
      for (InvId i = 0; i < I; ++i) {
        if (cert.resp[static_cast<std::size_t>(next) * I + i] !=
            cert.resp[static_cast<std::size_t>(q) * I + i]) {
          std::ostringstream out;
          out << "response to " << i << " changes along edge " << q << " -> "
              << next;
          return fail(out.str());
        }
      }
    }
  }
  return {true, {}};
}

CertCheckResult check_trivial_general(const TypeSpec& t,
                                      const PowerClaim& claim,
                                      const TrivialGeneralCert& cert) {
  if (claim.bound != 1) return fail("triviality proves bound 1");
  if (t.ports() < 2) return fail("general triviality needs >= 2 ports");
  const std::size_t Q = static_cast<std::size_t>(t.num_states());
  if (cert.classes.size() != static_cast<std::size_t>(t.ports()) * Q) {
    return fail("class table has the wrong size");
  }
  for (PortId j = 0; j < t.ports(); ++j) {
    const int* cls = cert.classes.data() + static_cast<std::ptrdiff_t>(j * Q);
    // (1) Same class => same responses and same successor classes on port j
    // (a bisimulation, hence equal port-j traces by coinduction).
    for (StateId q1 = 0; q1 < t.num_states(); ++q1) {
      for (StateId q2 = q1 + 1; q2 < t.num_states(); ++q2) {
        if (cls[q1] != cls[q2]) continue;
        for (InvId i = 0; i < t.num_invocations(); ++i) {
          const auto a = det_cell(t, q1, j, i);
          const auto b = det_cell(t, q2, j, i);
          if (!a || !b) return fail("nondeterministic cell");
          if (a->resp != b->resp || cls[a->next] != cls[b->next]) {
            std::ostringstream out;
            out << "port " << j << ": states " << q1 << " and " << q2
                << " share a class but diverge on invocation " << i;
            return fail(out.str());
          }
        }
      }
    }
    // (2) No foreign-port step leaves the class: port-j behaviour is
    // independent of every other port's activity.
    for (StateId q = 0; q < t.num_states(); ++q) {
      for (PortId w = 0; w < t.ports(); ++w) {
        if (w == j) continue;
        for (InvId i = 0; i < t.num_invocations(); ++i) {
          const auto step = det_cell(t, q, w, i);
          if (!step) return fail("nondeterministic cell");
          if (cls[step->next] != cls[q]) {
            std::ostringstream out;
            out << "invocation " << i << " on port " << w
                << " moves state " << q << " across port-" << j
                << " trace classes";
            return fail(out.str());
          }
        }
      }
    }
  }
  return {true, {}};
}

CertCheckResult check_race(const TypeSpec& t, const PowerClaim& claim,
                           const RaceCert& cert) {
  if (claim.bound != 2) return fail("a race gadget proves bound 2");
  if (cert.q < 0 || cert.q >= t.num_states() || cert.port_a < 0 ||
      cert.port_a >= t.ports() || cert.port_b < 0 ||
      cert.port_b >= t.ports() || cert.inv_a < 0 ||
      cert.inv_a >= t.num_invocations() || cert.inv_b < 0 ||
      cert.inv_b >= t.num_invocations()) {
    return fail("race witness out of range");
  }
  if (cert.port_a == cert.port_b) {
    return fail("race ports must be distinct");
  }
  const auto ta = det_cell(t, cert.q, cert.port_a, cert.inv_a);
  const auto tb = det_cell(t, cert.q, cert.port_b, cert.inv_b);
  if (!ta || !tb) return fail("nondeterministic cell");
  const auto a2 = det_cell(t, tb->next, cert.port_a, cert.inv_a);
  const auto b2 = det_cell(t, ta->next, cert.port_b, cert.inv_b);
  if (!a2 || !b2) return fail("nondeterministic cell");
  if (ta->resp != cert.first_a || a2->resp != cert.second_a ||
      tb->resp != cert.first_b || b2->resp != cert.second_b) {
    return fail("claimed responses disagree with delta");
  }
  if (cert.first_a == cert.second_a) {
    return fail("port-a response does not distinguish first from second");
  }
  if (cert.first_b == cert.second_b) {
    return fail("port-b response does not distinguish first from second");
  }
  // The embedded Section 5.2 pair must be the one the race derives.
  const NonTrivialPair& p = cert.pair;
  if (p.q != cert.q || p.reader_port != cert.port_a ||
      p.writer_port != cert.port_b || p.write_inv != cert.inv_b ||
      p.read_seq != std::vector<InvId>{cert.inv_a} ||
      p.unwritten_resp != cert.first_a || p.written_resp != cert.second_a) {
    return fail("embedded non-trivial pair does not match the race");
  }
  // And it must be a genuine non-trivial pair: replay both histories.
  StateId h1 = p.q;
  StateId h2 = det_cell(t, p.q, p.writer_port, p.write_inv)->next;
  for (std::size_t k = 0; k < p.read_seq.size(); ++k) {
    const auto r1 = det_cell(t, h1, p.reader_port, p.read_seq[k]);
    const auto r2 = det_cell(t, h2, p.reader_port, p.read_seq[k]);
    if (!r1 || !r2) return fail("nondeterministic cell");
    const bool last = k + 1 == p.read_seq.size();
    if (last) {
      if (r1->resp != p.unwritten_resp || r2->resp != p.written_resp ||
          r1->resp == r2->resp) {
        return fail("embedded pair is not a non-trivial pair");
      }
    } else if (r1->resp != r2->resp) {
      return fail("embedded pair differs before the last response");
    }
    h1 = r1->next;
    h2 = r2->next;
  }
  return {true, {}};
}

CertCheckResult check_adopt(const TypeSpec& t, const PowerClaim& claim,
                            const AdoptCert& cert) {
  if (claim.bound != cert.depth) {
    return fail("claimed bound disagrees with the gadget depth");
  }
  if (cert.depth < 1 || cert.depth > t.ports() || cert.depth > 31) {
    return fail("gadget depth out of range");
  }
  if (cert.q < 0 || cert.q >= t.num_states()) {
    return fail("start state out of range");
  }
  for (int v = 0; v < 2; ++v) {
    if (cert.inv[v] < 0 || cert.inv[v] >= t.num_invocations()) {
      return fail("invocation out of range");
    }
  }
  const int R = t.num_responses();
  if (cert.decide.size() != 2 * static_cast<std::size_t>(R)) {
    return fail("decide table has the wrong size");
  }
  for (const int d : cert.decide) {
    if (d < -1 || d > 1) return fail("decide entry out of range");
  }
  // Replay every injective port sequence over ports 0..depth-1 and every
  // value assignment, following EVERY delta choice (nondeterminism-safe);
  // each response must decode the first proposed value via the table.
  struct Node {
    StateId state;
    unsigned mask;
    int first;
  };
  std::set<std::tuple<StateId, unsigned, int>> seen;
  std::vector<Node> stack;
  auto step = [&](StateId state, unsigned mask, int first, PortId p,
                  int v) -> std::optional<std::string> {
    for (const Transition& tr : t.delta(state, p, cert.inv[v])) {
      const int d = cert.decide[static_cast<std::size_t>(v) * R + tr.resp];
      if (d != first) {
        std::ostringstream out;
        out << "port " << p << " proposing " << v << " sees response "
            << tr.resp << " and decides "
            << (d == -1 ? std::string("nothing") : std::to_string(d))
            << " but the first value was " << first;
        return out.str();
      }
      stack.push_back({tr.next, mask | (1u << p), first});
    }
    return std::nullopt;
  };
  for (PortId p = 0; p < cert.depth; ++p) {
    for (int v = 0; v < 2; ++v) {
      if (auto err = step(cert.q, 0, v, p, v)) return fail(*err);
    }
  }
  while (!stack.empty()) {
    const Node n = stack.back();
    stack.pop_back();
    if (!seen.insert({n.state, n.mask, n.first}).second) continue;
    for (PortId p = 0; p < cert.depth; ++p) {
      if (n.mask & (1u << p)) continue;
      for (int v = 0; v < 2; ++v) {
        if (auto err = step(n.state, n.mask, n.first, p, v)) {
          return fail(*err);
        }
      }
    }
  }
  return {true, {}};
}

// ---- static_consensus_decider internals ------------------------------------

/// Cycle check over a program's static disassembly; false when the program
/// is not inspectable or its control-flow graph has a reachable cycle.
bool program_loop_free(const ProgramCode& prog) {
  const auto code = prog.static_code();
  if (!code) return false;
  const int n = static_cast<int>(code->size());
  // Iterative DFS with colors: 0 = white, 1 = on stack, 2 = done.
  std::vector<int> color(static_cast<std::size_t>(n), 0);
  std::vector<std::pair<int, int>> stack;  // (pc, next successor index)
  auto succs = [&](int pc) -> std::vector<int> {
    const StaticInstr& ins = (*code)[static_cast<std::size_t>(pc)];
    switch (ins.op) {
      case StaticInstr::Op::kAssign:
      case StaticInstr::Op::kInvoke:
        return pc + 1 < n ? std::vector<int>{pc + 1} : std::vector<int>{};
      case StaticInstr::Op::kJump:
        return {ins.target};
      case StaticInstr::Op::kBranchIf:
        return pc + 1 < n ? std::vector<int>{ins.target, pc + 1}
                          : std::vector<int>{ins.target};
      case StaticInstr::Op::kRet:
      case StaticInstr::Op::kFail:
        return {};
    }
    return {};
  };
  if (n == 0) return true;
  stack.emplace_back(0, 0);
  color[0] = 1;
  while (!stack.empty()) {
    auto& [pc, k] = stack.back();
    const std::vector<int> next = succs(pc);
    if (k >= static_cast<int>(next.size())) {
      color[static_cast<std::size_t>(pc)] = 2;
      stack.pop_back();
      continue;
    }
    const int to = next[static_cast<std::size_t>(k++)];
    if (to < 0 || to >= n) return false;
    if (color[static_cast<std::size_t>(to)] == 1) return false;  // back edge
    if (color[static_cast<std::size_t>(to)] == 0) {
      color[static_cast<std::size_t>(to)] = 1;
      stack.emplace_back(to, 0);
    }
  }
  return true;
}

bool all_programs_loop_free(const Implementation& impl) {
  for (InvId i = 0; i < impl.iface().num_invocations(); ++i) {
    for (PortId p = 0; p < impl.iface().ports(); ++p) {
      if (!impl.has_program(i, p)) continue;
      if (!program_loop_free(*impl.program(i, p))) return false;
    }
  }
  for (const ObjectDecl& decl : impl.objects()) {
    if (decl.impl && !all_programs_loop_free(*decl.impl)) return false;
  }
  return true;
}

/// Walks the object tree composing port maps; collects every base spec and
/// verifies no two interface ports reach the same port of any base object
/// (the critical-state argument assumes process-exclusive ports).
bool collect_base_specs(const Implementation& impl,
                        const std::vector<PortId>& top_to_here,
                        std::vector<std::shared_ptr<const TypeSpec>>* specs) {
  for (const ObjectDecl& decl : impl.objects()) {
    std::vector<PortId> top_to_inner(top_to_here.size(), kNoPort);
    for (std::size_t j = 0; j < top_to_here.size(); ++j) {
      const PortId here = top_to_here[j];
      if (here == kNoPort) continue;
      top_to_inner[j] = decl.port_of_outer[static_cast<std::size_t>(here)];
    }
    if (decl.is_base()) {
      std::set<PortId> used;
      for (const PortId p : top_to_inner) {
        if (p == kNoPort) continue;
        if (!used.insert(p).second) return false;  // shared base port
      }
      specs->push_back(decl.spec);
    } else {
      if (!collect_base_specs(*decl.impl, top_to_inner, specs)) return false;
    }
  }
  return true;
}

}  // namespace

// ---- public API ------------------------------------------------------------

const char* power_rule_name(PowerRule rule) {
  switch (rule) {
    case PowerRule::kSoloLower: return "solo";
    case PowerRule::kRaceLower: return "race";
    case PowerRule::kAdoptLower: return "adopt";
    case PowerRule::kCommuteOverwriteUpper: return "commute-or-overwrite";
    case PowerRule::kTrivialObliviousUpper: return "trivial-oblivious";
    case PowerRule::kTrivialGeneralUpper: return "trivial-general";
    case PowerRule::kRegisterAugmentation: return "register-augmentation";
  }
  return "unknown";
}

std::string ConsensusPowerResult::summary() const {
  std::ostringstream out;
  out << type_name << ": cons in [" << lower << ", "
      << (upper_finite ? std::to_string(upper) : "inf") << "]";
  out << " rules=[";
  for (std::size_t k = 0; k < claims.size(); ++k) {
    out << (k ? "," : "") << power_rule_name(claims[k].rule);
  }
  out << "]";
  if (!note.empty()) out << " (" << note << ")";
  return out.str();
}

ConsensusPowerResult classify_consensus_power(const TypeSpec& t) {
  if (!t.is_total()) {
    throw std::invalid_argument(
        "classify_consensus_power: spec must be total");
  }
  ConsensusPowerResult r;
  r.type_name = t.name();
  r.deterministic = t.is_deterministic();
  r.lower = 1;
  r.claims.push_back({PowerRule::kSoloLower, 1, solo_cert(t)});
  if (!r.deterministic) {
    r.note = "nondeterministic: static rules inapplicable beyond solo";
    return r;
  }
  const CompiledType c = t.compile();

  if (auto coo = build_commute_overwrite(t, c)) {
    r.claims.push_back(
        {PowerRule::kCommuteOverwriteUpper, 1, std::move(*coo)});
    r.upper_finite = true;
    r.upper = 1;
  }
  if (auto triv = build_trivial_oblivious(c)) {
    r.claims.push_back(
        {PowerRule::kTrivialObliviousUpper, 1, std::move(*triv)});
    r.upper_finite = true;
    r.upper = 1;
  }
  if (auto triv = build_trivial_general(t)) {
    r.claims.push_back(
        {PowerRule::kTrivialGeneralUpper, 1, std::move(*triv)});
    r.upper_finite = true;
    r.upper = 1;
  }
  if (auto race = find_race_cert(c)) {
    r.claims.push_back({PowerRule::kRaceLower, 2, std::move(*race)});
    r.lower = std::max(r.lower, 2);
  }
  if (auto adopt = find_adopt_cert(c)) {
    const int depth = adopt->depth;
    r.claims.push_back({PowerRule::kAdoptLower, depth, std::move(*adopt)});
    r.lower = std::max(r.lower, depth);
  }
  if (r.upper_finite && r.lower > r.upper) {
    // Both rule families are sound, so this is unreachable on a correct
    // build; surface it loudly rather than return garbage.
    throw std::logic_error("classify_consensus_power: " + t.name() +
                           ": lower bound exceeds upper bound");
  }
  return r;
}

CertCheckResult check_certificate(const TypeSpec& t, const PowerClaim& claim) {
  switch (claim.rule) {
    case PowerRule::kSoloLower: {
      const auto* cert = std::get_if<AdoptCert>(&claim.cert);
      if (!cert) return fail("solo claim wants an adopt certificate");
      if (cert->depth != 1) return fail("solo claim wants depth 1");
      return check_adopt(t, claim, *cert);
    }
    case PowerRule::kAdoptLower: {
      const auto* cert = std::get_if<AdoptCert>(&claim.cert);
      if (!cert) return fail("adopt claim wants an adopt certificate");
      if (cert->depth < 2) return fail("adopt claim wants depth >= 2");
      return check_adopt(t, claim, *cert);
    }
    case PowerRule::kRaceLower: {
      const auto* cert = std::get_if<RaceCert>(&claim.cert);
      if (!cert) return fail("race claim wants a race certificate");
      return check_race(t, claim, *cert);
    }
    case PowerRule::kCommuteOverwriteUpper: {
      const auto* cert = std::get_if<CommuteOverwriteCert>(&claim.cert);
      if (!cert) return fail("commute-or-overwrite claim wants a table");
      return check_commute_overwrite(t, claim, *cert);
    }
    case PowerRule::kTrivialObliviousUpper: {
      const auto* cert = std::get_if<TrivialObliviousCert>(&claim.cert);
      if (!cert) return fail("oblivious-trivial claim wants a table");
      return check_trivial_oblivious(t, claim, *cert);
    }
    case PowerRule::kTrivialGeneralUpper: {
      const auto* cert = std::get_if<TrivialGeneralCert>(&claim.cert);
      if (!cert) return fail("general-trivial claim wants partitions");
      return check_trivial_general(t, claim, *cert);
    }
    case PowerRule::kRegisterAugmentation:
      return fail("family claims are checked by check_family_result");
  }
  return fail("unknown rule");
}

bool is_register_shaped(const TypeSpec& t) {
  for (PortId p = 0; p < t.ports(); ++p) {
    for (InvId i = 0; i < t.num_invocations(); ++i) {
      bool pure_read = true;
      bool pure_write = true;
      std::optional<Transition> first;
      for (StateId q = 0; q < t.num_states(); ++q) {
        const auto cell = t.delta(q, p, i);
        if (cell.size() != 1) return false;
        if (cell[0].next != q) pure_read = false;
        if (!first) first = cell[0];
        if (!(cell[0] == *first)) pure_write = false;
      }
      if (!pure_read && !pure_write) return false;
    }
  }
  return true;
}

FamilyPowerResult classify_family(std::span<const TypeSpec> members) {
  FamilyPowerResult out;
  FamilyCert cert;
  bool all_upper = !members.empty();
  for (std::size_t k = 0; k < members.size(); ++k) {
    out.members.push_back(classify_consensus_power(members[k]));
    const ConsensusPowerResult& m = out.members.back();
    if (m.lower > out.lower) {
      out.lower = m.lower;
      cert.lower_source = static_cast<int>(k);
    }
    if (m.upper_finite && m.upper == 1) {
      cert.absorbed.push_back(static_cast<int>(k));
    } else {
      all_upper = false;
    }
  }
  if (all_upper) {
    out.upper_finite = true;
    out.upper = 1;
    out.augmentation =
        PowerClaim{PowerRule::kRegisterAugmentation, 1, std::move(cert)};
    out.note =
        "every member certified cons <= 1: the family is register-shaped "
        "in the critical-state argument";
  } else {
    out.note = "family lower bound inherited from member " +
               std::to_string(cert.lower_source);
  }
  return out;
}

CertCheckResult check_family_result(std::span<const TypeSpec> members,
                                    const FamilyPowerResult& result) {
  if (result.members.size() != members.size()) {
    return fail("member count mismatch");
  }
  int max_lower = 1;
  bool all_upper = !members.empty();
  for (std::size_t k = 0; k < members.size(); ++k) {
    const ConsensusPowerResult& m = result.members[k];
    int claimed_lower = 1;
    bool claimed_upper = false;
    for (const PowerClaim& claim : m.claims) {
      const CertCheckResult c = check_certificate(members[k], claim);
      if (!c.ok) {
        return fail("member " + std::to_string(k) + " (" +
                    members[k].name() + "): " + c.detail);
      }
      switch (claim.rule) {
        case PowerRule::kSoloLower:
        case PowerRule::kRaceLower:
        case PowerRule::kAdoptLower:
          claimed_lower = std::max(claimed_lower, claim.bound);
          break;
        default:
          claimed_upper = true;
      }
    }
    if (m.lower != claimed_lower) {
      return fail("member " + std::to_string(k) +
                  ": lower bound not backed by its claims");
    }
    if (m.upper_finite != claimed_upper ||
        (m.upper_finite && m.upper != 1)) {
      return fail("member " + std::to_string(k) +
                  ": upper bound not backed by its claims");
    }
    max_lower = std::max(max_lower, m.lower);
    all_upper = all_upper && m.upper_finite;
  }
  if (result.lower != max_lower) {
    return fail("family lower bound is not the member max");
  }
  if (result.upper_finite != all_upper ||
      (result.upper_finite && result.upper != 1)) {
    return fail("family upper bound disagrees with member certification");
  }
  if (result.upper_finite != result.augmentation.has_value()) {
    return fail("augmentation claim presence disagrees with the bound");
  }
  if (result.augmentation) {
    const auto* cert = std::get_if<FamilyCert>(&result.augmentation->cert);
    if (!cert) return fail("augmentation claim wants a family certificate");
    if (result.augmentation->rule != PowerRule::kRegisterAugmentation ||
        result.augmentation->bound != 1) {
      return fail("augmentation claim must state bound 1");
    }
    if (cert->absorbed.size() != members.size()) {
      return fail("augmentation must absorb every member");
    }
    for (std::size_t k = 0; k < cert->absorbed.size(); ++k) {
      if (cert->absorbed[k] != static_cast<int>(k)) {
        return fail("augmentation member indices malformed");
      }
    }
  }
  return {true, {}};
}

std::function<std::optional<StaticConsensusDecision>(const Implementation&)>
static_consensus_decider() {
  return [](const Implementation& impl)
             -> std::optional<StaticConsensusDecision> {
    const int n = impl.iface().ports();
    if (n < 2) return std::nullopt;

    std::vector<PortId> identity;
    for (PortId j = 0; j < n; ++j) identity.push_back(j);
    std::vector<std::shared_ptr<const TypeSpec>> specs;
    if (!collect_base_specs(impl, identity, &specs)) return std::nullopt;

    // Classify each distinct base type; every one must carry a verified
    // cons <= 1 certificate.
    std::vector<const TypeSpec*> distinct;
    for (const auto& spec : specs) {
      const bool dup =
          std::any_of(distinct.begin(), distinct.end(),
                      [&](const TypeSpec* seen) { return *seen == *spec; });
      if (!dup) distinct.push_back(spec.get());
    }
    std::ostringstream why;
    why << "statically refuted: every base type is certified cons <= 1 [";
    bool first_name = true;
    for (const TypeSpec* spec : distinct) {
      ConsensusPowerResult r;
      try {
        r = classify_consensus_power(*spec);
      } catch (const std::exception&) {
        return std::nullopt;
      }
      if (!r.deterministic || !r.upper_finite || r.upper != 1) {
        return std::nullopt;
      }
      const char* rule = nullptr;
      for (const PowerClaim& claim : r.claims) {
        if (claim.rule == PowerRule::kSoloLower ||
            claim.rule == PowerRule::kRaceLower ||
            claim.rule == PowerRule::kAdoptLower) {
          continue;
        }
        // Trust no unchecked certificate, even our own.
        if (!check_certificate(*spec, claim).ok) return std::nullopt;
        if (!rule) rule = power_rule_name(claim.rule);
      }
      if (!rule) return std::nullopt;
      why << (first_name ? "" : ", ") << spec->name() << ": " << rule;
      first_name = false;
    }
    why << "]";

    // Wait-freedom: lint must be clean with finite static access bounds,
    // and every program loop-free, so all executions terminate and the
    // verdict may claim wait_free and complete.
    LintReport rep;
    try {
      rep = lint(impl);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    if (!rep.ok()) return std::nullopt;
    for (const StaticObjectBound& b : rep.bounds) {
      if (!b.accesses.finite) return std::nullopt;
    }
    if (!all_programs_loop_free(impl)) return std::nullopt;

    StaticConsensusDecision d;
    d.solves = false;
    d.wait_free = true;
    why << "; no wait-free " << n
        << "-process consensus protocol exists over such objects and "
           "registers (critical-state argument)";
    d.detail = why.str();
    return d;
  };
}

}  // namespace wfregs::analysis
