#include "wfregs/analysis/independence.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>
#include <utility>
#include <vector>

#include "wfregs/analysis/program_facts.hpp"

namespace wfregs::analysis {

namespace {

/// Which (port, invocation) accesses of one object some program can issue.
struct Issuable {
  int ports = 0;
  int invs = 0;
  std::vector<char> issued;  ///< [port * invs + inv]

  void init(int p, int i) {
    ports = p;
    invs = i;
    issued.assign(static_cast<std::size_t>(p) * static_cast<std::size_t>(i),
                  0);
  }
  bool get(PortId a, InvId i) const {
    return issued[static_cast<std::size_t>(a) * static_cast<std::size_t>(invs) +
                  static_cast<std::size_t>(i)] != 0;
  }
  void set(PortId a, InvId i) {
    issued[static_cast<std::size_t>(a) * static_cast<std::size_t>(invs) +
           static_cast<std::size_t>(i)] = 1;
  }
  void set_all(PortId a) {
    for (InvId i = 0; i < invs; ++i) set(a, i);
  }
  std::size_t count() const {
    return static_cast<std::size_t>(
        std::count(issued.begin(), issued.end(), 1));
  }
};

int object_invs(const System& sys, ObjectId g) {
  return sys.is_base(g) ? sys.base(g).spec->num_invocations()
                        : sys.virt(g).impl->iface().num_invocations();
}

int object_ports(const System& sys, ObjectId g) {
  return sys.is_base(g) ? sys.base(g).spec->ports()
                        : sys.virt(g).impl->iface().ports();
}

/// Shared driver state for the top-down issuable propagation.
class IssuableAnalysis {
 public:
  explicit IssuableAnalysis(const System& sys) : sys_(sys) {
    issuable_.resize(static_cast<std::size_t>(sys.num_objects()));
    for (ObjectId g = 0; g < sys.num_objects(); ++g) {
      issuable_[static_cast<std::size_t>(g)].init(object_ports(sys, g),
                                                  object_invs(sys, g));
    }
    seed_toplevel();
    propagate_virtuals();
  }

  const Issuable& at(ObjectId g) const {
    return issuable_[static_cast<std::size_t>(g)];
  }

 private:
  /// Facts are cached per (program, number of persistent slots): the same
  /// shared ProgramRef analyzed with a different persistent seed would be a
  /// different abstract execution.
  const ProgramFacts& facts_for(const ProgramCode& prog, int persistent) {
    const auto key = std::make_pair(&prog, persistent);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      return it->second;
    }
    // Responses and persistent registers are modelled as top: the issuable
    // sets must over-approximate every concrete run.
    std::vector<ValueSet> seed(static_cast<std::size_t>(persistent),
                               ValueSet::top());
    const ResponseOracle oracle = [](int, const ValueSet&) {
      return ValueSet::top();
    };
    return cache_.emplace(key, analyze_program(prog, seed, oracle))
        .first->second;
  }

  /// Marks everything `prog` can issue, given the environment handle for
  /// each of its slots.  An uninspectable program issues every invocation
  /// on every wired slot.
  void mark_program(const ProgramCode& prog, int persistent,
                    const std::vector<Handle>& env) {
    const ProgramFacts& facts = facts_for(prog, persistent);
    if (!facts.inspectable) {
      for (const Handle& h : env) {
        if (h.gid >= 0 && h.port >= 0) {
          issuable_[static_cast<std::size_t>(h.gid)].set_all(h.port);
        }
      }
      return;
    }
    for (std::size_t pc = 0; pc < facts.code.size(); ++pc) {
      if (facts.code[pc].op != StaticInstr::Op::kInvoke) continue;
      if (!facts.reachable[pc]) continue;
      const int slot = facts.code[pc].slot;
      if (slot < 0 || slot >= static_cast<int>(env.size())) continue;
      const Handle& h = env[static_cast<std::size_t>(slot)];
      if (h.gid < 0 || h.port < 0) continue;
      Issuable& target = issuable_[static_cast<std::size_t>(h.gid)];
      for (const Val v :
           facts.invoke_invs[pc].enumerate_within(0, target.invs - 1)) {
        target.set(h.port, static_cast<InvId>(v));
      }
    }
  }

  void seed_toplevel() {
    for (ProcId p = 0; p < sys_.num_processes(); ++p) {
      mark_program(*sys_.toplevel_program(p), 0, sys_.toplevel_env(p));
    }
  }

  /// Walks virtual objects outermost-first (sorted by declaration-path
  /// depth), running only the implementation programs whose (invocation,
  /// port) the callers can actually trigger.
  void propagate_virtuals() {
    std::vector<ObjectId> virtuals;
    for (ObjectId g = 0; g < sys_.num_objects(); ++g) {
      if (!sys_.is_base(g)) virtuals.push_back(g);
    }
    std::ranges::sort(virtuals, [this](ObjectId a, ObjectId b) {
      const auto da = sys_.placement(a).path.size();
      const auto db = sys_.placement(b).path.size();
      return da != db ? da < db : a < b;
    });
    for (const ObjectId v : virtuals) {
      const System::VirtualObject& vo = sys_.virt(v);
      const Implementation& impl = *vo.impl;
      const Issuable& here = at(v);
      for (PortId j = 0; j < here.ports; ++j) {
        // Environment handles of a program running on port j: inner slot k
        // maps to global object vo.inner[k] on port port_of_outer[j].
        std::vector<Handle> env;
        env.reserve(impl.objects().size());
        for (std::size_t k = 0; k < impl.objects().size(); ++k) {
          const ObjectDecl& decl = impl.objects()[k];
          env.push_back(Handle{vo.inner[k],
                               decl.port_of_outer[static_cast<std::size_t>(j)]});
        }
        for (InvId i = 0; i < here.invs; ++i) {
          if (!here.get(j, i)) continue;
          if (!impl.has_program(i, j)) continue;
          mark_program(*impl.program(i, j), impl.persistent_slots(), env);
        }
      }
    }
  }

  const System& sys_;
  std::vector<Issuable> issuable_;
  std::map<std::pair<const ProgramCode*, int>, ProgramFacts> cache_;
};

/// The closure of the initial state under the issuable accesses.
std::vector<char> reachable_states(const TypeSpec& t, StateId initial,
                                   const Issuable& iss) {
  std::vector<char> seen(static_cast<std::size_t>(t.num_states()), 0);
  std::vector<StateId> frontier{initial};
  seen[static_cast<std::size_t>(initial)] = 1;
  while (!frontier.empty()) {
    const StateId q = frontier.back();
    frontier.pop_back();
    for (PortId a = 0; a < iss.ports; ++a) {
      for (InvId i = 0; i < iss.invs; ++i) {
        if (!iss.get(a, i)) continue;
        for (const Transition& tr : t.delta(q, a, i)) {
          if (!seen[static_cast<std::size_t>(tr.next)]) {
            seen[static_cast<std::size_t>(tr.next)] = 1;
            frontier.push_back(tr.next);
          }
        }
      }
    }
  }
  return seen;
}

/// Per-object independent-pair count of a table (unordered access pairs).
std::size_t pairs_on(const IndependenceTable& table, ObjectId g, int ports,
                     int invs) {
  std::size_t n = 0;
  for (PortId a = 0; a < ports; ++a) {
    for (InvId i1 = 0; i1 < invs; ++i1) {
      for (PortId b = a; b < ports; ++b) {
        for (InvId i2 = (b == a ? i1 : 0); i2 < invs; ++i2) {
          if (table.independent(g, a, i1, b, i2)) ++n;
        }
      }
    }
  }
  return n;
}

}  // namespace

IndependenceTable refined_independence(const System& sys) {
  const IssuableAnalysis analysis(sys);
  IndependenceTable table = IndependenceTable::all_dependent(sys);
  for (ObjectId g = 0; g < sys.num_objects(); ++g) {
    if (!sys.is_base(g)) continue;
    const TypeSpec& t = *sys.base(g).spec;
    const Issuable& iss = analysis.at(g);
    const std::vector<char> reach =
        reachable_states(t, sys.base(g).initial, iss);
    for (PortId a = 0; a < t.ports(); ++a) {
      for (InvId i1 = 0; i1 < t.num_invocations(); ++i1) {
        for (PortId b = 0; b < t.ports(); ++b) {
          for (InvId i2 = 0; i2 < t.num_invocations(); ++i2) {
            // A pair involving an access no program can issue never shows
            // up as two enabled steps: vacuously independent.
            bool ok = true;
            if (iss.get(a, i1) && iss.get(b, i2)) {
              for (StateId q = 0; q < t.num_states() && ok; ++q) {
                if (!reach[static_cast<std::size_t>(q)]) continue;
                ok = accesses_commute_at(t, q, a, i1, b, i2);
              }
            }
            table.set_independent(g, a, i1, b, i2, ok);
          }
        }
      }
    }
  }
  return table;
}

std::string describe_independence(const System& sys) {
  const IssuableAnalysis analysis(sys);
  const IndependenceTable baseline = IndependenceTable::build(sys);
  const IndependenceTable refined = refined_independence(sys);
  std::ostringstream out;
  for (ObjectId g = 0; g < sys.num_objects(); ++g) {
    if (!sys.is_base(g)) continue;
    const TypeSpec& t = *sys.base(g).spec;
    const Issuable& iss = analysis.at(g);
    const std::vector<char> reach =
        reachable_states(t, sys.base(g).initial, iss);
    const auto reach_count = std::count(reach.begin(), reach.end(), 1);
    out << "object " << g << " (" << t.name() << "): issuable "
        << iss.count() << "/" << iss.issued.size() << " accesses, reachable "
        << reach_count << "/" << t.num_states() << " states, independent "
        << pairs_on(baseline, g, t.ports(), t.num_invocations())
        << " -> "
        << pairs_on(refined, g, t.ports(), t.num_invocations()) << " pairs\n";
  }
  out << "total independent pairs: " << baseline.independent_pairs() << " -> "
      << refined.independent_pairs() << "\n";
  return out.str();
}

}  // namespace wfregs::analysis
