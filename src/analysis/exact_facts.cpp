#include "wfregs/analysis/exact_facts.hpp"

#include <deque>
#include <map>
#include <stdexcept>
#include <utility>

#include "wfregs/analysis/graph.hpp"

namespace wfregs::analysis {

namespace {

ExactProgramFacts unavailable(std::string why) {
  ExactProgramFacts f;
  f.detail = std::move(why);
  return f;
}

}  // namespace

ExactProgramFacts enumerate_program(
    const ProgramCode& prog, const std::vector<ValueSet>& persistent_in,
    int num_slots, const ResponseOracle& oracle,
    const ExactLimits& limits) {
  auto code = prog.static_code();
  if (!code) return unavailable("program is not statically inspectable");
  const int n = static_cast<int>(code->size());
  const int num_regs = prog.num_regs();

  // Enumerate the persistent seed combinations.
  std::vector<std::vector<Val>> seed_values;
  std::size_t combos = 1;
  for (const ValueSet& vs : persistent_in) {
    auto vals = vs.enumerate(limits.max_values);
    if (!vals) return unavailable("persistent input not enumerable");
    if (vals->empty()) vals->push_back(0);  // bottom: port never ran yet
    combos *= vals->size();
    if (combos > limits.max_inputs) {
      return unavailable("too many persistent input combinations");
    }
    seed_values.push_back(std::move(*vals));
  }

  ExactProgramFacts facts;
  facts.code = std::move(*code);
  facts.persistent_out.assign(persistent_in.size(), ValueSet::bottom());
  facts.slot_invs.assign(
      static_cast<std::size_t>(num_slots < 0 ? 0 : num_slots),
      ValueSet::bottom());

  std::map<std::pair<int, std::vector<Val>>, int> ids;
  // Per state: its register file (std::map node addresses are stable).
  std::vector<const std::vector<Val>*> state_regs;
  std::deque<int> frontier;
  const auto intern = [&](int pc, std::vector<Val> regs)
      -> std::optional<int> {
    if (pc < 0 || pc >= n) return std::nullopt;  // corrupt target: path dies
    auto [it, inserted] = ids.try_emplace({pc, std::move(regs)}, -1);
    if (inserted) {
      if (ids.size() > limits.max_states) return std::nullopt;
      it->second = static_cast<int>(facts.state_pc.size());
      facts.state_pc.push_back(pc);
      facts.site_slot.push_back(-1);
      facts.site_inv.push_back(0);
      facts.succ.emplace_back();
      state_regs.push_back(&it->first.second);
      frontier.push_back(it->second);
    }
    return it->second;
  };

  for (std::size_t c = 0; c < combos; ++c) {
    std::vector<Val> regs(static_cast<std::size_t>(num_regs), 0);
    std::size_t rest = c;
    for (std::size_t i = 0; i < seed_values.size(); ++i) {
      const auto& vals = seed_values[i];
      if (i < regs.size()) regs[i] = vals[rest % vals.size()];
      rest /= vals.size();
    }
    const auto root = intern(0, std::move(regs));
    if (!root) return unavailable("state limit exceeded");
    facts.roots.push_back(*root);
  }

  while (!frontier.empty()) {
    const int s = frontier.front();
    frontier.pop_front();
    const int pc = facts.state_pc[static_cast<std::size_t>(s)];
    const StaticInstr& ins = facts.code[static_cast<std::size_t>(pc)];
    const std::vector<Val>* regs = state_regs[static_cast<std::size_t>(s)];

    const auto eval = [&](const Expr& e) -> std::optional<Val> {
      try {
        return e.eval(*regs);
      } catch (const std::exception&) {
        return std::nullopt;  // division by zero etc.: the path aborts
      }
    };
    const auto link = [&](int next_pc, std::vector<Val> next_regs) -> bool {
      const auto t = intern(next_pc, std::move(next_regs));
      if (!t) {
        return ids.size() > limits.max_states ? false : true;
      }
      facts.succ[static_cast<std::size_t>(s)].push_back(*t);
      return true;
    };

    using Op = StaticInstr::Op;
    bool ok = true;
    switch (ins.op) {
      case Op::kAssign: {
        const auto v = eval(*ins.expr);
        if (!v) break;
        std::vector<Val> out = *regs;
        if (ins.reg >= 0 && ins.reg < num_regs) {
          out[static_cast<std::size_t>(ins.reg)] = *v;
        }
        ok = link(pc + 1, std::move(out));
        break;
      }
      case Op::kInvoke: {
        const auto inv = eval(*ins.expr);
        if (!inv) break;
        facts.site_slot[static_cast<std::size_t>(s)] = ins.slot;
        facts.site_inv[static_cast<std::size_t>(s)] = *inv;
        if (ins.slot >= 0 &&
            ins.slot < static_cast<int>(facts.slot_invs.size())) {
          auto& si = facts.slot_invs[static_cast<std::size_t>(ins.slot)];
          si = ValueSet::join(si, ValueSet::singleton(*inv));
        }
        const ValueSet resp =
            oracle ? oracle(ins.slot, ValueSet::singleton(*inv))
                   : ValueSet::top();
        const auto resp_vals = resp.enumerate(limits.max_values);
        if (!resp_vals) {
          return unavailable("response set not enumerable at " +
                             prog.name());
        }
        for (const Val r : *resp_vals) {
          std::vector<Val> out = *regs;
          if (ins.reg >= 0 && ins.reg < num_regs) {
            out[static_cast<std::size_t>(ins.reg)] = r;
          }
          if (!(ok = link(pc + 1, std::move(out)))) break;
        }
        break;
      }
      case Op::kJump:
        ok = link(ins.target, *regs);
        break;
      case Op::kBranchIf: {
        const auto cond = eval(*ins.expr);
        if (!cond) break;
        ok = link(*cond != 0 ? ins.target : pc + 1, *regs);
        break;
      }
      case Op::kRet: {
        const auto v = eval(*ins.expr);
        if (!v) break;
        facts.return_values =
            ValueSet::join(facts.return_values, ValueSet::singleton(*v));
        for (std::size_t i = 0; i < facts.persistent_out.size(); ++i) {
          if (i < regs->size()) {
            facts.persistent_out[i] = ValueSet::join(
                facts.persistent_out[i], ValueSet::singleton((*regs)[i]));
          }
        }
        break;
      }
      case Op::kFail:
        break;  // aborts the run: no successors
    }
    if (!ok || ids.size() > limits.max_states) {
      return unavailable("state limit exceeded in " + prog.name());
    }
  }

  facts.available = true;
  return facts;
}

Bound ExactProgramFacts::max_weight(
    const std::function<Bound(int slot, Val inv)>& weight) const {
  if (!available) return Bound::inf();
  return longest_weighted_path(succ, roots, [&](int s) {
    const int slot = site_slot[static_cast<std::size_t>(s)];
    if (slot < 0) return Bound::of(0);
    return weight(slot, site_inv[static_cast<std::size_t>(s)]);
  });
}

std::optional<std::vector<int>> ExactProgramFacts::witness(
    const std::function<bool(int slot, Val inv)>& site,
    std::size_t want) const {
  if (!available) return std::nullopt;
  return weighted_witness(succ, roots, [&](int s) {
    const int slot = site_slot[static_cast<std::size_t>(s)];
    return slot >= 0 && site(slot, site_inv[static_cast<std::size_t>(s)]);
  }, want);
}

std::string ExactProgramFacts::describe_state(int s) const {
  const int pc = state_pc[static_cast<std::size_t>(s)];
  const StaticInstr& ins = code[static_cast<std::size_t>(pc)];
  std::string out = "pc" + std::to_string(pc) + ": ";
  using Op = StaticInstr::Op;
  switch (ins.op) {
    case Op::kAssign:
      return out + "assign r" + std::to_string(ins.reg);
    case Op::kInvoke:
      return out + "invoke slot " + std::to_string(ins.slot) + " inv " +
             std::to_string(site_inv[static_cast<std::size_t>(s)]);
    case Op::kJump:
      return out + "jump -> pc" + std::to_string(ins.target);
    case Op::kBranchIf:
      return out + "branch -> pc" + std::to_string(ins.target);
    case Op::kRet:
      return out + "ret";
    case Op::kFail:
      return out + "fail";
  }
  return out + "?";
}

}  // namespace wfregs::analysis
