// Parallel schedule exploration: a work-stealing frontier of configuration
// subtrees over a sharded, lock-striped memo table.
//
// Discovery and reduction are split into phases:
//
//   1. DISCOVERY (parallel).  Workers pop frontier configurations from
//      per-worker deques (LIFO locally for DFS-like memory behaviour, FIFO
//      steals from victims so thieves grab the oldest -- largest --
//      subtrees).  Expanding a configuration copies the engine once per
//      outgoing edge, exactly like the sequential explorer, and claims the
//      child in the memo shard owning its ConfigKey hash; the first
//      inserter owns the child's expansion, so every configuration is
//      expanded exactly once and the per-node edge list is written by a
//      single thread (published to the post-passes by thread join).
//   2. CANONICAL REPLAY (single-threaded, cheap: no engine stepping).  A
//      DFS over the discovered DAG in stored edge order -- the exact
//      traversal the sequential explorer performs -- recomputes configs /
//      edges / terminals, detects cycles at the same point, and picks the
//      same first violation.  This is what makes the reduction of
//      ExploreStats deterministic at any thread count.
//   3. LONGEST-PATH DP (single-threaded) over the replay's postorder:
//      depth and per-object / per-invocation access bounds, the same
//      dynamic program the sequential explorer folds into its memo.
//
// Early aborts (stop_at_violation, limit hits) short-circuit discovery via
// an atomic stop flag; the post-passes are then skipped and the outcome
// carries partial counters, mirroring the sequential explorer's aborted
// shape (see the PARALLEL EXPLORATION contract in explorer.hpp).
//
// REDUCTION plugs into discovery as a claim-time filter: a node is a
// (canonical configuration, sleep mask) pair, expansion enumerates only the
// non-slept steps of the node's canonical representative engine, and every
// child is canonicalized BEFORE its try_emplace claim.  Canonicalization is
// a pure function of the child configuration, so racing workers compute the
// same key and the reduced node graph is exactly the sequential reduced
// explorer's; the canonical replay and DP post-passes then work unchanged.
#include "wfregs/runtime/explorer.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

namespace wfregs {

namespace {

struct PNode;

struct PEdge {
  PNode* child = nullptr;
  ObjectId object = -1;
  InvId inv = 0;
};

/// A discovered configuration.  During discovery, `edges`, `terminal` and
/// `violation` are written only by the worker that first inserted the node;
/// the post-pass scratch fields are used single-threaded after join.
struct PNode {
  std::vector<PEdge> edges;
  std::optional<std::string> violation;
  bool terminal = false;
  // ---- post-pass scratch ----
  std::uint8_t color = 0;  ///< 0 = unvisited, 1 = on replay stack, 2 = done
  int depth_from = 0;
  std::vector<std::size_t> acc_from;
  std::vector<std::size_t> inv_from;
};

constexpr std::size_t kNumShards = 64;

/// One stripe of the memo table: a mutex, the key -> node map, and an arena
/// whose deque storage keeps node addresses stable under insertion.
struct Shard {
  std::mutex mu;
  std::unordered_map<ConfigKey, PNode*, ConfigKeyHash> map;
  std::deque<PNode> arena;
};

struct WorkItem {
  PNode* node;
  Engine engine;
  int depth;
  std::uint64_t sleep = 0;
};

class ParallelExplorer {
 public:
  ParallelExplorer(const ExploreOptions& options, const TerminalCheck& check,
                   int threads)
      : limits_(options.limits),
        options_(options),
        check_(check),
        threads_(threads),
        queues_(static_cast<std::size_t>(threads)) {}

  ExploreOutcome run(const Engine& root) {
    const System& sys = root.system();
    if (options_.reduction != Reduction::kNone) {
      ctx_ = std::make_unique<ReductionContext>(sys, options_.reduction,
                                                options_.independence);
    }
    num_objects_ = sys.num_objects();
    if (limits_.track_access_bounds) {
      inv_offset_.resize(static_cast<std::size_t>(num_objects_) + 1, 0);
      for (ObjectId g = 0; g < num_objects_; ++g) {
        const int invs =
            sys.is_base(g) ? sys.base(g).spec->num_invocations() : 0;
        inv_offset_[static_cast<std::size_t>(g) + 1] =
            inv_offset_[static_cast<std::size_t>(g)] +
            static_cast<std::size_t>(invs);
      }
    }
    if (limits_.max_configs == 0 || limits_.max_depth < 0) {
      // The sequential explorer aborts before visiting even the root.
      ExploreOutcome out;
      out.complete = false;
      return out;
    }
    PNode* root_node = nullptr;
    Engine root_engine(root);
    std::uint64_t root_sleep = 0;
    {
      const ConfigKey key =
          ctx_ ? ctx_->canonical_node_key(root_engine, root_sleep)
               : root_engine.config_key();
      Shard& s = shard_for(key);
      s.arena.emplace_back();
      root_node = &s.arena.back();
      s.map.emplace(key, root_node);
    }
    configs_.store(1, std::memory_order_relaxed);
    pending_.store(1, std::memory_order_relaxed);
    queues_[0].items.push_back(
        WorkItem{root_node, std::move(root_engine), 0, root_sleep});

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads_));
    for (int t = 0; t < threads_; ++t) {
      workers.emplace_back(&ParallelExplorer::worker, this, t);
    }
    for (std::thread& th : workers) th.join();
    if (exception_) std::rethrow_exception(exception_);

    ExploreOutcome out;
    out.stats.configs = configs_.load(std::memory_order_relaxed);
    out.stats.edges = edges_.load(std::memory_order_relaxed);
    out.stats.terminals = terminals_.load(std::memory_order_relaxed);
    if (incomplete_.load(std::memory_order_relaxed)) {
      out.complete = false;
      return out;
    }
    if (stop_.load(std::memory_order_relaxed)) {
      // Early stop at a violating terminal: counters are partial lower
      // bounds and the violation is whichever worker surfaced one first.
      std::lock_guard<std::mutex> lk(violation_mu_);
      out.violation = early_violation_;
      return out;
    }
    reduce(root_node, out);
    return out;
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<WorkItem> items;
  };

  Shard& shard_for(const ConfigKey& key) {
    return shards_[ConfigKeyHash{}(key) % kNumShards];
  }

  void worker(int wid) {
    try {
      int idle_rounds = 0;
      while (!stop_.load(std::memory_order_acquire)) {
        std::optional<WorkItem> item = pop(wid);
        if (!item) {
          if (pending_.load(std::memory_order_acquire) == 0) return;
          if (++idle_rounds > 64) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          } else {
            std::this_thread::yield();
          }
          continue;
        }
        idle_rounds = 0;
        expand(wid, *item);
        pending_.fetch_sub(1, std::memory_order_acq_rel);
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(violation_mu_);
        if (!exception_) exception_ = std::current_exception();
      }
      stop_.store(true, std::memory_order_release);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  std::optional<WorkItem> pop(int wid) {
    {
      WorkerQueue& q = queues_[static_cast<std::size_t>(wid)];
      std::lock_guard<std::mutex> lk(q.mu);
      if (!q.items.empty()) {
        WorkItem item = std::move(q.items.back());
        q.items.pop_back();
        return item;
      }
    }
    for (int k = 1; k < threads_; ++k) {
      WorkerQueue& q =
          queues_[static_cast<std::size_t>((wid + k) % threads_)];
      std::lock_guard<std::mutex> lk(q.mu);
      if (!q.items.empty()) {
        WorkItem item = std::move(q.items.front());
        q.items.pop_front();
        return item;
      }
    }
    return std::nullopt;
  }

  void push(int wid, WorkItem item) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    WorkerQueue& q = queues_[static_cast<std::size_t>(wid)];
    std::lock_guard<std::mutex> lk(q.mu);
    q.items.push_back(std::move(item));
  }

  /// Claims a discovered child (already canonicalized under reduction) in
  /// its memo shard, records the edge, and enqueues the expansion when this
  /// call won the insertion race.  Returns false on a limit abort.
  bool claim_child(int wid, const WorkItem& item, Engine&& child,
                   std::uint64_t child_sleep, const ConfigKey& key,
                   ObjectId object, InvId inv) {
    PNode* child_node = nullptr;
    bool inserted = false;
    {
      Shard& s = shard_for(key);
      std::lock_guard<std::mutex> lk(s.mu);
      const auto [it, fresh] = s.map.try_emplace(key, nullptr);
      if (fresh) {
        s.arena.emplace_back();
        it->second = &s.arena.back();
      }
      child_node = it->second;
      inserted = fresh;
    }
    item.node->edges.push_back(PEdge{child_node, object, inv});
    if (inserted) {
      const std::size_t count =
          configs_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (count > limits_.max_configs || item.depth + 1 > limits_.max_depth) {
        incomplete_.store(true, std::memory_order_relaxed);
        stop_.store(true, std::memory_order_release);
        return false;
      }
      push(wid, WorkItem{child_node, std::move(child), item.depth + 1,
                         child_sleep});
    }
    return true;
  }

  void expand(int wid, WorkItem& item) {
    Engine& e = item.engine;
    PNode* node = item.node;
    if (e.all_done()) {
      node->terminal = true;
      terminals_.fetch_add(1, std::memory_order_relaxed);
      if (check_) {
        if (auto violation = check_(e)) {
          node->violation = std::move(violation);
          {
            std::lock_guard<std::mutex> lk(violation_mu_);
            if (!early_violation_) early_violation_ = node->violation;
          }
          if (limits_.stop_at_violation) {
            stop_.store(true, std::memory_order_release);
          }
        }
      }
      return;
    }
    if (ctx_) {
      // Reduced discovery: skip slept processes, canonicalize every child
      // before the claim.  `e` is this node's canonical representative, so
      // the enumeration order -- and with it the stored edge order replayed
      // by the post-pass -- matches the sequential reduced explorer.
      const auto steps = ctx_->steps(e);
      for (std::size_t idx = 0; idx < steps.size(); ++idx) {
        const auto& step = steps[idx];
        if (item.sleep & (std::uint64_t{1} << step.p)) continue;
        const std::uint64_t child_sleep =
            ctx_->child_sleep(steps, idx, item.sleep);
        for (int c = 0; c < step.width; ++c) {
          if (stop_.load(std::memory_order_acquire)) return;
          edges_.fetch_add(1, std::memory_order_relaxed);
          Engine child = e;
          child.commit(step.p, c);
          std::uint64_t canon_sleep = child_sleep;
          const ConfigKey key = ctx_->canonical_node_key(child, canon_sleep);
          if (!claim_child(wid, item, std::move(child), canon_sleep, key,
                           step.object, step.inv)) {
            return;
          }
        }
      }
      return;
    }
    for (const ProcId p : e.runnable()) {
      const int width = e.pending_choices(p);
      for (int c = 0; c < width; ++c) {
        if (stop_.load(std::memory_order_acquire)) return;
        edges_.fetch_add(1, std::memory_order_relaxed);
        Engine child = e;
        const Engine::CommitInfo commit = child.commit(p, c);
        const ConfigKey key = child.config_key();
        if (!claim_child(wid, item, std::move(child), 0, key, commit.object,
                         commit.inv)) {
          return;
        }
      }
    }
  }

  /// Phases 2 and 3: replay the sequential DFS over the discovered DAG in
  /// canonical edge order, then run the longest-path / access-bound DP over
  /// its postorder.  Single-threaded; no engine stepping.
  void reduce(PNode* root_node, ExploreOutcome& out) {
    struct Frame {
      PNode* n;
      std::size_t next;
    };
    std::vector<Frame> stack;
    std::vector<PNode*> postorder;
    postorder.reserve(out.stats.configs);
    std::size_t seen_configs = 0;
    std::size_t seen_edges = 0;
    std::size_t seen_terminals = 0;
    PNode* first_violation = nullptr;
    bool cycle = false;

    const auto visit = [&](PNode* n) {
      ++seen_configs;
      n->color = 1;
      if (n->terminal) ++seen_terminals;
      if (n->violation && !first_violation) first_violation = n;
      stack.push_back(Frame{n, 0});
    };
    visit(root_node);
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next == f.n->edges.size()) {
        f.n->color = 2;
        postorder.push_back(f.n);
        stack.pop_back();
        continue;
      }
      PNode* child = f.n->edges[f.next++].child;
      ++seen_edges;
      if (child->color == 1) {
        // The same cycle the sequential DFS would hit, at the same point:
        // some execution revisits a configuration, so by the Section 4.2
        // Koenig's-lemma argument the implementation is not wait-free.
        cycle = true;
        break;
      }
      if (child->color == 0) visit(child);
    }
    if (first_violation) out.violation = *first_violation->violation;
    if (cycle) {
      out.wait_free = false;
      // Counters at the abort point, matching the sequential explorer's
      // partial stats bit for bit (the replay IS its traversal).
      out.stats.configs = seen_configs;
      out.stats.edges = seen_edges;
      out.stats.terminals = seen_terminals;
      return;
    }
    out.stats.configs = seen_configs;
    out.stats.edges = seen_edges;
    out.stats.terminals = seen_terminals;

    for (PNode* n : postorder) {
      if (limits_.track_access_bounds) {
        n->acc_from.assign(static_cast<std::size_t>(num_objects_), 0);
        n->inv_from.assign(inv_offset_.back(), 0);
      }
      for (const PEdge& edge : n->edges) {
        n->depth_from = std::max(n->depth_from, edge.child->depth_from + 1);
        if (limits_.track_access_bounds) {
          for (ObjectId g = 0; g < num_objects_; ++g) {
            std::size_t cand =
                edge.child->acc_from[static_cast<std::size_t>(g)];
            if (g == edge.object) ++cand;
            n->acc_from[static_cast<std::size_t>(g)] =
                std::max(n->acc_from[static_cast<std::size_t>(g)], cand);
          }
          const std::size_t hit =
              inv_offset_[static_cast<std::size_t>(edge.object)] +
              static_cast<std::size_t>(edge.inv);
          for (std::size_t k = 0; k < n->inv_from.size(); ++k) {
            std::size_t cand = edge.child->inv_from[k];
            if (k == hit) ++cand;
            n->inv_from[k] = std::max(n->inv_from[k], cand);
          }
        }
      }
    }
    out.stats.depth = root_node->depth_from;
    if (limits_.track_access_bounds) {
      out.stats.max_accesses = root_node->acc_from;
      out.stats.max_accesses_by_inv.resize(
          static_cast<std::size_t>(num_objects_));
      for (ObjectId g = 0; g < num_objects_; ++g) {
        out.stats.max_accesses_by_inv[static_cast<std::size_t>(g)].assign(
            root_node->inv_from.begin() +
                static_cast<std::ptrdiff_t>(
                    inv_offset_[static_cast<std::size_t>(g)]),
            root_node->inv_from.begin() +
                static_cast<std::ptrdiff_t>(
                    inv_offset_[static_cast<std::size_t>(g) + 1]));
      }
    }
  }

  const ExploreLimits limits_;
  const ExploreOptions options_;
  const TerminalCheck& check_;
  const int threads_;
  /// Non-null iff options_.reduction != kNone; built in run() once the
  /// system is known.
  std::unique_ptr<ReductionContext> ctx_;
  int num_objects_ = 0;
  std::vector<std::size_t> inv_offset_;
  std::array<Shard, kNumShards> shards_;
  std::vector<WorkerQueue> queues_;
  std::atomic<std::size_t> configs_{0};
  std::atomic<std::size_t> edges_{0};
  std::atomic<std::size_t> terminals_{0};
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> incomplete_{false};
  std::mutex violation_mu_;  ///< guards early_violation_ and exception_
  std::optional<std::string> early_violation_;
  std::exception_ptr exception_;
};

}  // namespace

ExploreOutcome explore_parallel(const Engine& root, const TerminalCheck& check,
                                const ExploreLimits& limits, int n_threads) {
  return explore_parallel(root, check, ExploreOptions{limits}, n_threads);
}

ExploreOutcome explore_parallel(const Engine& root, const TerminalCheck& check,
                                const ExploreOptions& options, int n_threads) {
  int threads = n_threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw ? static_cast<int>(hw) : 1;
  }
  if (threads == 1) return explore(root, options, check);
  ParallelExplorer impl(options, check, threads);
  return impl.run(root);
}

}  // namespace wfregs
