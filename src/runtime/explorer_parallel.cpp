// The retained mutex-based parallel explorer (explore_parallel_locked) and
// the explore_parallel dispatch.
//
// This engine is the pre-lock-free design, kept verbatim: a work-stealing
// frontier of mutexed per-worker deques over a 64-way lock-striped interned
// memo table.  It survives for the same reason explore_legacy does -- as
// the differential reference the lock-free engine
// (explorer_parallel_lockfree.cpp) is tested against, and as the baseline
// the E17 contention bench measures lock-free overhead and scaling against.
// The two engines share their data shapes, expansion order, and the
// canonical-replay + longest-path post-passes through parallel_common.hpp,
// so both satisfy the PARALLEL EXPLORATION contract in explorer.hpp:
//
//   1. DISCOVERY (parallel).  Workers pop frontier nodes from per-worker
//      deques (LIFO locally for DFS-like memory behaviour, FIFO steals from
//      victims so thieves grab the oldest -- largest -- subtrees).  Each
//      worker owns ONE undo-journaled engine; a frontier item carries no
//      engine at all, only a path chain of compact (process, choice,
//      renaming) deltas from the canonical root.  Popping an item
//      repositions the worker's engine by reverting to the longest common
//      prefix with its previous position and replaying the suffix.
//      Expansion applies each outgoing step with Engine::apply(), claims
//      the child in the interner shard owning its key hash, and reverts;
//      the first inserter owns the child's expansion, so every
//      configuration is expanded exactly once and the per-node edge list is
//      written by a single thread (published to the post-passes by thread
//      join).
//   2. CANONICAL REPLAY + 3. LONGEST-PATH DP: see
//      parallel_detail::replay_and_dp.
//
// Early aborts (stop_at_violation, limit hits) short-circuit discovery via
// an atomic stop flag; the post-passes are then skipped and the outcome
// carries partial counters, mirroring the sequential explorer's aborted
// shape.  Once the stop flag is set a worker's engine may be left mid-path;
// that is fine -- no worker expands another node afterwards.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "parallel_common.hpp"
#include "wfregs/runtime/config_intern.hpp"
#include "wfregs/runtime/explorer.hpp"

namespace wfregs {

namespace {

using parallel_detail::PathNode;
using parallel_detail::PathStep;
using parallel_detail::PEdge;
using parallel_detail::PNode;
using parallel_detail::WorkerState;
using parallel_detail::WorkItem;

constexpr std::size_t kNumShards = 64;

/// One stripe of the memo table: a mutex, the key-words -> dense-id
/// interner, and an arena whose deque storage keeps node addresses stable
/// under insertion.  arena[id] is the node of interned id `id`.
struct Shard {
  std::mutex mu;
  ConfigInterner interner;
  std::deque<PNode> arena;
};

class LockedParallelExplorer {
 public:
  LockedParallelExplorer(const ExploreOptions& options,
                         const TerminalCheck& check, int threads)
      : limits_(options.limits),
        options_(options),
        check_(check),
        threads_(threads),
        queues_(static_cast<std::size_t>(threads)) {}

  ExploreOutcome run(const Engine& root) {
    const System& sys = root.system();
    if (options_.reduction != Reduction::kNone) {
      ctx_ = std::make_unique<ReductionContext>(sys, options_.reduction,
                                                options_.independence);
    }
    num_objects_ = sys.num_objects();
    if (limits_.track_access_bounds) {
      inv_offset_ = parallel_detail::build_inv_offset(sys, num_objects_);
    }
    if (limits_.max_configs == 0 || limits_.max_depth < 0) {
      // The sequential explorer aborts before visiting even the root.
      ExploreOutcome out;
      out.complete = false;
      return out;
    }
    // Canonicalize the root once; every worker's engine starts as a copy of
    // this representative, and all path chains are rooted at it.
    canonical_root_.emplace(root);
    std::uint64_t root_sleep = 0;
    PNode* root_node = nullptr;
    {
      ConfigKey key;
      if (ctx_) {
        ctx_->canonical_node_key_into(*canonical_root_, root_sleep, key,
                                      nullptr);
      } else {
        canonical_root_->config_key_into(key);
      }
      const std::uint64_t hash = config_hash_words(key.words);
      Shard& s = shards_[hash % kNumShards];
      s.interner.intern(key.words, hash);
      s.arena.emplace_back();
      root_node = &s.arena.back();
    }
    configs_.store(1, std::memory_order_relaxed);
    pending_.store(1, std::memory_order_relaxed);
    queues_[0].items.push_back(WorkItem{root_node, nullptr, 0, root_sleep});

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads_));
    for (int t = 0; t < threads_; ++t) {
      workers.emplace_back(&LockedParallelExplorer::worker, this, t);
    }
    for (std::thread& th : workers) th.join();
    if (exception_) std::rethrow_exception(exception_);

    ExploreOutcome out;
    out.stats.configs = configs_.load(std::memory_order_relaxed);
    out.stats.edges = edges_.load(std::memory_order_relaxed);
    out.stats.terminals = terminals_.load(std::memory_order_relaxed);
    out.stats.interned_configs = interned_total();
    if (incomplete_.load(std::memory_order_relaxed)) {
      out.complete = false;
      return out;
    }
    if (stop_.load(std::memory_order_relaxed)) {
      // Early stop at a violating terminal: counters are partial lower
      // bounds and the violation is whichever worker surfaced one first.
      std::lock_guard<std::mutex> lk(violation_mu_);
      out.violation = early_violation_;
      return out;
    }
    parallel_detail::replay_and_dp(root_node, limits_, num_objects_,
                                   inv_offset_, out);
    return out;
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<WorkItem> items;
  };

  /// The per-worker Host of parallel_detail::expand_node (see the hook
  /// table there): routes edge counting to the shared atomics and child
  /// claims to the lock-striped shards.
  struct Host {
    LockedParallelExplorer* self;
    int wid;

    ReductionContext* ctx() const { return self->ctx_.get(); }
    bool stopped() const {
      return self->stop_.load(std::memory_order_acquire);
    }
    void count_edge() const {
      self->edges_.fetch_add(1, std::memory_order_relaxed);
    }
    void on_terminal(PNode* node, Engine& e) const {
      self->on_terminal(node, e);
    }
    bool claim_child(const WorkItem& item, std::uint64_t child_sleep,
                     const ConfigKey& key, std::uint64_t hash,
                     ObjectId object, InvId inv, ProcId p, int choice,
                     int renaming) const {
      return self->claim_child(wid, item, child_sleep, key, hash, object,
                               inv, p, choice, renaming);
    }
  };

  std::size_t interned_total() const {
    std::size_t total = 0;
    for (const Shard& s : shards_) total += s.interner.size();
    return total;
  }

  void worker(int wid) {
    WorkerState ws;
    Host host{this, wid};
    try {
      int idle_rounds = 0;
      while (!stop_.load(std::memory_order_acquire)) {
        if (limits_.cancel &&
            limits_.cancel->load(std::memory_order_relaxed)) {
          incomplete_.store(true, std::memory_order_relaxed);
          stop_.store(true, std::memory_order_release);
          break;
        }
        std::optional<WorkItem> item = pop(wid);
        if (!item) {
          if (pending_.load(std::memory_order_acquire) == 0) return;
          if (++idle_rounds > 64) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          } else {
            std::this_thread::yield();
          }
          continue;
        }
        idle_rounds = 0;
        if (!ws.engine) ws.engine.emplace(*canonical_root_);
        parallel_detail::switch_to(ctx_.get(), ws, *item);
        parallel_detail::expand_node(host, ws, *item);
        pending_.fetch_sub(1, std::memory_order_acq_rel);
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(violation_mu_);
        if (!exception_) exception_ = std::current_exception();
      }
      stop_.store(true, std::memory_order_release);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  std::optional<WorkItem> pop(int wid) {
    {
      WorkerQueue& q = queues_[static_cast<std::size_t>(wid)];
      std::lock_guard<std::mutex> lk(q.mu);
      if (!q.items.empty()) {
        WorkItem item = std::move(q.items.back());
        q.items.pop_back();
        return item;
      }
    }
    for (int k = 1; k < threads_; ++k) {
      WorkerQueue& q =
          queues_[static_cast<std::size_t>((wid + k) % threads_)];
      std::lock_guard<std::mutex> lk(q.mu);
      if (!q.items.empty()) {
        WorkItem item = std::move(q.items.front());
        q.items.pop_front();
        return item;
      }
    }
    return std::nullopt;
  }

  void push(int wid, WorkItem item) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    WorkerQueue& q = queues_[static_cast<std::size_t>(wid)];
    std::lock_guard<std::mutex> lk(q.mu);
    q.items.push_back(std::move(item));
  }

  void on_terminal(PNode* node, Engine& e) {
    node->terminal = true;
    terminals_.fetch_add(1, std::memory_order_relaxed);
    if (check_) {
      if (auto violation = check_(e)) {
        node->violation = std::move(violation);
        {
          std::lock_guard<std::mutex> lk(violation_mu_);
          if (!early_violation_) early_violation_ = node->violation;
        }
        if (limits_.stop_at_violation) {
          stop_.store(true, std::memory_order_release);
        }
      }
    }
  }

  /// Claims a discovered child (already canonicalized under reduction) in
  /// its interner shard, records the edge, and enqueues the expansion when
  /// this call won the insertion race.  Returns false on a limit abort.
  bool claim_child(int wid, const WorkItem& item, std::uint64_t child_sleep,
                   const ConfigKey& key, std::uint64_t hash, ObjectId object,
                   InvId inv, ProcId p, int choice, int renaming) {
    PNode* child_node = nullptr;
    bool inserted = false;
    {
      Shard& s = shards_[hash % kNumShards];
      std::lock_guard<std::mutex> lk(s.mu);
      const std::size_t before = s.interner.size();
      const std::uint32_t id = s.interner.intern(key.words, hash);
      if (s.interner.size() != before) {
        s.arena.emplace_back();
        inserted = true;
      }
      child_node = &s.arena[id];
    }
    item.node->edges.push_back(PEdge{child_node, object, inv});
    if (inserted) {
      const std::size_t count =
          configs_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (count > limits_.max_configs || item.depth + 1 > limits_.max_depth ||
          (limits_.cancel &&
           limits_.cancel->load(std::memory_order_relaxed))) {
        incomplete_.store(true, std::memory_order_relaxed);
        stop_.store(true, std::memory_order_release);
        return false;
      }
      auto link = std::make_shared<const PathNode>(
          PathNode{PathStep{p, choice, renaming}, item.path});
      push(wid, WorkItem{child_node, std::move(link), item.depth + 1,
                         child_sleep});
    }
    return true;
  }

  const ExploreLimits limits_;
  const ExploreOptions options_;
  const TerminalCheck& check_;
  const int threads_;
  /// Non-null iff options_.reduction != kNone; built in run() once the
  /// system is known.
  std::unique_ptr<ReductionContext> ctx_;
  int num_objects_ = 0;
  std::vector<std::size_t> inv_offset_;
  /// The canonicalized root configuration; workers copy it lazily on their
  /// first item.
  std::optional<Engine> canonical_root_;
  std::array<Shard, kNumShards> shards_;
  std::vector<WorkerQueue> queues_;
  std::atomic<std::size_t> configs_{0};
  std::atomic<std::size_t> edges_{0};
  std::atomic<std::size_t> terminals_{0};
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> incomplete_{false};
  std::mutex violation_mu_;  ///< guards early_violation_ and exception_
  std::optional<std::string> early_violation_;
  std::exception_ptr exception_;
};

int resolve_threads(int n_threads) {
  if (n_threads > 0) return n_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

}  // namespace

ExploreOutcome explore_parallel_locked(const Engine& root,
                                       const TerminalCheck& check,
                                       const ExploreOptions& options,
                                       int n_threads) {
  if (options.storage.enabled()) {
    // Out-of-core runs route to the sequential storage-backed engine: the
    // parallel explorers are contractually bit-identical to explore(), so
    // the substitution is unobservable apart from thread count.
    return explore(root, options, check);
  }
  LockedParallelExplorer impl(options, check, resolve_threads(n_threads));
  return impl.run(root);
}

ExploreOutcome explore_parallel(const Engine& root, const TerminalCheck& check,
                                const ExploreLimits& limits, int n_threads) {
  return explore_parallel(root, check, ExploreOptions{limits}, n_threads);
}

ExploreOutcome explore_parallel(const Engine& root, const TerminalCheck& check,
                                const ExploreOptions& options, int n_threads) {
  if (options.storage.enabled()) return explore(root, options, check);
  const int threads = resolve_threads(n_threads);
  if (threads == 1) return explore(root, options, check);
  return explore_parallel_lockfree(root, check, options, threads);
}

}  // namespace wfregs
