// Parallel schedule exploration: a work-stealing frontier of configuration
// subtrees over a sharded, interned memo table.
//
// Discovery and reduction are split into phases:
//
//   1. DISCOVERY (parallel).  Workers pop frontier nodes from per-worker
//      deques (LIFO locally for DFS-like memory behaviour, FIFO steals from
//      victims so thieves grab the oldest -- largest -- subtrees).  Each
//      worker owns ONE undo-journaled engine; a frontier item carries no
//      engine at all, only a path chain of compact (process, choice,
//      renaming) deltas from the canonical root.  Popping an item
//      repositions the worker's engine by reverting to the longest common
//      prefix with its previous position and replaying the suffix --
//      typically a handful of steps, since local pops walk the worker's own
//      DFS order.  Expansion applies each outgoing step with
//      Engine::apply(), claims the child in the interner shard owning its
//      key hash, and reverts; the first inserter owns the child's
//      expansion, so every configuration is expanded exactly once and the
//      per-node edge list is written by a single thread (published to the
//      post-passes by thread join).
//   2. CANONICAL REPLAY (single-threaded, cheap: no engine stepping).  A
//      DFS over the discovered DAG in stored edge order -- the exact
//      traversal the sequential explorer performs -- recomputes configs /
//      edges / terminals, detects cycles at the same point, and picks the
//      same first violation.  This is what makes the reduction of
//      ExploreStats deterministic at any thread count.
//   3. LONGEST-PATH DP (single-threaded) over the replay's postorder:
//      depth and per-object / per-invocation access bounds, the same
//      dynamic program the sequential explorer folds into its memo.
//
// Early aborts (stop_at_violation, limit hits) short-circuit discovery via
// an atomic stop flag; the post-passes are then skipped and the outcome
// carries partial counters, mirroring the sequential explorer's aborted
// shape (see the PARALLEL EXPLORATION contract in explorer.hpp).  Once the
// stop flag is set a worker's engine may be left mid-path; that is fine --
// no worker expands another node afterwards.
//
// REDUCTION plugs into discovery as a claim-time filter: a node is a
// (canonical configuration, sleep mask) pair, expansion enumerates only the
// non-slept steps of the node's canonical representative engine, and every
// child is canonicalized in place BEFORE its claim (then un-renamed and
// reverted).  Canonicalization is a pure function of the child
// configuration, so racing workers compute the same key and the reduced
// node graph is exactly the sequential reduced explorer's; the claiming
// worker records WHICH group renaming canonicalization applied, and path
// replay re-applies that index verbatim -- no keys are recomputed when
// repositioning an engine.
#include "wfregs/runtime/explorer.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "wfregs/runtime/config_intern.hpp"

namespace wfregs {

namespace {

struct PNode;

struct PEdge {
  PNode* child = nullptr;
  ObjectId object = -1;
  InvId inv = 0;
};

/// A discovered configuration.  During discovery, `edges`, `terminal` and
/// `violation` are written only by the worker that first inserted the node;
/// the post-pass scratch fields are used single-threaded after join.
struct PNode {
  std::vector<PEdge> edges;
  std::optional<std::string> violation;
  bool terminal = false;
  // ---- post-pass scratch ----
  std::uint8_t color = 0;  ///< 0 = unvisited, 1 = on replay stack, 2 = done
  int depth_from = 0;
  std::vector<std::size_t> acc_from;
  std::vector<std::size_t> inv_from;
};

constexpr std::size_t kNumShards = 64;

/// One stripe of the memo table: a mutex, the key-words -> dense-id
/// interner, and an arena whose deque storage keeps node addresses stable
/// under insertion.  arena[id] is the node of interned id `id`.
struct Shard {
  std::mutex mu;
  ConfigInterner interner;
  std::deque<PNode> arena;
};

/// One compact delta on a root-to-node path: step process `p` with
/// nondeterministic choice `choice`, then (under symmetry) apply group
/// renaming `renaming` to canonicalize the resulting configuration (-1 when
/// canonicalization left the engine untouched).
struct PathStep {
  ProcId p = -1;
  int choice = 0;
  int renaming = -1;
};

/// Immutable reverse-linked path chain from the canonical root; WorkItems
/// and child chains share ancestor suffixes, so the frontier serializes
/// O(depth) small nodes per item instead of whole engines.
struct PathNode {
  PathStep step;
  std::shared_ptr<const PathNode> parent;
};

struct WorkItem {
  PNode* node = nullptr;
  /// Path from the canonical root to this node; nullptr for the root.
  std::shared_ptr<const PathNode> path;
  int depth = 0;
  std::uint64_t sleep = 0;
};

class ParallelExplorer {
 public:
  ParallelExplorer(const ExploreOptions& options, const TerminalCheck& check,
                   int threads)
      : limits_(options.limits),
        options_(options),
        check_(check),
        threads_(threads),
        queues_(static_cast<std::size_t>(threads)) {}

  ExploreOutcome run(const Engine& root) {
    const System& sys = root.system();
    if (options_.reduction != Reduction::kNone) {
      ctx_ = std::make_unique<ReductionContext>(sys, options_.reduction,
                                                options_.independence);
    }
    num_objects_ = sys.num_objects();
    if (limits_.track_access_bounds) {
      inv_offset_.resize(static_cast<std::size_t>(num_objects_) + 1, 0);
      for (ObjectId g = 0; g < num_objects_; ++g) {
        const int invs =
            sys.is_base(g) ? sys.base(g).spec->num_invocations() : 0;
        inv_offset_[static_cast<std::size_t>(g) + 1] =
            inv_offset_[static_cast<std::size_t>(g)] +
            static_cast<std::size_t>(invs);
      }
    }
    if (limits_.max_configs == 0 || limits_.max_depth < 0) {
      // The sequential explorer aborts before visiting even the root.
      ExploreOutcome out;
      out.complete = false;
      return out;
    }
    // Canonicalize the root once; every worker's engine starts as a copy of
    // this representative, and all path chains are rooted at it.
    canonical_root_.emplace(root);
    std::uint64_t root_sleep = 0;
    PNode* root_node = nullptr;
    {
      ConfigKey key;
      if (ctx_) {
        ctx_->canonical_node_key_into(*canonical_root_, root_sleep, key,
                                      nullptr);
      } else {
        canonical_root_->config_key_into(key);
      }
      const std::uint64_t hash = config_hash_words(key.words);
      Shard& s = shards_[hash % kNumShards];
      s.interner.intern(key.words, hash);
      s.arena.emplace_back();
      root_node = &s.arena.back();
    }
    configs_.store(1, std::memory_order_relaxed);
    pending_.store(1, std::memory_order_relaxed);
    queues_[0].items.push_back(WorkItem{root_node, nullptr, 0, root_sleep});

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads_));
    for (int t = 0; t < threads_; ++t) {
      workers.emplace_back(&ParallelExplorer::worker, this, t);
    }
    for (std::thread& th : workers) th.join();
    if (exception_) std::rethrow_exception(exception_);

    ExploreOutcome out;
    out.stats.configs = configs_.load(std::memory_order_relaxed);
    out.stats.edges = edges_.load(std::memory_order_relaxed);
    out.stats.terminals = terminals_.load(std::memory_order_relaxed);
    out.stats.interned_configs = interned_total();
    if (incomplete_.load(std::memory_order_relaxed)) {
      out.complete = false;
      return out;
    }
    if (stop_.load(std::memory_order_relaxed)) {
      // Early stop at a violating terminal: counters are partial lower
      // bounds and the violation is whichever worker surfaced one first.
      std::lock_guard<std::mutex> lk(violation_mu_);
      out.violation = early_violation_;
      return out;
    }
    reduce(root_node, out);
    return out;
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<WorkItem> items;
  };

  /// One applied level of a worker's current path: the undo journal of the
  /// step plus the renaming index applied after it (-1 = none).
  struct AppliedLevel {
    Engine::UndoRecord undo;
    int renaming = -1;
  };

  /// Per-worker exploration state: the single engine plus the path it is
  /// currently positioned at.  `tail` keeps the chain of `cur` alive (the
  /// raw pointers in `cur` are ancestors of `tail`), so prefix comparison
  /// against the next item's chain never touches freed nodes.
  struct WorkerState {
    std::optional<Engine> engine;
    std::vector<AppliedLevel> levels;  ///< levels[k] journals cur[k]'s step
    std::vector<const PathNode*> cur;
    std::shared_ptr<const PathNode> tail;
    std::vector<const PathNode*> target;  ///< scratch for switch_to
    ConfigKey scratch;                    ///< child-key scratch for expand
  };

  std::size_t interned_total() const {
    std::size_t total = 0;
    for (const Shard& s : shards_) total += s.interner.size();
    return total;
  }

  void worker(int wid) {
    WorkerState ws;
    try {
      int idle_rounds = 0;
      while (!stop_.load(std::memory_order_acquire)) {
        if (limits_.cancel &&
            limits_.cancel->load(std::memory_order_relaxed)) {
          incomplete_.store(true, std::memory_order_relaxed);
          stop_.store(true, std::memory_order_release);
          break;
        }
        std::optional<WorkItem> item = pop(wid);
        if (!item) {
          if (pending_.load(std::memory_order_acquire) == 0) return;
          if (++idle_rounds > 64) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          } else {
            std::this_thread::yield();
          }
          continue;
        }
        idle_rounds = 0;
        if (!ws.engine) ws.engine.emplace(*canonical_root_);
        switch_to(ws, *item);
        expand(wid, ws, *item);
        pending_.fetch_sub(1, std::memory_order_acq_rel);
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(violation_mu_);
        if (!exception_) exception_ = std::current_exception();
      }
      stop_.store(true, std::memory_order_release);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  std::optional<WorkItem> pop(int wid) {
    {
      WorkerQueue& q = queues_[static_cast<std::size_t>(wid)];
      std::lock_guard<std::mutex> lk(q.mu);
      if (!q.items.empty()) {
        WorkItem item = std::move(q.items.back());
        q.items.pop_back();
        return item;
      }
    }
    for (int k = 1; k < threads_; ++k) {
      WorkerQueue& q =
          queues_[static_cast<std::size_t>((wid + k) % threads_)];
      std::lock_guard<std::mutex> lk(q.mu);
      if (!q.items.empty()) {
        WorkItem item = std::move(q.items.front());
        q.items.pop_front();
        return item;
      }
    }
    return std::nullopt;
  }

  void push(int wid, WorkItem item) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    WorkerQueue& q = queues_[static_cast<std::size_t>(wid)];
    std::lock_guard<std::mutex> lk(q.mu);
    q.items.push_back(std::move(item));
  }

  /// Repositions ws.engine at item's node: unwind to the longest common
  /// prefix of the current and target paths (inverting each level's
  /// renaming before reverting its step), then replay the target suffix
  /// (applying each recorded step and re-applying its recorded renaming
  /// index).  Path chains are immutable and shared, so pointer equality
  /// identifies common prefixes exactly.
  void switch_to(WorkerState& ws, const WorkItem& item) {
    ws.target.clear();
    for (const PathNode* n = item.path.get(); n != nullptr;
         n = n->parent.get()) {
      ws.target.push_back(n);
    }
    std::reverse(ws.target.begin(), ws.target.end());
    std::size_t common = 0;
    while (common < ws.cur.size() && common < ws.target.size() &&
           ws.cur[common] == ws.target[common]) {
      ++common;
    }
    while (ws.cur.size() > common) {
      AppliedLevel& lv = ws.levels[ws.cur.size() - 1];
      if (lv.renaming >= 0) ctx_->undo_renaming(*ws.engine, lv.renaming);
      ws.engine->revert(lv.undo);
      ws.cur.pop_back();
    }
    for (std::size_t i = common; i < ws.target.size(); ++i) {
      const PathNode* n = ws.target[i];
      if (ws.levels.size() <= ws.cur.size()) ws.levels.emplace_back();
      AppliedLevel& lv = ws.levels[ws.cur.size()];
      ws.engine->apply(n->step.p, n->step.choice, lv.undo);
      lv.renaming = n->step.renaming;
      if (lv.renaming >= 0) ctx_->apply_renaming_index(*ws.engine, lv.renaming);
      ws.cur.push_back(n);
    }
    ws.tail = item.path;
  }

  /// Claims a discovered child (already canonicalized under reduction) in
  /// its interner shard, records the edge, and enqueues the expansion when
  /// this call won the insertion race.  Returns false on a limit abort.
  bool claim_child(int wid, const WorkItem& item, std::uint64_t child_sleep,
                   const ConfigKey& key, std::uint64_t hash, ObjectId object,
                   InvId inv, ProcId p, int choice, int renaming) {
    PNode* child_node = nullptr;
    bool inserted = false;
    {
      Shard& s = shards_[hash % kNumShards];
      std::lock_guard<std::mutex> lk(s.mu);
      const std::size_t before = s.interner.size();
      const std::uint32_t id = s.interner.intern(key.words, hash);
      if (s.interner.size() != before) {
        s.arena.emplace_back();
        inserted = true;
      }
      child_node = &s.arena[id];
    }
    item.node->edges.push_back(PEdge{child_node, object, inv});
    if (inserted) {
      const std::size_t count =
          configs_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (count > limits_.max_configs || item.depth + 1 > limits_.max_depth ||
          (limits_.cancel &&
           limits_.cancel->load(std::memory_order_relaxed))) {
        incomplete_.store(true, std::memory_order_relaxed);
        stop_.store(true, std::memory_order_release);
        return false;
      }
      auto link = std::make_shared<const PathNode>(
          PathNode{PathStep{p, choice, renaming}, item.path});
      push(wid, WorkItem{child_node, std::move(link), item.depth + 1,
                         child_sleep});
    }
    return true;
  }

  void expand(int wid, WorkerState& ws, const WorkItem& item) {
    Engine& e = *ws.engine;
    PNode* node = item.node;
    if (e.all_done()) {
      node->terminal = true;
      terminals_.fetch_add(1, std::memory_order_relaxed);
      if (check_) {
        if (auto violation = check_(e)) {
          node->violation = std::move(violation);
          {
            std::lock_guard<std::mutex> lk(violation_mu_);
            if (!early_violation_) early_violation_ = node->violation;
          }
          if (limits_.stop_at_violation) {
            stop_.store(true, std::memory_order_release);
          }
        }
      }
      return;
    }
    Engine::UndoRecord undo;
    if (ctx_) {
      // Reduced discovery: skip slept processes, canonicalize every child
      // in place before the claim.  `e` is this node's canonical
      // representative, so the enumeration order -- and with it the stored
      // edge order replayed by the post-pass -- matches the sequential
      // reduced explorer.
      const auto steps = ctx_->steps(e);
      for (std::size_t idx = 0; idx < steps.size(); ++idx) {
        const auto& step = steps[idx];
        if (item.sleep & (std::uint64_t{1} << step.p)) continue;
        const std::uint64_t child_sleep =
            ctx_->child_sleep(steps, idx, item.sleep);
        for (int c = 0; c < step.width; ++c) {
          if (stop_.load(std::memory_order_acquire)) return;
          edges_.fetch_add(1, std::memory_order_relaxed);
          e.apply(step.p, c, undo);
          std::uint64_t canon_sleep = child_sleep;
          int applied = -1;
          ctx_->canonical_node_key_into(e, canon_sleep, ws.scratch, &applied);
          const std::uint64_t hash = config_hash_words(ws.scratch.words);
          const bool ok =
              claim_child(wid, item, canon_sleep, ws.scratch, hash,
                          step.object, step.inv, step.p, c, applied);
          if (applied >= 0) ctx_->undo_renaming(e, applied);
          e.revert(undo);
          if (!ok) return;
        }
      }
      return;
    }
    for (const ProcId p : e.runnable()) {
      const int width = e.pending_choices(p);
      for (int c = 0; c < width; ++c) {
        if (stop_.load(std::memory_order_acquire)) return;
        edges_.fetch_add(1, std::memory_order_relaxed);
        const Engine::CommitInfo commit = e.apply(p, c, undo);
        e.config_key_into(ws.scratch);
        const std::uint64_t hash = config_hash_words(ws.scratch.words);
        const bool ok = claim_child(wid, item, 0, ws.scratch, hash,
                                    commit.object, commit.inv, p, c, -1);
        e.revert(undo);
        if (!ok) return;
      }
    }
  }

  /// Phases 2 and 3: replay the sequential DFS over the discovered DAG in
  /// canonical edge order, then run the longest-path / access-bound DP over
  /// its postorder.  Single-threaded; no engine stepping.
  void reduce(PNode* root_node, ExploreOutcome& out) {
    struct Frame {
      PNode* n;
      std::size_t next;
    };
    std::vector<Frame> stack;
    std::vector<PNode*> postorder;
    postorder.reserve(out.stats.configs);
    std::size_t seen_configs = 0;
    std::size_t seen_edges = 0;
    std::size_t seen_terminals = 0;
    PNode* first_violation = nullptr;
    bool cycle = false;

    const auto visit = [&](PNode* n) {
      ++seen_configs;
      n->color = 1;
      if (n->terminal) ++seen_terminals;
      if (n->violation && !first_violation) first_violation = n;
      stack.push_back(Frame{n, 0});
    };
    visit(root_node);
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next == f.n->edges.size()) {
        f.n->color = 2;
        postorder.push_back(f.n);
        stack.pop_back();
        continue;
      }
      PNode* child = f.n->edges[f.next++].child;
      ++seen_edges;
      if (child->color == 1) {
        // The same cycle the sequential DFS would hit, at the same point:
        // some execution revisits a configuration, so by the Section 4.2
        // Koenig's-lemma argument the implementation is not wait-free.
        cycle = true;
        break;
      }
      if (child->color == 0) visit(child);
    }
    if (first_violation) out.violation = *first_violation->violation;
    if (cycle) {
      out.wait_free = false;
      // Counters at the abort point, matching the sequential explorer's
      // partial stats bit for bit (the replay IS its traversal, and the
      // sequential memo grows in lockstep with its configs counter).
      out.stats.configs = seen_configs;
      out.stats.edges = seen_edges;
      out.stats.terminals = seen_terminals;
      out.stats.interned_configs = seen_configs;
      return;
    }
    out.stats.configs = seen_configs;
    out.stats.edges = seen_edges;
    out.stats.terminals = seen_terminals;

    for (PNode* n : postorder) {
      if (limits_.track_access_bounds) {
        n->acc_from.assign(static_cast<std::size_t>(num_objects_), 0);
        n->inv_from.assign(inv_offset_.back(), 0);
      }
      for (const PEdge& edge : n->edges) {
        n->depth_from = std::max(n->depth_from, edge.child->depth_from + 1);
        if (limits_.track_access_bounds) {
          for (ObjectId g = 0; g < num_objects_; ++g) {
            std::size_t cand =
                edge.child->acc_from[static_cast<std::size_t>(g)];
            if (g == edge.object) ++cand;
            n->acc_from[static_cast<std::size_t>(g)] =
                std::max(n->acc_from[static_cast<std::size_t>(g)], cand);
          }
          const std::size_t hit =
              inv_offset_[static_cast<std::size_t>(edge.object)] +
              static_cast<std::size_t>(edge.inv);
          for (std::size_t k = 0; k < n->inv_from.size(); ++k) {
            std::size_t cand = edge.child->inv_from[k];
            if (k == hit) ++cand;
            n->inv_from[k] = std::max(n->inv_from[k], cand);
          }
        }
      }
    }
    out.stats.depth = root_node->depth_from;
    if (limits_.track_access_bounds) {
      out.stats.max_accesses = root_node->acc_from;
      out.stats.max_accesses_by_inv.resize(
          static_cast<std::size_t>(num_objects_));
      for (ObjectId g = 0; g < num_objects_; ++g) {
        out.stats.max_accesses_by_inv[static_cast<std::size_t>(g)].assign(
            root_node->inv_from.begin() +
                static_cast<std::ptrdiff_t>(
                    inv_offset_[static_cast<std::size_t>(g)]),
            root_node->inv_from.begin() +
                static_cast<std::ptrdiff_t>(
                    inv_offset_[static_cast<std::size_t>(g) + 1]));
      }
    }
  }

  const ExploreLimits limits_;
  const ExploreOptions options_;
  const TerminalCheck& check_;
  const int threads_;
  /// Non-null iff options_.reduction != kNone; built in run() once the
  /// system is known.
  std::unique_ptr<ReductionContext> ctx_;
  int num_objects_ = 0;
  std::vector<std::size_t> inv_offset_;
  /// The canonicalized root configuration; workers copy it lazily on their
  /// first item.
  std::optional<Engine> canonical_root_;
  std::array<Shard, kNumShards> shards_;
  std::vector<WorkerQueue> queues_;
  std::atomic<std::size_t> configs_{0};
  std::atomic<std::size_t> edges_{0};
  std::atomic<std::size_t> terminals_{0};
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> incomplete_{false};
  std::mutex violation_mu_;  ///< guards early_violation_ and exception_
  std::optional<std::string> early_violation_;
  std::exception_ptr exception_;
};

}  // namespace

ExploreOutcome explore_parallel(const Engine& root, const TerminalCheck& check,
                                const ExploreLimits& limits, int n_threads) {
  return explore_parallel(root, check, ExploreOptions{limits}, n_threads);
}

ExploreOutcome explore_parallel(const Engine& root, const TerminalCheck& check,
                                const ExploreOptions& options, int n_threads) {
  int threads = n_threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw ? static_cast<int>(hw) : 1;
  }
  if (threads == 1) return explore(root, options, check);
  ParallelExplorer impl(options, check, threads);
  return impl.run(root);
}

}  // namespace wfregs
