// The compiled execution core's sequential explorer: a single undo-journaled
// engine walks the configuration tree in exactly the legacy traversal order
// (see explorer_legacy.cpp), but instead of copying the engine once per
// branch it applies each step with Engine::apply() and rolls it back with
// Engine::revert() on the way out.  Configurations are interned in a
// ConfigInterner arena -- the memo table maps key words to dense u32 ids, and
// per-node dynamic-programming state lives in a flat vector indexed by id.
//
// ORDER CONTRACT.  Every observable of the legacy explorer is preserved bit
// for bit: memo lookup precedes the cycle abort, which precedes the limit
// check, which precedes the insert + configs increment; children are
// enumerated in ascending process order with nondeterministic choices inner;
// edges are counted before the step is taken.  The differential suites
// (tests/differential.cpp, tests/compiled_core.cpp) hold explore() to
// explore_legacy() across the full zoo.
//
// REDUCED DFS.  Under kSleep / kSleepSymmetry the node entry canonicalizes
// the engine IN PLACE (the legacy code canonicalized a per-node copy).  The
// applied group renaming is recorded and inverted on EVERY return path --
// memo hits and limit aborts included -- before control returns to the
// parent, whose own revert() assumes the engine is exactly as its apply()
// left it.  Once `aborted_` is set the results are discarded wholesale, but
// the unwind still runs the full undo chain so the engine stays exact (and
// every rollback operation stays trivially memory-safe).
#include "wfregs/runtime/explorer.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "wfregs/runtime/config_intern.hpp"

namespace wfregs {

namespace {

struct NodeInfo {
  enum class State { kOnPath, kDone };
  State state = State::kOnPath;
  int depth_from = 0;
  /// Per base object: max accesses on any path from here (when tracking).
  std::vector<std::size_t> acc_from;
  /// Flattened per (base object, invocation) maxima (when tracking).
  std::vector<std::size_t> inv_from;
};

class ExplorerImpl {
 public:
  ExplorerImpl(const ExploreLimits& limits, const TerminalCheck& check)
      : limits_(limits), check_(check) {}

  ExploreOutcome run(const Engine& root) {
    const System& sys = root.system();
    num_objects_ = sys.num_objects();
    if (limits_.track_access_bounds) {
      inv_offset_.resize(static_cast<std::size_t>(num_objects_) + 1, 0);
      for (ObjectId g = 0; g < num_objects_; ++g) {
        const int invs =
            sys.is_base(g) ? sys.base(g).spec->num_invocations() : 0;
        inv_offset_[static_cast<std::size_t>(g) + 1] =
            inv_offset_[static_cast<std::size_t>(g)] +
            static_cast<std::size_t>(invs);
      }
    }
    engine_.emplace(root);
    const NodeInfo info = dfs(0);
    // Stats are only meaningful when the exploration ran to completion
    // (no cycle, no limit hit, no early stop at a violation).
    if (!aborted_) {
      outcome_.stats.depth = info.depth_from;
      if (limits_.track_access_bounds) {
        outcome_.stats.max_accesses = info.acc_from;
        outcome_.stats.max_accesses_by_inv.resize(
            static_cast<std::size_t>(num_objects_));
        for (ObjectId g = 0; g < num_objects_; ++g) {
          auto& per = outcome_.stats
                          .max_accesses_by_inv[static_cast<std::size_t>(g)];
          per.assign(info.inv_from.begin() +
                         static_cast<std::ptrdiff_t>(
                             inv_offset_[static_cast<std::size_t>(g)]),
                     info.inv_from.begin() +
                         static_cast<std::ptrdiff_t>(
                             inv_offset_[static_cast<std::size_t>(g) + 1]));
        }
      }
    }
    outcome_.stats.interned_configs = memo_.size();
    return outcome_;
  }

 private:
  NodeInfo leaf() const {
    NodeInfo info;
    info.state = NodeInfo::State::kDone;
    if (limits_.track_access_bounds) {
      info.acc_from.assign(static_cast<std::size_t>(num_objects_), 0);
      info.inv_from.assign(inv_offset_.back(), 0);
    }
    return info;
  }

  NodeInfo dfs(int depth) {
    if (aborted_) return leaf();
    Engine& e = *engine_;
    e.config_key_into(scratch_);
    const std::uint64_t hash = config_hash_words(scratch_.words);
    if (const std::uint32_t hit = memo_.find(scratch_.words, hash);
        hit != ConfigInterner::kNotFound) {
      if (nodes_[hit].state == NodeInfo::State::kOnPath) {
        // A configuration repeats along the current path: the executions of
        // this implementation form an infinite tree, so by the Section 4.2
        // argument (Koenig's lemma) some process runs forever without
        // completing -- the implementation is not wait-free.
        outcome_.wait_free = false;
        aborted_ = true;
        return leaf();
      }
      return nodes_[hit];
    }
    if (depth > limits_.max_depth ||
        outcome_.stats.configs >= limits_.max_configs ||
        (limits_.cancel &&
         limits_.cancel->load(std::memory_order_relaxed))) {
      outcome_.complete = false;
      aborted_ = true;
      return leaf();
    }
    const std::uint32_t id = memo_.intern(scratch_.words, hash);
    nodes_.emplace_back();  // state kOnPath until this node's DP completes
    ++outcome_.stats.configs;

    NodeInfo info = leaf();
    if (e.all_done()) {
      ++outcome_.stats.terminals;
      if (check_) {
        if (auto violation = check_(e)) {
          if (!outcome_.violation) outcome_.violation = std::move(violation);
          if (limits_.stop_at_violation) aborted_ = true;
        }
      }
    } else {
      Engine::UndoRecord undo;
      for (const ProcId p : e.runnable()) {
        const int width = e.pending_choices(p);
        for (int c = 0; c < width; ++c) {
          ++outcome_.stats.edges;
          const Engine::CommitInfo commit = e.apply(p, c, undo);
          const NodeInfo child_info = dfs(depth + 1);
          e.revert(undo);
          if (aborted_) break;
          info.depth_from =
              std::max(info.depth_from, child_info.depth_from + 1);
          if (limits_.track_access_bounds) {
            for (int g = 0; g < num_objects_; ++g) {
              std::size_t cand =
                  child_info.acc_from[static_cast<std::size_t>(g)];
              if (g == commit.object) ++cand;
              info.acc_from[static_cast<std::size_t>(g)] =
                  std::max(info.acc_from[static_cast<std::size_t>(g)], cand);
            }
            const std::size_t hit =
                inv_offset_[static_cast<std::size_t>(commit.object)] +
                static_cast<std::size_t>(commit.inv);
            for (std::size_t k = 0; k < info.inv_from.size(); ++k) {
              std::size_t cand = child_info.inv_from[k];
              if (k == hit) ++cand;
              info.inv_from[k] = std::max(info.inv_from[k], cand);
            }
          }
        }
        if (aborted_) break;
      }
    }
    nodes_[id] = info;
    return info;
  }

  const ExploreLimits& limits_;
  const TerminalCheck& check_;
  int num_objects_ = 0;
  std::vector<std::size_t> inv_offset_;
  bool aborted_ = false;
  ExploreOutcome outcome_;
  /// The one engine of this exploration; every recursion level applies a
  /// step on the way down and reverts it on the way up.
  std::optional<Engine> engine_;
  ConfigKey scratch_;
  ConfigInterner memo_;
  std::vector<NodeInfo> nodes_;  ///< DP state, indexed by interned id
};

/// The reduced DFS: same interned dynamic program as ExplorerImpl, but over
/// (canonical configuration, sleep mask) nodes.  Children are enumerated in
/// ascending process order with slept processes skipped, the engine is
/// canonicalized in place at node entry (and un-renamed at node exit; see
/// the header comment), and the Koenig's-lemma cycle abort fires on a node
/// repeat along the current path exactly as in the unreduced explorer.
class ReducedExplorerImpl {
 public:
  ReducedExplorerImpl(const ExploreOptions& options, const TerminalCheck& check)
      : limits_(options.limits), check_(check), options_(options) {}

  ExploreOutcome run(const Engine& root) {
    const System& sys = root.system();
    ctx_ = std::make_unique<ReductionContext>(sys, options_.reduction,
                                              options_.independence);
    num_objects_ = sys.num_objects();
    if (limits_.track_access_bounds) {
      inv_offset_.resize(static_cast<std::size_t>(num_objects_) + 1, 0);
      for (ObjectId g = 0; g < num_objects_; ++g) {
        const int invs =
            sys.is_base(g) ? sys.base(g).spec->num_invocations() : 0;
        inv_offset_[static_cast<std::size_t>(g) + 1] =
            inv_offset_[static_cast<std::size_t>(g)] +
            static_cast<std::size_t>(invs);
      }
    }
    engine_.emplace(root);
    const NodeInfo info = dfs(0, 0);
    if (!aborted_) {
      outcome_.stats.depth = info.depth_from;
      if (limits_.track_access_bounds) {
        outcome_.stats.max_accesses = info.acc_from;
        outcome_.stats.max_accesses_by_inv.resize(
            static_cast<std::size_t>(num_objects_));
        for (ObjectId g = 0; g < num_objects_; ++g) {
          auto& per = outcome_.stats
                          .max_accesses_by_inv[static_cast<std::size_t>(g)];
          per.assign(info.inv_from.begin() +
                         static_cast<std::ptrdiff_t>(
                             inv_offset_[static_cast<std::size_t>(g)]),
                     info.inv_from.begin() +
                         static_cast<std::ptrdiff_t>(
                             inv_offset_[static_cast<std::size_t>(g) + 1]));
        }
      }
    }
    outcome_.stats.interned_configs = memo_.size();
    return outcome_;
  }

 private:
  NodeInfo leaf() const {
    NodeInfo info;
    info.state = NodeInfo::State::kDone;
    if (limits_.track_access_bounds) {
      info.acc_from.assign(static_cast<std::size_t>(num_objects_), 0);
      info.inv_from.assign(inv_offset_.back(), 0);
    }
    return info;
  }

  /// Node entry/exit wrapper: canonicalizes the engine in place (updating
  /// `sleep` and filling scratch_ with the node key), runs the memoized
  /// body, and inverts the applied renaming on the single exit point --
  /// which covers memo hits, cycle and limit aborts, and normal completion
  /// alike, so the parent's revert() always sees its own post-apply state.
  NodeInfo dfs(std::uint64_t sleep, int depth) {
    if (aborted_) return leaf();
    int applied = -1;
    ctx_->canonical_node_key_into(*engine_, sleep, scratch_, &applied);
    const NodeInfo info = body(sleep, depth);
    if (applied >= 0) ctx_->undo_renaming(*engine_, applied);
    return info;
  }

  /// Memoized DP over the canonical node held in `scratch_` / `*engine_`.
  /// scratch_ is consumed (find + intern) before any recursion reuses it.
  NodeInfo body(std::uint64_t sleep, int depth) {
    Engine& e = *engine_;
    const std::uint64_t hash = config_hash_words(scratch_.words);
    if (const std::uint32_t hit = memo_.find(scratch_.words, hash);
        hit != ConfigInterner::kNotFound) {
      if (nodes_[hit].state == NodeInfo::State::kOnPath) {
        outcome_.wait_free = false;
        aborted_ = true;
        return leaf();
      }
      return nodes_[hit];
    }
    if (depth > limits_.max_depth ||
        outcome_.stats.configs >= limits_.max_configs ||
        (limits_.cancel &&
         limits_.cancel->load(std::memory_order_relaxed))) {
      outcome_.complete = false;
      aborted_ = true;
      return leaf();
    }
    const std::uint32_t id = memo_.intern(scratch_.words, hash);
    nodes_.emplace_back();
    ++outcome_.stats.configs;

    NodeInfo info = leaf();
    if (e.all_done()) {
      ++outcome_.stats.terminals;
      if (check_) {
        if (auto violation = check_(e)) {
          if (!outcome_.violation) outcome_.violation = std::move(violation);
          if (limits_.stop_at_violation) aborted_ = true;
        }
      }
    } else {
      const auto steps = ctx_->steps(e);
      Engine::UndoRecord undo;
      for (std::size_t idx = 0; idx < steps.size() && !aborted_; ++idx) {
        const auto& step = steps[idx];
        if (sleep & (std::uint64_t{1} << step.p)) continue;
        const std::uint64_t child_sleep =
            ctx_->child_sleep(steps, idx, sleep);
        for (int c = 0; c < step.width; ++c) {
          ++outcome_.stats.edges;
          e.apply(step.p, c, undo);
          const NodeInfo child_info = dfs(child_sleep, depth + 1);
          e.revert(undo);
          if (aborted_) break;
          info.depth_from =
              std::max(info.depth_from, child_info.depth_from + 1);
          if (limits_.track_access_bounds) {
            for (int g = 0; g < num_objects_; ++g) {
              std::size_t cand =
                  child_info.acc_from[static_cast<std::size_t>(g)];
              if (g == step.object) ++cand;
              info.acc_from[static_cast<std::size_t>(g)] =
                  std::max(info.acc_from[static_cast<std::size_t>(g)], cand);
            }
            const std::size_t hit =
                inv_offset_[static_cast<std::size_t>(step.object)] +
                static_cast<std::size_t>(step.inv);
            for (std::size_t k = 0; k < info.inv_from.size(); ++k) {
              std::size_t cand = child_info.inv_from[k];
              if (k == hit) ++cand;
              info.inv_from[k] = std::max(info.inv_from[k], cand);
            }
          }
        }
      }
    }
    nodes_[id] = info;
    return info;
  }

  const ExploreLimits& limits_;
  const TerminalCheck& check_;
  const ExploreOptions& options_;
  std::unique_ptr<ReductionContext> ctx_;
  int num_objects_ = 0;
  std::vector<std::size_t> inv_offset_;
  bool aborted_ = false;
  ExploreOutcome outcome_;
  std::optional<Engine> engine_;
  ConfigKey scratch_;
  ConfigInterner memo_;
  std::vector<NodeInfo> nodes_;
};

}  // namespace

ExploreOutcome explore(const Engine& root, const ExploreLimits& limits,
                       const TerminalCheck& check) {
  ExplorerImpl impl(limits, check);
  return impl.run(root);
}

ExploreOutcome explore(const Engine& root, const ExploreOptions& options,
                       const TerminalCheck& check) {
  if (options.storage.enabled()) {
    // Out-of-core mode: the storage-backed engine replays this explorer's
    // traversal bit for bit (see explorer_ooc.cpp's ORDER CONTRACT).
    return detail::explore_ooc(root, options, check);
  }
  if (options.reduction == Reduction::kNone) {
    return explore(root, options.limits, check);
  }
  ReducedExplorerImpl impl(options, check);
  return impl.run(root);
}

}  // namespace wfregs
