#include "wfregs/runtime/config_intern.hpp"

#include <algorithm>

namespace wfregs {

namespace {
constexpr std::size_t kInitialSlots = 64;  // power of two
}  // namespace

ConfigInterner::ConfigInterner() : slots_(kInitialSlots, 0) {
  mask_ = kInitialSlots - 1;
  starts_.push_back(0);
}

std::uint32_t ConfigInterner::find(std::span<const std::uint64_t> words,
                                   std::uint64_t hash) const noexcept {
  for (std::size_t slot = static_cast<std::size_t>(hash) & mask_;;
       slot = (slot + 1) & mask_) {
    const std::uint32_t v = slots_[slot];
    if (v == 0) return kNotFound;
    const std::uint32_t id = v - 1;
    if (hashes_[id] == hash) {
      const std::size_t b = starts_[id];
      if (starts_[id + 1] - b == words.size() &&
          std::equal(words.begin(), words.end(), arena_.begin() +
                                                     static_cast<std::ptrdiff_t>(
                                                         b))) {
        return id;
      }
    }
  }
}

std::uint32_t ConfigInterner::intern(std::span<const std::uint64_t> words,
                                     std::uint64_t hash) {
  std::size_t slot = static_cast<std::size_t>(hash) & mask_;
  for (; slots_[slot] != 0; slot = (slot + 1) & mask_) {
    const std::uint32_t id = slots_[slot] - 1;
    if (hashes_[id] == hash) {
      const std::size_t b = starts_[id];
      if (starts_[id + 1] - b == words.size() &&
          std::equal(words.begin(), words.end(), arena_.begin() +
                                                     static_cast<std::ptrdiff_t>(
                                                         b))) {
        return id;
      }
    }
  }
  const auto id = static_cast<std::uint32_t>(size());
  arena_.insert(arena_.end(), words.begin(), words.end());
  starts_.push_back(arena_.size());
  hashes_.push_back(hash);
  slots_[slot] = id + 1;
  // Grow at ~70% load so probe chains stay short.
  if ((size() + 1) * 10 >= slots_.size() * 7) grow();
  return id;
}

void ConfigInterner::grow() {
  const std::size_t new_size = slots_.size() * 2;
  std::vector<std::uint32_t> fresh(new_size, 0);
  const std::size_t new_mask = new_size - 1;
  for (std::uint32_t id = 0; id < size(); ++id) {
    std::size_t slot = static_cast<std::size_t>(hashes_[id]) & new_mask;
    while (fresh[slot] != 0) slot = (slot + 1) & new_mask;
    fresh[slot] = id + 1;
  }
  slots_ = std::move(fresh);
  mask_ = new_mask;
}

std::size_t ConfigInterner::memory_bytes() const {
  return arena_.capacity() * sizeof(std::uint64_t) +
         starts_.capacity() * sizeof(std::size_t) +
         hashes_.capacity() * sizeof(std::uint64_t) +
         slots_.capacity() * sizeof(std::uint32_t);
}

}  // namespace wfregs
