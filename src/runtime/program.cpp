#include "wfregs/runtime/program.hpp"

#include <algorithm>
#include <stdexcept>

namespace wfregs {

std::size_t locals_hash(const Locals& l) {
  std::size_t h = static_cast<std::size_t>(l.pc) * 0x9e3779b97f4a7c15ULL;
  for (const Val v : l.regs) {
    h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

// ---- Expr ---------------------------------------------------------------------

struct Expr::Node {
  Kind kind = Kind::kConst;
  Val k = 0;
  int reg = -1;
  std::shared_ptr<const Node> a;
  std::shared_ptr<const Node> b;
};

Expr Expr::lit(Val v) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kConst;
  n->k = v;
  return Expr(std::move(n));
}

Expr Expr::reg(int index) {
  if (index < 0) throw std::invalid_argument("Expr::reg: negative register");
  auto n = std::make_shared<Node>();
  n->kind = Kind::kReg;
  n->reg = index;
  return Expr(std::move(n));
}

Expr Expr::binary(Kind k, Expr a, Expr b) {
  auto n = std::make_shared<Node>();
  n->kind = k;
  n->a = std::move(a.node_);
  n->b = std::move(b.node_);
  return Expr(std::move(n));
}

Expr operator+(Expr a, Expr b) {
  return Expr::binary(Expr::Kind::kAdd, std::move(a), std::move(b));
}
Expr operator-(Expr a, Expr b) {
  return Expr::binary(Expr::Kind::kSub, std::move(a), std::move(b));
}
Expr operator*(Expr a, Expr b) {
  return Expr::binary(Expr::Kind::kMul, std::move(a), std::move(b));
}
Expr operator/(Expr a, Expr b) {
  return Expr::binary(Expr::Kind::kDiv, std::move(a), std::move(b));
}
Expr operator%(Expr a, Expr b) {
  return Expr::binary(Expr::Kind::kMod, std::move(a), std::move(b));
}
Expr operator==(Expr a, Expr b) {
  return Expr::binary(Expr::Kind::kEq, std::move(a), std::move(b));
}
Expr operator!=(Expr a, Expr b) {
  return Expr::binary(Expr::Kind::kNe, std::move(a), std::move(b));
}
Expr operator<(Expr a, Expr b) {
  return Expr::binary(Expr::Kind::kLt, std::move(a), std::move(b));
}
Expr operator<=(Expr a, Expr b) {
  return Expr::binary(Expr::Kind::kLe, std::move(a), std::move(b));
}
Expr operator&&(Expr a, Expr b) {
  return Expr::binary(Expr::Kind::kAnd, std::move(a), std::move(b));
}
Expr operator||(Expr a, Expr b) {
  return Expr::binary(Expr::Kind::kOr, std::move(a), std::move(b));
}
Expr operator!(Expr a) {
  auto n = std::make_shared<Expr::Node>();
  n->kind = Expr::Kind::kNot;
  n->a = std::move(a.node_);
  return Expr(std::move(n));
}

namespace {

Val eval_node(const Expr::Node& n, const std::vector<Val>& regs);

Val eval_child(const std::shared_ptr<const Expr::Node>& n,
               const std::vector<Val>& regs) {
  return eval_node(*n, regs);
}

Val eval_node(const Expr::Node& n, const std::vector<Val>& regs) {
  using K = Expr::Kind;
  switch (n.kind) {
    case K::kConst:
      return n.k;
    case K::kReg:
      if (n.reg >= static_cast<int>(regs.size())) {
        throw std::out_of_range("Expr: register " + std::to_string(n.reg) +
                                " not allocated");
      }
      return regs[static_cast<std::size_t>(n.reg)];
    case K::kAdd:
      return eval_child(n.a, regs) + eval_child(n.b, regs);
    case K::kSub:
      return eval_child(n.a, regs) - eval_child(n.b, regs);
    case K::kMul:
      return eval_child(n.a, regs) * eval_child(n.b, regs);
    case K::kDiv: {
      const Val d = eval_child(n.b, regs);
      if (d == 0) throw std::domain_error("Expr: division by zero");
      return eval_child(n.a, regs) / d;
    }
    case K::kMod: {
      const Val d = eval_child(n.b, regs);
      if (d == 0) throw std::domain_error("Expr: modulo by zero");
      return eval_child(n.a, regs) % d;
    }
    case K::kEq:
      return eval_child(n.a, regs) == eval_child(n.b, regs) ? 1 : 0;
    case K::kNe:
      return eval_child(n.a, regs) != eval_child(n.b, regs) ? 1 : 0;
    case K::kLt:
      return eval_child(n.a, regs) < eval_child(n.b, regs) ? 1 : 0;
    case K::kLe:
      return eval_child(n.a, regs) <= eval_child(n.b, regs) ? 1 : 0;
    case K::kAnd:
      return (eval_child(n.a, regs) != 0 && eval_child(n.b, regs) != 0) ? 1
                                                                        : 0;
    case K::kOr:
      return (eval_child(n.a, regs) != 0 || eval_child(n.b, regs) != 0) ? 1
                                                                        : 0;
    case K::kNot:
      return eval_child(n.a, regs) == 0 ? 1 : 0;
  }
  throw std::logic_error("Expr: unknown node kind");
}

int max_reg_node(const Expr::Node& n) {
  int m = n.kind == Expr::Kind::kReg ? n.reg : -1;
  if (n.a) m = std::max(m, max_reg_node(*n.a));
  if (n.b) m = std::max(m, max_reg_node(*n.b));
  return m;
}

}  // namespace

Val Expr::eval(const std::vector<Val>& regs) const {
  return eval_node(*node_, regs);
}

int Expr::max_reg() const { return max_reg_node(*node_); }

Expr::Kind Expr::kind() const { return node_->kind; }

Val Expr::const_value() const {
  if (node_->kind != Kind::kConst) {
    throw std::logic_error("Expr::const_value: not a kConst node");
  }
  return node_->k;
}

int Expr::reg_index() const {
  if (node_->kind != Kind::kReg) {
    throw std::logic_error("Expr::reg_index: not a kReg node");
  }
  return node_->reg;
}

std::optional<Expr> Expr::child_a() const {
  if (!node_->a) return std::nullopt;
  return Expr(node_->a);
}

std::optional<Expr> Expr::child_b() const {
  if (!node_->b) return std::nullopt;
  return Expr(node_->b);
}

std::optional<std::vector<StaticInstr>> ProgramCode::static_code() const {
  return std::nullopt;
}

// ---- bytecode program -----------------------------------------------------------

/// Interprets the instruction list produced by ProgramBuilder.
class BytecodeProgram final : public ProgramCode {
 public:
  BytecodeProgram(std::string name, std::vector<ProgramBuilder::Instr> code,
                  std::vector<int> label_targets, int num_regs)
      : name_(std::move(name)),
        code_(std::move(code)),
        label_targets_(std::move(label_targets)),
        num_regs_(num_regs) {}

  Action step(Locals& l) const override {
    // Fuel bounds pure local computation between shared accesses; the
    // constructions in this library use a handful of local instructions per
    // access, so hitting this indicates a diverging local loop.
    constexpr int kFuel = 100000;
    for (int fuel = 0; fuel < kFuel; ++fuel) {
      if (l.pc < 0 || l.pc >= static_cast<std::int32_t>(code_.size())) {
        throw std::logic_error("program " + name_ + ": pc out of range");
      }
      const auto& ins = code_[static_cast<std::size_t>(l.pc)];
      using Op = ProgramBuilder::Instr::Op;
      switch (ins.op) {
        case Op::kAssign:
          l.regs[static_cast<std::size_t>(ins.reg)] = ins.expr->eval(l.regs);
          ++l.pc;
          break;
        case Op::kInvoke: {
          const Val inv = ins.expr->eval(l.regs);
          ++l.pc;  // resume after the invoke once the response is delivered
          return DoInvoke{ins.slot, static_cast<InvId>(inv), ins.reg};
        }
        case Op::kJump:
          l.pc = label_targets_[static_cast<std::size_t>(ins.label)];
          break;
        case Op::kBranchIf:
          if (ins.expr->eval(l.regs) != 0) {
            l.pc = label_targets_[static_cast<std::size_t>(ins.label)];
          } else {
            ++l.pc;
          }
          break;
        case Op::kRet:
          return DoReturn{ins.expr->eval(l.regs)};
        case Op::kFail:
          throw std::runtime_error("program " + name_ + ": " + ins.message);
      }
    }
    throw std::runtime_error("program " + name_ +
                             ": local computation exceeded fuel (diverging "
                             "loop with no shared access?)");
  }

  const std::string& name() const override { return name_; }
  int num_regs() const override { return num_regs_; }

  std::optional<std::vector<StaticInstr>> static_code() const override {
    std::vector<StaticInstr> out;
    out.reserve(code_.size());
    for (const auto& ins : code_) {
      using Op = ProgramBuilder::Instr::Op;
      StaticInstr s;
      switch (ins.op) {
        case Op::kAssign: s.op = StaticInstr::Op::kAssign; break;
        case Op::kInvoke: s.op = StaticInstr::Op::kInvoke; break;
        case Op::kJump: s.op = StaticInstr::Op::kJump; break;
        case Op::kBranchIf: s.op = StaticInstr::Op::kBranchIf; break;
        case Op::kRet: s.op = StaticInstr::Op::kRet; break;
        case Op::kFail: s.op = StaticInstr::Op::kFail; break;
      }
      s.reg = ins.reg;
      s.slot = ins.slot;
      if (ins.label >= 0) {
        s.target = label_targets_[static_cast<std::size_t>(ins.label)];
      }
      s.expr = ins.expr;
      out.push_back(std::move(s));
    }
    return out;
  }

 private:
  std::string name_;
  std::vector<ProgramBuilder::Instr> code_;
  std::vector<int> label_targets_;
  int num_regs_ = 0;
};

// ---- builder ----------------------------------------------------------------------

void ProgramBuilder::note_reg(int r) {
  if (r < 0) throw std::invalid_argument("ProgramBuilder: negative register");
  max_reg_ = std::max(max_reg_, r);
}

void ProgramBuilder::note_expr(const Expr& e) {
  max_reg_ = std::max(max_reg_, e.max_reg());
}

Label ProgramBuilder::make_label() {
  label_targets_.push_back(-1);
  return Label{static_cast<int>(label_targets_.size()) - 1};
}

void ProgramBuilder::bind(Label l) {
  if (l.id < 0 || l.id >= static_cast<int>(label_targets_.size())) {
    throw std::invalid_argument("ProgramBuilder::bind: unknown label");
  }
  if (label_targets_[static_cast<std::size_t>(l.id)] != -1) {
    throw std::logic_error("ProgramBuilder::bind: label already bound");
  }
  label_targets_[static_cast<std::size_t>(l.id)] =
      static_cast<int>(code_.size());
}

Label ProgramBuilder::bind_here() {
  const Label l = make_label();
  bind(l);
  return l;
}

void ProgramBuilder::assign(int r, Expr value) {
  note_reg(r);
  note_expr(value);
  code_.push_back({Instr::Op::kAssign, r, -1, -1, std::move(value), {}});
}

void ProgramBuilder::invoke(int slot, Expr inv, int result_reg) {
  if (slot < 0) throw std::invalid_argument("ProgramBuilder: negative slot");
  note_reg(result_reg);
  note_expr(inv);
  code_.push_back(
      {Instr::Op::kInvoke, result_reg, slot, -1, std::move(inv), {}});
}

void ProgramBuilder::jump(Label target) {
  code_.push_back({Instr::Op::kJump, -1, -1, target.id, std::nullopt, {}});
}

void ProgramBuilder::branch_if(Expr condition, Label target) {
  note_expr(condition);
  code_.push_back(
      {Instr::Op::kBranchIf, -1, -1, target.id, std::move(condition), {}});
}

void ProgramBuilder::ret(Expr value) {
  note_expr(value);
  code_.push_back({Instr::Op::kRet, -1, -1, -1, std::move(value), {}});
}

void ProgramBuilder::fail(std::string message) {
  code_.push_back(
      {Instr::Op::kFail, -1, -1, -1, std::nullopt, std::move(message)});
}

ProgramRef ProgramBuilder::build(std::string name) {
  for (std::size_t i = 0; i < label_targets_.size(); ++i) {
    if (label_targets_[i] == -1) {
      throw std::logic_error("ProgramBuilder::build(" + name + "): label " +
                             std::to_string(i) + " used but never bound");
    }
  }
  if (code_.empty() || (code_.back().op != Instr::Op::kRet &&
                        code_.back().op != Instr::Op::kJump &&
                        code_.back().op != Instr::Op::kFail)) {
    throw std::logic_error("ProgramBuilder::build(" + name +
                           "): program must end in ret/jump/fail");
  }
  return std::make_shared<BytecodeProgram>(std::move(name), std::move(code_),
                                           std::move(label_targets_),
                                           max_reg_ + 1);
}

}  // namespace wfregs
