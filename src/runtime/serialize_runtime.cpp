// Whole-job serialization: the Implementation / VerifyOptions half of
// typesys/serialize.hpp (declared there, defined here because the types
// live in the runtime library).  The format is documented in that header.
//
// Programs are serialized from ProgramCode::static_code() and rebuilt with
// ProgramBuilder, so a round-trip preserves the exact instruction sequence
// (and therefore the engine's step-for-step behaviour); kFail messages are
// not part of the static disassembly and round-trip as "fail".
#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "wfregs/runtime/explorer.hpp"
#include "wfregs/runtime/implementation.hpp"
#include "wfregs/typesys/serialize.hpp"

namespace wfregs {

namespace {

[[noreturn]] void fail_at(int line, const std::string& what) {
  throw std::runtime_error("parse_implementation: line " +
                           std::to_string(line) + ": " + what);
}

// ---- expression s-expressions ---------------------------------------------

const char* op_token(Expr::Kind k) {
  switch (k) {
    case Expr::Kind::kConst: return "c";
    case Expr::Kind::kReg: return "r";
    case Expr::Kind::kAdd: return "+";
    case Expr::Kind::kSub: return "-";
    case Expr::Kind::kMul: return "*";
    case Expr::Kind::kDiv: return "/";
    case Expr::Kind::kMod: return "%";
    case Expr::Kind::kEq: return "==";
    case Expr::Kind::kNe: return "!=";
    case Expr::Kind::kLt: return "<";
    case Expr::Kind::kLe: return "<=";
    case Expr::Kind::kAnd: return "&&";
    case Expr::Kind::kOr: return "||";
    case Expr::Kind::kNot: return "!";
  }
  return "?";
}

void print_expr(std::ostream& out, const Expr& e) {
  out << "(" << op_token(e.kind());
  switch (e.kind()) {
    case Expr::Kind::kConst:
      out << " " << e.const_value();
      break;
    case Expr::Kind::kReg:
      out << " " << e.reg_index();
      break;
    default:
      if (const auto a = e.child_a()) {
        out << " ";
        print_expr(out, *a);
      }
      if (const auto b = e.child_b()) {
        out << " ";
        print_expr(out, *b);
      }
      break;
  }
  out << ")";
}

/// Splits an s-expression into '(' / ')' / atom tokens.
std::vector<std::string> expr_tokens(const std::string& text, int line) {
  std::vector<std::string> out;
  std::string atom;
  for (const char ch : text) {
    if (ch == '(' || ch == ')' || std::isspace(static_cast<unsigned char>(ch))) {
      if (!atom.empty()) {
        out.push_back(std::move(atom));
        atom.clear();
      }
      if (ch == '(') out.emplace_back("(");
      if (ch == ')') out.emplace_back(")");
    } else {
      atom.push_back(ch);
    }
  }
  if (!atom.empty()) out.push_back(std::move(atom));
  if (out.empty()) fail_at(line, "missing expression");
  return out;
}

Expr parse_expr_at(const std::vector<std::string>& toks, std::size_t& pos,
                   int line) {
  const auto want = [&](const char* what) {
    if (pos >= toks.size()) {
      fail_at(line, std::string("expression ends early, wanted ") + what);
    }
  };
  want("'('");
  if (toks[pos] != "(") fail_at(line, "expected '(' in expression");
  ++pos;
  want("an operator");
  const std::string op = toks[pos++];
  const auto number = [&]() -> Val {
    want("a number");
    try {
      std::size_t used = 0;
      const long long v = std::stoll(toks[pos], &used);
      if (used != toks[pos].size()) throw std::invalid_argument(toks[pos]);
      ++pos;
      return static_cast<Val>(v);
    } catch (const std::exception&) {
      fail_at(line, "bad number '" + toks[pos] + "' in expression");
    }
  };
  Expr result = lit(0);
  if (op == "c") {
    result = lit(number());
  } else if (op == "r") {
    result = reg(static_cast<int>(number()));
  } else if (op == "!") {
    result = !parse_expr_at(toks, pos, line);
  } else {
    Expr a = parse_expr_at(toks, pos, line);
    Expr b = parse_expr_at(toks, pos, line);
    if (op == "+") result = std::move(a) + std::move(b);
    else if (op == "-") result = std::move(a) - std::move(b);
    else if (op == "*") result = std::move(a) * std::move(b);
    else if (op == "/") result = std::move(a) / std::move(b);
    else if (op == "%") result = std::move(a) % std::move(b);
    else if (op == "==") result = std::move(a) == std::move(b);
    else if (op == "!=") result = std::move(a) != std::move(b);
    else if (op == "<") result = std::move(a) < std::move(b);
    else if (op == "<=") result = std::move(a) <= std::move(b);
    else if (op == "&&") result = std::move(a) && std::move(b);
    else if (op == "||") result = std::move(a) || std::move(b);
    else fail_at(line, "unknown expression operator '" + op + "'");
  }
  want("')'");
  if (toks[pos] != ")") fail_at(line, "expected ')' in expression");
  ++pos;
  return result;
}

Expr parse_expr(const std::string& text, int line) {
  const auto toks = expr_tokens(text, line);
  std::size_t pos = 0;
  Expr e = parse_expr_at(toks, pos, line);
  if (pos != toks.size()) fail_at(line, "trailing tokens after expression");
  return e;
}

// ---- programs -------------------------------------------------------------

void print_program(std::ostream& out, const ProgramCode& code,
                   const std::string& head) {
  const auto instrs = code.static_code();
  if (!instrs) {
    throw std::runtime_error(
        "print_implementation: program '" + code.name() +
        "' has no static disassembly and cannot be serialized");
  }
  out << "program " << head << " " << code.name() << "\n";
  for (const StaticInstr& ins : *instrs) {
    switch (ins.op) {
      case StaticInstr::Op::kAssign:
        out << "assign " << ins.reg << " ";
        print_expr(out, *ins.expr);
        break;
      case StaticInstr::Op::kInvoke:
        out << "invoke " << ins.reg << " " << ins.slot << " ";
        print_expr(out, *ins.expr);
        break;
      case StaticInstr::Op::kJump:
        out << "jump " << ins.target;
        break;
      case StaticInstr::Op::kBranchIf:
        out << "branch " << ins.target << " ";
        print_expr(out, *ins.expr);
        break;
      case StaticInstr::Op::kRet:
        out << "ret ";
        print_expr(out, *ins.expr);
        break;
      case StaticInstr::Op::kFail:
        out << "fail";
        break;
    }
    out << "\n";
  }
  out << "end program\n";
}

struct ParsedLine {
  int line_no = 0;
  std::vector<std::string> tokens;
};

/// One parsed program instruction before label resolution.
struct RawInstr {
  enum class Op { kAssign, kInvoke, kJump, kBranch, kRet, kFail };
  Op op = Op::kAssign;
  int reg = -1;
  int slot = -1;
  int target = -1;
  std::optional<Expr> expr;
};

ProgramRef build_program(const std::vector<RawInstr>& instrs,
                         const std::string& name, int line) {
  ProgramBuilder b;
  std::map<int, Label> labels;  // target pc -> label
  for (const RawInstr& ins : instrs) {
    if (ins.op == RawInstr::Op::kJump || ins.op == RawInstr::Op::kBranch) {
      if (ins.target < 0 || ins.target > static_cast<int>(instrs.size())) {
        fail_at(line, "jump target " + std::to_string(ins.target) +
                          " outside program '" + name + "'");
      }
      labels.try_emplace(ins.target, Label{});
    }
  }
  for (auto& [pc, label] : labels) label = b.make_label();
  for (std::size_t pc = 0; pc < instrs.size(); ++pc) {
    if (const auto it = labels.find(static_cast<int>(pc));
        it != labels.end()) {
      b.bind(it->second);
    }
    const RawInstr& ins = instrs[pc];
    switch (ins.op) {
      case RawInstr::Op::kAssign: b.assign(ins.reg, *ins.expr); break;
      case RawInstr::Op::kInvoke: b.invoke(ins.slot, *ins.expr, ins.reg); break;
      case RawInstr::Op::kJump: b.jump(labels.at(ins.target)); break;
      case RawInstr::Op::kBranch:
        b.branch_if(*ins.expr, labels.at(ins.target));
        break;
      case RawInstr::Op::kRet: b.ret(*ins.expr); break;
      case RawInstr::Op::kFail: b.fail("fail"); break;
    }
  }
  // A trailing label (jump past the last instruction) has no instruction to
  // bind to; ProgramBuilder would reject the unbound label with its own
  // diagnostic, which is the right error for a malformed file.
  if (const auto it = labels.find(static_cast<int>(instrs.size()));
      it != labels.end()) {
    b.bind(it->second);
  }
  try {
    return b.build(name);
  } catch (const std::logic_error& e) {
    fail_at(line, std::string("invalid program: ") + e.what());
  }
}

// ---- the line-oriented implementation format ------------------------------

class ImplParser {
 public:
  explicit ImplParser(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      ParsedLine pl;
      pl.line_no = line_no;
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) {
        if (tok[0] == '#') break;
        pl.tokens.push_back(tok);
      }
      if (!pl.tokens.empty()) lines_.push_back(std::move(pl));
    }
  }

  std::shared_ptr<const Implementation> parse() {
    auto impl = parse_impl();
    if (pos_ != lines_.size()) {
      fail_at(lines_[pos_].line_no, "trailing content after 'end impl'");
    }
    return impl;
  }

 private:
  const ParsedLine& peek() const {
    if (pos_ >= lines_.size()) {
      fail_at(lines_.empty() ? 1 : lines_.back().line_no,
              "unexpected end of input");
    }
    return lines_[pos_];
  }

  const ParsedLine& next() {
    const ParsedLine& pl = peek();
    ++pos_;
    return pl;
  }

  static int to_int(const std::string& tok, int line, const char* what) {
    try {
      std::size_t used = 0;
      const long long v = std::stoll(tok, &used);
      if (used != tok.size()) throw std::invalid_argument(tok);
      return static_cast<int>(v);
    } catch (const std::exception&) {
      fail_at(line, std::string("bad ") + what + " '" + tok + "'");
    }
  }

  void expect_end(const char* block) {
    const ParsedLine& pl = next();
    if (pl.tokens.size() != 2 || pl.tokens[0] != "end" ||
        pl.tokens[1] != block) {
      fail_at(pl.line_no, std::string("expected 'end ") + block + "'");
    }
  }

  /// Collects the raw lines of a nested TypeSpec until 'end <block>' and
  /// hands them to parse_type (whose own validation applies).
  std::shared_ptr<const TypeSpec> parse_type_block(const char* block) {
    std::ostringstream buf;
    const int start = peek().line_no;
    while (true) {
      const ParsedLine& pl = peek();
      if (pl.tokens[0] == "end") break;
      ++pos_;
      for (std::size_t k = 0; k < pl.tokens.size(); ++k) {
        buf << (k ? " " : "") << pl.tokens[k];
      }
      buf << "\n";
    }
    expect_end(block);
    try {
      return std::make_shared<const TypeSpec>(parse_type(buf.str()));
    } catch (const std::runtime_error& e) {
      fail_at(start, std::string("in nested type: ") + e.what());
    }
  }

  std::vector<PortId> parse_port_map(const ParsedLine& pl, std::size_t from) {
    if (from >= pl.tokens.size() || pl.tokens[from] != "map") {
      fail_at(pl.line_no, "expected 'map <ports...>'");
    }
    std::vector<PortId> map;
    for (std::size_t k = from + 1; k < pl.tokens.size(); ++k) {
      map.push_back(to_int(pl.tokens[k], pl.line_no, "port"));
    }
    return map;
  }

  std::shared_ptr<const Implementation> parse_impl() {
    const ParsedLine& head = next();
    if (head.tokens[0] != "impl" || head.tokens.size() < 2) {
      fail_at(head.line_no, "expected 'impl <name>'");
    }
    std::string name = head.tokens[1];
    for (std::size_t k = 2; k < head.tokens.size(); ++k) {
      name += " " + head.tokens[k];
    }

    const ParsedLine& init = next();
    if (init.tokens.size() != 2 || init.tokens[0] != "iface_initial") {
      fail_at(init.line_no, "expected 'iface_initial <state>'");
    }
    const StateId iface_initial =
        to_int(init.tokens[1], init.line_no, "state");

    std::vector<Val> persistent;
    if (peek().tokens[0] == "persistent") {
      const ParsedLine& pl = next();
      if (pl.tokens.size() < 2) fail_at(pl.line_no, "persistent needs a count");
      const int count = to_int(pl.tokens[1], pl.line_no, "count");
      if (static_cast<int>(pl.tokens.size()) != 2 + count) {
        fail_at(pl.line_no, "persistent count does not match values");
      }
      for (int k = 0; k < count; ++k) {
        persistent.push_back(to_int(pl.tokens[static_cast<std::size_t>(k) + 2],
                                    pl.line_no, "value"));
      }
    }

    {
      const ParsedLine& pl = next();
      if (pl.tokens.size() != 1 || pl.tokens[0] != "iface") {
        fail_at(pl.line_no, "expected 'iface'");
      }
    }
    const auto iface = parse_type_block("iface");
    auto impl =
        std::make_shared<Implementation>(std::move(name), iface, iface_initial);
    if (!persistent.empty()) impl->set_persistent(std::move(persistent));

    // Objects, in declaration order (slot indices must be preserved).
    while (peek().tokens[0] == "object") {
      const ParsedLine& pl = next();
      if (pl.tokens.size() < 2) fail_at(pl.line_no, "object needs a kind");
      if (pl.tokens[1] == "base") {
        if (pl.tokens.size() < 3) {
          fail_at(pl.line_no, "expected 'object base <initial> map ...'");
        }
        const StateId initial = to_int(pl.tokens[2], pl.line_no, "state");
        auto map = parse_port_map(pl, 3);
        auto spec = parse_type_block("object");
        try {
          impl->add_base(std::move(spec), initial, std::move(map));
        } catch (const std::exception& e) {
          fail_at(pl.line_no, std::string("bad base object: ") + e.what());
        }
      } else if (pl.tokens[1] == "nested") {
        auto map = parse_port_map(pl, 2);
        auto inner = parse_impl();
        expect_end("object");
        try {
          impl->add_nested(std::move(inner), std::move(map));
        } catch (const std::exception& e) {
          fail_at(pl.line_no, std::string("bad nested object: ") + e.what());
        }
      } else {
        fail_at(pl.line_no, "object kind must be 'base' or 'nested'");
      }
    }

    // Programs.
    while (peek().tokens[0] == "program") {
      const ParsedLine& pl = next();
      if (pl.tokens.size() < 4) {
        fail_at(pl.line_no, "expected 'program <inv> <port|*> <name>'");
      }
      const InvId inv = to_int(pl.tokens[1], pl.line_no, "invocation");
      const bool all_ports = pl.tokens[2] == "*";
      const PortId port =
          all_ports ? 0 : to_int(pl.tokens[2], pl.line_no, "port");
      std::string prog_name = pl.tokens[3];
      for (std::size_t k = 4; k < pl.tokens.size(); ++k) {
        prog_name += " " + pl.tokens[k];
      }
      std::vector<RawInstr> instrs;
      while (peek().tokens[0] != "end") {
        const ParsedLine& il = next();
        const std::string& op = il.tokens[0];
        RawInstr ins;
        // The expression, when present, is the remainder of the line.
        const auto rest = [&](std::size_t from) {
          std::string text;
          for (std::size_t k = from; k < il.tokens.size(); ++k) {
            text += il.tokens[k] + " ";
          }
          return parse_expr(text, il.line_no);
        };
        if (op == "assign" && il.tokens.size() >= 3) {
          ins.op = RawInstr::Op::kAssign;
          ins.reg = to_int(il.tokens[1], il.line_no, "register");
          ins.expr = rest(2);
        } else if (op == "invoke" && il.tokens.size() >= 4) {
          ins.op = RawInstr::Op::kInvoke;
          ins.reg = to_int(il.tokens[1], il.line_no, "register");
          ins.slot = to_int(il.tokens[2], il.line_no, "slot");
          ins.expr = rest(3);
        } else if (op == "jump" && il.tokens.size() == 2) {
          ins.op = RawInstr::Op::kJump;
          ins.target = to_int(il.tokens[1], il.line_no, "target");
        } else if (op == "branch" && il.tokens.size() >= 3) {
          ins.op = RawInstr::Op::kBranch;
          ins.target = to_int(il.tokens[1], il.line_no, "target");
          ins.expr = rest(2);
        } else if (op == "ret" && il.tokens.size() >= 2) {
          ins.op = RawInstr::Op::kRet;
          ins.expr = rest(1);
        } else if (op == "fail" && il.tokens.size() == 1) {
          ins.op = RawInstr::Op::kFail;
        } else {
          fail_at(il.line_no, "unknown instruction '" + op + "'");
        }
        instrs.push_back(std::move(ins));
      }
      expect_end("program");
      ProgramRef code = build_program(instrs, prog_name, pl.line_no);
      try {
        if (all_ports) {
          impl->set_program_all_ports(inv, std::move(code));
        } else {
          impl->set_program(inv, port, std::move(code));
        }
      } catch (const std::exception& e) {
        fail_at(pl.line_no, std::string("bad program header: ") + e.what());
      }
    }

    expect_end("impl");
    return impl;
  }

  std::vector<ParsedLine> lines_;
  std::size_t pos_ = 0;
};

void print_impl_into(std::ostream& out, const Implementation& impl) {
  out << "impl " << impl.name() << "\n";
  out << "iface_initial " << impl.iface_initial() << "\n";
  if (!impl.persistent_initial().empty()) {
    out << "persistent " << impl.persistent_initial().size();
    for (const Val v : impl.persistent_initial()) out << " " << v;
    out << "\n";
  }
  out << "iface\n" << print_type(impl.iface()) << "end iface\n";
  for (const ObjectDecl& decl : impl.objects()) {
    if (decl.is_base()) {
      out << "object base " << decl.initial << " map";
      for (const PortId p : decl.port_of_outer) out << " " << p;
      out << "\n" << print_type(*decl.spec) << "end object\n";
    } else {
      out << "object nested map";
      for (const PortId p : decl.port_of_outer) out << " " << p;
      out << "\n";
      print_impl_into(out, *decl.impl);
      out << "end object\n";
    }
  }
  const int ports = impl.iface().ports();
  for (InvId i = 0; i < impl.iface().num_invocations(); ++i) {
    // Collapse to '*' when every port shares the same program object (the
    // set_program_all_ports idiom).
    bool all_same = true;
    const bool has0 = impl.has_program(i, 0);
    for (PortId p = 0; p < ports && all_same; ++p) {
      if (impl.has_program(i, p) != has0 ||
          (has0 && impl.program(i, p) != impl.program(i, 0))) {
        all_same = false;
      }
    }
    if (all_same && has0) {
      print_program(out, *impl.program(i, 0),
                    std::to_string(i) + " *");
    } else {
      for (PortId p = 0; p < ports; ++p) {
        if (!impl.has_program(i, p)) continue;
        print_program(out, *impl.program(i, p),
                      std::to_string(i) + " " + std::to_string(p));
      }
    }
  }
  out << "end impl\n";
}

const char* reduction_token(Reduction r) {
  switch (r) {
    case Reduction::kNone: return "none";
    case Reduction::kSleep: return "sleep";
    case Reduction::kSleepSymmetry: return "sleep+symmetry";
  }
  return "none";
}

}  // namespace

std::string print_implementation(const Implementation& impl) {
  std::ostringstream out;
  print_impl_into(out, impl);
  return out.str();
}

std::shared_ptr<const Implementation> parse_implementation(
    const std::string& text) {
  ImplParser parser(text);
  return parser.parse();
}

std::string print_verify_options(const VerifyOptions& options) {
  return print_verify_options(options,
                              static_cast<bool>(options.static_precheck));
}

std::string print_verify_options(const VerifyOptions& options, bool precheck) {
  std::ostringstream out;
  out << "options\n"
      << "max_configs " << options.limits.max_configs << "\n"
      << "max_depth " << options.limits.max_depth << "\n"
      << "track_access_bounds " << (options.limits.track_access_bounds ? 1 : 0)
      << "\n"
      << "stop_at_violation " << (options.limits.stop_at_violation ? 1 : 0)
      << "\n"
      << "reduction " << reduction_token(options.reduction) << "\n"
      << "precheck " << (precheck ? 1 : 0) << "\n"
      << "end options\n";
  return out.str();
}

VerifyOptions parse_verify_options(const std::string& text,
                                   bool* precheck_out) {
  const auto bad = [](int line, const std::string& what) {
    throw std::runtime_error("parse_verify_options: line " +
                             std::to_string(line) + ": " + what);
  };
  VerifyOptions options;
  if (precheck_out) *precheck_out = false;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool open = false, closed = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::vector<std::string> toks;
    std::string tok;
    while (ls >> tok) {
      if (tok[0] == '#') break;
      toks.push_back(tok);
    }
    if (toks.empty()) continue;
    if (closed) bad(line_no, "trailing content after 'end options'");
    if (!open) {
      if (toks.size() != 1 || toks[0] != "options") {
        bad(line_no, "expected 'options'");
      }
      open = true;
      continue;
    }
    if (toks[0] == "end") {
      if (toks.size() != 2 || toks[1] != "options") {
        bad(line_no, "expected 'end options'");
      }
      closed = true;
      continue;
    }
    if (toks.size() != 2) bad(line_no, "expected '<field> <value>'");
    const auto number = [&]() -> long long {
      try {
        std::size_t used = 0;
        const long long v = std::stoll(toks[1], &used);
        if (used != toks[1].size() || v < 0) throw std::invalid_argument(toks[1]);
        return v;
      } catch (const std::exception&) {
        bad(line_no, "bad value '" + toks[1] + "' for " + toks[0]);
        return 0;  // unreachable
      }
    };
    if (toks[0] == "max_configs") {
      options.limits.max_configs = static_cast<std::size_t>(number());
    } else if (toks[0] == "max_depth") {
      options.limits.max_depth = static_cast<int>(number());
    } else if (toks[0] == "track_access_bounds") {
      options.limits.track_access_bounds = number() != 0;
    } else if (toks[0] == "stop_at_violation") {
      options.limits.stop_at_violation = number() != 0;
    } else if (toks[0] == "precheck") {
      if (precheck_out) *precheck_out = number() != 0;
    } else if (toks[0] == "reduction") {
      if (toks[1] == "none") options.reduction = Reduction::kNone;
      else if (toks[1] == "sleep") options.reduction = Reduction::kSleep;
      else if (toks[1] == "sleep+symmetry")
        options.reduction = Reduction::kSleepSymmetry;
      else bad(line_no, "reduction wants none|sleep|sleep+symmetry");
    } else {
      bad(line_no, "unknown option '" + toks[0] + "'");
    }
  }
  if (!closed) {
    throw std::runtime_error("parse_verify_options: missing 'end options'");
  }
  return options;
}

}  // namespace wfregs
