#include "wfregs/runtime/linearizability.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace wfregs {

namespace {

struct MaskState {
  std::uint64_t mask;
  StateId state;
  friend bool operator==(const MaskState&, const MaskState&) = default;
};

struct MaskStateHash {
  std::size_t operator()(const MaskState& ms) const {
    return std::hash<std::uint64_t>{}(ms.mask * 0x9e3779b97f4a7c15ULL ^
                                      static_cast<std::uint64_t>(ms.state));
  }
};

class Checker {
 public:
  Checker(const std::vector<OpRecord>& ops, const TypeSpec& spec)
      : ops_(ops), spec_(spec) {
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].response) completed_ |= (1ULL << i);
    }
  }

  LinearizabilityResult run(StateId initial) {
    LinearizabilityResult result;
    const bool ok = dfs(0, initial, result.order);
    result.linearizable = ok;
    result.states_explored = explored_;
    if (!ok) result.order.clear();
    return result;
  }

 private:
  bool dfs(std::uint64_t mask, StateId state, std::vector<int>& order) {
    if ((mask & completed_) == completed_) return true;
    ++explored_;
    if (failed_.contains(MaskState{mask, state})) return false;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (mask & (1ULL << i)) continue;
      if (!minimal(mask, i)) continue;
      const OpRecord& op = ops_[i];
      for (const Transition& t : spec_.delta(state, op.port, op.inv)) {
        if (op.response && static_cast<Val>(t.resp) != *op.response) {
          continue;
        }
        order.push_back(static_cast<int>(i));
        if (dfs(mask | (1ULL << i), t.next, order)) return true;
        order.pop_back();
      }
    }
    failed_.insert(MaskState{mask, state});
    return false;
  }

  /// An op may be linearized next only if no *other* unlinearized completed
  /// op finished before it was invoked.
  bool minimal(std::uint64_t mask, std::size_t i) const {
    for (std::size_t j = 0; j < ops_.size(); ++j) {
      if (j == i || (mask & (1ULL << j)) || !ops_[j].response) continue;
      if (ops_[j].response_time < ops_[i].invoke_time) return false;
    }
    return true;
  }

  const std::vector<OpRecord>& ops_;
  const TypeSpec& spec_;
  std::uint64_t completed_ = 0;
  std::unordered_set<MaskState, MaskStateHash> failed_;
  std::size_t explored_ = 0;
};

}  // namespace

LinearizabilityResult check_linearizable(const std::vector<OpRecord>& ops,
                                         const TypeSpec& spec,
                                         StateId initial) {
  if (ops.size() > 64) {
    throw std::invalid_argument(
        "check_linearizable: at most 64 operations supported");
  }
  if (initial < 0 || initial >= spec.num_states()) {
    throw std::out_of_range("check_linearizable: initial state out of range");
  }
  Checker checker(ops, spec);
  return checker.run(initial);
}

std::string describe_history(const std::vector<OpRecord>& ops,
                             const TypeSpec& spec) {
  std::ostringstream out;
  out << "history on type " << spec.name() << ":\n";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OpRecord& op = ops[i];
    out << "  [" << i << "] proc " << op.proc << " "
        << spec.invocation_name(op.inv) << " @port " << op.port << " ("
        << op.invoke_time << " .. ";
    if (op.response) {
      out << op.response_time << ") -> "
          << spec.response_name(static_cast<RespId>(*op.response));
    } else {
      out << "pending)";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace wfregs
