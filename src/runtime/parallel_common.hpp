// Internals shared by the two parallel explorer engines (the retained
// mutex-striped engine in explorer_parallel.cpp and the lock-free engine in
// explorer_parallel_lockfree.cpp): the discovered-DAG node / path-chain /
// frontier-item shapes, engine repositioning, reduction-aware node
// expansion, and the single-threaded canonical-replay + longest-path
// post-passes that make both engines' completed outcomes bit-identical to
// explore().  Keeping these in one header is what guarantees the engines
// cannot drift apart on the determinism contract: they differ ONLY in how
// a child is claimed, how the frontier is queued, and how counters are
// aggregated -- exactly the surfaces the Host hooks below parameterize.
//
// Internal to src/runtime; not installed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "wfregs/runtime/config_intern.hpp"
#include "wfregs/runtime/explorer.hpp"

namespace wfregs::parallel_detail {

struct PNode;

struct PEdge {
  PNode* child = nullptr;
  ObjectId object = -1;
  InvId inv = 0;
};

/// A discovered configuration.  During discovery, `edges`, `terminal` and
/// `violation` are written only by the worker that first inserted the node;
/// the post-pass scratch fields are used single-threaded after join.
struct PNode {
  std::vector<PEdge> edges;
  std::optional<std::string> violation;
  bool terminal = false;
  // ---- post-pass scratch ----
  std::uint8_t color = 0;  ///< 0 = unvisited, 1 = on replay stack, 2 = done
  int depth_from = 0;
  std::vector<std::size_t> acc_from;
  std::vector<std::size_t> inv_from;
};

/// One compact delta on a root-to-node path: step process `p` with
/// nondeterministic choice `choice`, then (under symmetry) apply group
/// renaming `renaming` to canonicalize the resulting configuration (-1 when
/// canonicalization left the engine untouched).
struct PathStep {
  ProcId p = -1;
  int choice = 0;
  int renaming = -1;
};

/// Immutable reverse-linked path chain from the canonical root; WorkItems
/// and child chains share ancestor suffixes, so the frontier serializes
/// O(depth) small nodes per item instead of whole engines.
struct PathNode {
  PathStep step;
  std::shared_ptr<const PathNode> parent;
};

struct WorkItem {
  PNode* node = nullptr;
  /// Path from the canonical root to this node; nullptr for the root.
  std::shared_ptr<const PathNode> path;
  int depth = 0;
  std::uint64_t sleep = 0;
};

/// One applied level of a worker's current path: the undo journal of the
/// step plus the renaming index applied after it (-1 = none).
struct AppliedLevel {
  Engine::UndoRecord undo;
  int renaming = -1;
};

/// Per-worker exploration state: the single engine plus the path it is
/// currently positioned at.  `tail` keeps the chain of `cur` alive (the
/// raw pointers in `cur` are ancestors of `tail`), so prefix comparison
/// against the next item's chain never touches freed nodes.
struct WorkerState {
  std::optional<Engine> engine;
  std::vector<AppliedLevel> levels;  ///< levels[k] journals cur[k]'s step
  std::vector<const PathNode*> cur;
  std::shared_ptr<const PathNode> tail;
  std::vector<const PathNode*> target;  ///< scratch for switch_to
  ConfigKey scratch;                    ///< child-key scratch for expand
};

/// Repositions ws.engine at item's node: unwind to the longest common
/// prefix of the current and target paths (inverting each level's renaming
/// before reverting its step), then replay the target suffix (applying each
/// recorded step and re-applying its recorded renaming index).  Path chains
/// are immutable and shared, so pointer equality identifies common prefixes
/// exactly.  `ctx` may be null only when no level carries a renaming.
inline void switch_to(ReductionContext* ctx, WorkerState& ws,
                      const WorkItem& item) {
  ws.target.clear();
  for (const PathNode* n = item.path.get(); n != nullptr;
       n = n->parent.get()) {
    ws.target.push_back(n);
  }
  std::reverse(ws.target.begin(), ws.target.end());
  std::size_t common = 0;
  while (common < ws.cur.size() && common < ws.target.size() &&
         ws.cur[common] == ws.target[common]) {
    ++common;
  }
  while (ws.cur.size() > common) {
    AppliedLevel& lv = ws.levels[ws.cur.size() - 1];
    if (lv.renaming >= 0) ctx->undo_renaming(*ws.engine, lv.renaming);
    ws.engine->revert(lv.undo);
    ws.cur.pop_back();
  }
  for (std::size_t i = common; i < ws.target.size(); ++i) {
    const PathNode* n = ws.target[i];
    if (ws.levels.size() <= ws.cur.size()) ws.levels.emplace_back();
    AppliedLevel& lv = ws.levels[ws.cur.size()];
    ws.engine->apply(n->step.p, n->step.choice, lv.undo);
    lv.renaming = n->step.renaming;
    if (lv.renaming >= 0) ctx->apply_renaming_index(*ws.engine, lv.renaming);
    ws.cur.push_back(n);
  }
  ws.tail = item.path;
}

/// Expands one frontier node, engine already positioned at it.  The Host
/// hooks are the ONLY per-engine surfaces:
///
///   ReductionContext* ctx()                 -- null under Reduction::kNone
///   const TerminalCheck& check()
///   bool stopped()                          -- acquire-load of the stop flag
///   void count_edge()                       -- one examined step
///   void on_terminal(PNode*, Engine&)       -- count + check + maybe stop
///   bool claim_child(const WorkItem&, std::uint64_t child_sleep,
///                    const ConfigKey&, std::uint64_t hash, ObjectId, InvId,
///                    ProcId, int choice, int renaming)
///                                           -- false aborts the expansion
///
/// Both engines share the enumeration order verbatim; the stored edge order
/// replayed by the post-pass is therefore the sequential explorer's in
/// either engine.
template <class Host>
void expand_node(Host& host, WorkerState& ws, const WorkItem& item) {
  Engine& e = *ws.engine;
  PNode* node = item.node;
  if (e.all_done()) {
    host.on_terminal(node, e);
    return;
  }
  Engine::UndoRecord undo;
  if (ReductionContext* ctx = host.ctx()) {
    // Reduced discovery: skip slept processes, canonicalize every child in
    // place before the claim.  `e` is this node's canonical
    // representative, so the enumeration order -- and with it the stored
    // edge order replayed by the post-pass -- matches the sequential
    // reduced explorer.
    const auto steps = ctx->steps(e);
    for (std::size_t idx = 0; idx < steps.size(); ++idx) {
      const auto& step = steps[idx];
      if (item.sleep & (std::uint64_t{1} << step.p)) continue;
      const std::uint64_t child_sleep =
          ctx->child_sleep(steps, idx, item.sleep);
      for (int c = 0; c < step.width; ++c) {
        if (host.stopped()) return;
        host.count_edge();
        e.apply(step.p, c, undo);
        std::uint64_t canon_sleep = child_sleep;
        int applied = -1;
        ctx->canonical_node_key_into(e, canon_sleep, ws.scratch, &applied);
        const std::uint64_t hash = config_hash_words(ws.scratch.words);
        const bool ok =
            host.claim_child(item, canon_sleep, ws.scratch, hash,
                             step.object, step.inv, step.p, c, applied);
        if (applied >= 0) ctx->undo_renaming(e, applied);
        e.revert(undo);
        if (!ok) return;
      }
    }
    return;
  }
  for (const ProcId p : e.runnable()) {
    const int width = e.pending_choices(p);
    for (int c = 0; c < width; ++c) {
      if (host.stopped()) return;
      host.count_edge();
      const Engine::CommitInfo commit = e.apply(p, c, undo);
      e.config_key_into(ws.scratch);
      const std::uint64_t hash = config_hash_words(ws.scratch.words);
      const bool ok = host.claim_child(item, 0, ws.scratch, hash,
                                       commit.object, commit.inv, p, c, -1);
      e.revert(undo);
      if (!ok) return;
    }
  }
}

/// Phases 2 and 3 of either engine: replay the sequential DFS over the
/// discovered DAG in canonical edge order, then run the longest-path /
/// access-bound DP over its postorder.  Single-threaded; no engine
/// stepping.  `inv_offset` is the per-object invocation-slot prefix sum
/// (empty unless limits.track_access_bounds).
inline void replay_and_dp(PNode* root_node, const ExploreLimits& limits,
                          int num_objects,
                          const std::vector<std::size_t>& inv_offset,
                          ExploreOutcome& out) {
  struct Frame {
    PNode* n;
    std::size_t next;
  };
  std::vector<Frame> stack;
  std::vector<PNode*> postorder;
  postorder.reserve(out.stats.configs);
  std::size_t seen_configs = 0;
  std::size_t seen_edges = 0;
  std::size_t seen_terminals = 0;
  PNode* first_violation = nullptr;
  bool cycle = false;

  const auto visit = [&](PNode* n) {
    ++seen_configs;
    n->color = 1;
    if (n->terminal) ++seen_terminals;
    if (n->violation && !first_violation) first_violation = n;
    stack.push_back(Frame{n, 0});
  };
  visit(root_node);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next == f.n->edges.size()) {
      f.n->color = 2;
      postorder.push_back(f.n);
      stack.pop_back();
      continue;
    }
    PNode* child = f.n->edges[f.next++].child;
    ++seen_edges;
    if (child->color == 1) {
      // The same cycle the sequential DFS would hit, at the same point:
      // some execution revisits a configuration, so by the Section 4.2
      // Koenig's-lemma argument the implementation is not wait-free.
      cycle = true;
      break;
    }
    if (child->color == 0) visit(child);
  }
  if (first_violation) out.violation = *first_violation->violation;
  if (cycle) {
    out.wait_free = false;
    // Counters at the abort point, matching the sequential explorer's
    // partial stats bit for bit (the replay IS its traversal, and the
    // sequential memo grows in lockstep with its configs counter).
    out.stats.configs = seen_configs;
    out.stats.edges = seen_edges;
    out.stats.terminals = seen_terminals;
    out.stats.interned_configs = seen_configs;
    return;
  }
  out.stats.configs = seen_configs;
  out.stats.edges = seen_edges;
  out.stats.terminals = seen_terminals;

  for (PNode* n : postorder) {
    if (limits.track_access_bounds) {
      n->acc_from.assign(static_cast<std::size_t>(num_objects), 0);
      n->inv_from.assign(inv_offset.back(), 0);
    }
    for (const PEdge& edge : n->edges) {
      n->depth_from = std::max(n->depth_from, edge.child->depth_from + 1);
      if (limits.track_access_bounds) {
        for (ObjectId g = 0; g < num_objects; ++g) {
          std::size_t cand =
              edge.child->acc_from[static_cast<std::size_t>(g)];
          if (g == edge.object) ++cand;
          n->acc_from[static_cast<std::size_t>(g)] =
              std::max(n->acc_from[static_cast<std::size_t>(g)], cand);
        }
        const std::size_t hit =
            inv_offset[static_cast<std::size_t>(edge.object)] +
            static_cast<std::size_t>(edge.inv);
        for (std::size_t k = 0; k < n->inv_from.size(); ++k) {
          std::size_t cand = edge.child->inv_from[k];
          if (k == hit) ++cand;
          n->inv_from[k] = std::max(n->inv_from[k], cand);
        }
      }
    }
  }
  out.stats.depth = root_node->depth_from;
  if (limits.track_access_bounds) {
    out.stats.max_accesses = root_node->acc_from;
    out.stats.max_accesses_by_inv.resize(
        static_cast<std::size_t>(num_objects));
    for (ObjectId g = 0; g < num_objects; ++g) {
      out.stats.max_accesses_by_inv[static_cast<std::size_t>(g)].assign(
          root_node->inv_from.begin() +
              static_cast<std::ptrdiff_t>(
                  inv_offset[static_cast<std::size_t>(g)]),
          root_node->inv_from.begin() +
              static_cast<std::ptrdiff_t>(
                  inv_offset[static_cast<std::size_t>(g) + 1]));
    }
  }
}

/// The per-object invocation-slot prefix sum used by the access-bound DP;
/// shared so both engines size inv_from identically.
inline std::vector<std::size_t> build_inv_offset(const System& sys,
                                                 int num_objects) {
  std::vector<std::size_t> inv_offset(
      static_cast<std::size_t>(num_objects) + 1, 0);
  for (ObjectId g = 0; g < num_objects; ++g) {
    const int invs = sys.is_base(g) ? sys.base(g).spec->num_invocations() : 0;
    inv_offset[static_cast<std::size_t>(g) + 1] =
        inv_offset[static_cast<std::size_t>(g)] +
        static_cast<std::size_t>(invs);
  }
  return inv_offset;
}

}  // namespace wfregs::parallel_detail
