#include "wfregs/runtime/verify.hpp"

#include <stdexcept>

#include "wfregs/runtime/history_check.hpp"
#include "wfregs/runtime/system.hpp"

namespace wfregs {

VerifyResult verify_linearizable(std::shared_ptr<const Implementation> impl,
                                 std::vector<std::vector<InvId>> scripts,
                                 const ExploreLimits& limits) {
  VerifyOptions options;
  options.limits = limits;
  return verify_linearizable(std::move(impl), std::move(scripts), options);
}

VerifyResult verify_linearizable(std::shared_ptr<const Implementation> impl,
                                 std::vector<std::vector<InvId>> scripts,
                                 const VerifyOptions& options) {
  const ExploreLimits& limits = options.limits;
  if (!impl) {
    throw std::invalid_argument("verify_linearizable: null implementation");
  }
  const int n = impl->iface().ports();
  if (static_cast<int>(scripts.size()) != n) {
    throw std::invalid_argument(
        "verify_linearizable: need one script per interface port");
  }
  if (options.static_precheck) {
    if (auto err = options.static_precheck(*impl)) {
      VerifyResult failed;
      failed.complete = true;  // the precheck is a full (static) answer
      failed.detail = std::move(*err);
      return failed;
    }
  }
  auto sys = std::make_shared<System>(n);
  std::vector<PortId> ports;
  for (PortId p = 0; p < n; ++p) ports.push_back(p);
  const ObjectId obj = sys->add_implemented(impl, ports);
  for (ProcId p = 0; p < n; ++p) {
    // The driver accumulates every response into its return value.  This is
    // NOT cosmetic: the explorer memoizes on configurations, and the
    // terminal check below depends on the response *history*; folding the
    // responses into process state keeps executions with different
    // histories in distinct configurations, preserving exhaustiveness.
    ProgramBuilder b;
    b.assign(1, lit(0));
    for (std::size_t k = 0; k < scripts[static_cast<std::size_t>(p)].size();
         ++k) {
      b.invoke(0, lit(scripts[static_cast<std::size_t>(p)][k]), 0);
      b.assign(1, reg(1) * lit(1 << 20) + reg(0) + lit(1));
    }
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("script_p" + std::to_string(p)), {obj});
  }

  const auto iface = impl->iface_ptr();
  const StateId initial = impl->iface_initial();
  const TerminalCheck check =
      [obj, iface, initial](const Engine& e) -> std::optional<std::string> {
    auto r = check_history_linearizable(e.history(), *iface, initial, obj);
    if (r.ok) return std::nullopt;
    return std::move(r.detail);
  };

  const Engine root{std::move(sys)};
  ExploreOptions explore_options{limits, options.reduction};
  explore_options.storage = options.storage;
  const auto out = explore_parallel(root, check, explore_options,
                                    options.threads);

  VerifyResult result;
  result.wait_free = out.wait_free;
  result.complete = out.complete;
  result.resumed = out.resumed;
  result.checkpointed = out.checkpointed;
  result.stats = out.stats;
  if (out.violation) {
    result.detail = *out.violation;
  } else if (!out.wait_free) {
    result.detail = "configuration cycle: implementation is not wait-free";
  } else if (!out.complete) {
    result.detail = "exploration exceeded limits";
  }
  result.ok = out.wait_free && out.complete && !out.violation;
  return result;
}

}  // namespace wfregs
