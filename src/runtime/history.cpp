#include "wfregs/runtime/history.hpp"

#include <sstream>
#include <stdexcept>

namespace wfregs {

int History::begin_op(ProcId proc, ObjectId object, PortId port, InvId inv,
                      std::size_t time) {
  OpRecord rec;
  rec.proc = proc;
  rec.object = object;
  rec.port = port;
  rec.inv = inv;
  rec.invoke_time = time;
  ops_.push_back(rec);
  return static_cast<int>(ops_.size()) - 1;
}

void History::end_op(int op_id, Val response, std::size_t time) {
  if (op_id < 0 || op_id >= static_cast<int>(ops_.size())) {
    throw std::out_of_range("History::end_op: bad op id");
  }
  auto& rec = ops_[static_cast<std::size_t>(op_id)];
  if (rec.response) {
    throw std::logic_error("History::end_op: op already completed");
  }
  rec.response = response;
  rec.response_time = time;
}

void History::truncate(std::size_t n) {
  if (n > ops_.size()) {
    throw std::out_of_range("History::truncate: size can only shrink");
  }
  ops_.resize(n);
}

void History::reopen_op(int op_id) {
  if (op_id < 0 || op_id >= static_cast<int>(ops_.size())) {
    throw std::out_of_range("History::reopen_op: bad op id");
  }
  auto& rec = ops_[static_cast<std::size_t>(op_id)];
  if (!rec.response) {
    throw std::logic_error("History::reopen_op: op is still pending");
  }
  rec.response.reset();
  rec.response_time = 0;
}

void History::rename(const std::function<ProcId(ProcId)>& proc_map,
                     const std::function<PortId(ObjectId, PortId)>& port_map) {
  for (OpRecord& rec : ops_) {
    rec.proc = proc_map(rec.proc);
    rec.port = port_map(rec.object, rec.port);
  }
}

std::vector<OpRecord> History::ops_on(ObjectId object) const {
  std::vector<OpRecord> out;
  for (const OpRecord& rec : ops_) {
    if (rec.object == object) out.push_back(rec);
  }
  return out;
}

std::string History::to_string() const {
  std::ostringstream out;
  for (std::size_t k = 0; k < ops_.size(); ++k) {
    const OpRecord& rec = ops_[k];
    out << "op" << k << ": proc " << rec.proc << " obj " << rec.object
        << " port " << rec.port << " inv " << rec.inv << " ["
        << rec.invoke_time << ", ";
    if (rec.response) {
      out << rec.response_time << "] -> " << *rec.response;
    } else {
      out << "...) pending";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace wfregs
