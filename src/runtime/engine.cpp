#include "wfregs/runtime/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "wfregs/runtime/reduction.hpp"

namespace wfregs {

std::size_t ConfigKeyHash::operator()(const ConfigKey& k) const {
  // FNV-1a over the serialized words.
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint64_t w : k.words) {
    h ^= w;
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h);
}

Engine::Engine(std::shared_ptr<const System> sys) : sys_(std::move(sys)) {
  if (!sys_) throw std::invalid_argument("Engine: null system");
  object_state_.resize(static_cast<std::size_t>(sys_->num_objects()), 0);
  persistent_.resize(static_cast<std::size_t>(sys_->num_objects()));
  access_count_.resize(static_cast<std::size_t>(sys_->num_objects()), 0);
  access_by_inv_.resize(static_cast<std::size_t>(sys_->num_objects()));
  for (ObjectId g = 0; g < sys_->num_objects(); ++g) {
    if (sys_->is_base(g)) {
      const auto& b = sys_->base(g);
      object_state_[static_cast<std::size_t>(g)] = b.initial;
      access_by_inv_[static_cast<std::size_t>(g)].resize(
          static_cast<std::size_t>(b.spec->num_invocations()), 0);
    } else {
      const auto& v = sys_->virt(g);
      const int slots = v.impl->persistent_slots();
      if (slots > 0) {
        auto& store = persistent_[static_cast<std::size_t>(g)];
        store.reserve(static_cast<std::size_t>(slots) *
                      v.impl->iface().ports());
        for (PortId port = 0; port < v.impl->iface().ports(); ++port) {
          for (const Val init : v.impl->persistent_initial()) {
            store.push_back(init);
          }
        }
      }
    }
  }
  procs_.resize(static_cast<std::size_t>(sys_->num_processes()));
  for (ProcId p = 0; p < sys_->num_processes(); ++p) {
    auto& proc = procs_[static_cast<std::size_t>(p)];
    const ProgramRef& code = sys_->toplevel_program(p);
    Frame top;
    top.code = code;
    top.locals.regs.resize(static_cast<std::size_t>(code->num_regs()), 0);
    top.env = sys_->toplevel_env(p);
    proc.stack.push_back(std::move(top));
    prepare(p);
  }
}

void Engine::check_proc(ProcId p) const {
  if (p < 0 || p >= static_cast<int>(procs_.size())) {
    throw std::out_of_range("Engine: process id out of range");
  }
}

std::vector<Handle> Engine::inner_env(const System::VirtualObject& v,
                                      PortId port) const {
  std::vector<Handle> env;
  env.reserve(v.inner.size());
  const auto decls = v.impl->objects();
  for (std::size_t k = 0; k < v.inner.size(); ++k) {
    env.push_back(
        Handle{v.inner[k], decls[k].port_of_outer[static_cast<std::size_t>(
                               port)]});
  }
  return env;
}

void Engine::prepare(ProcId p) {
  auto& proc = procs_[static_cast<std::size_t>(p)];
  // Guard against a single prepare() performing unbounded virtual-frame
  // traffic (e.g. mutually recursive implementations).
  constexpr int kMaxTransitions = 1000000;
  for (int guard = 0; guard < kMaxTransitions; ++guard) {
    if (proc.stack.empty()) {
      proc.finished = true;
      return;
    }
    Frame& top = proc.stack.back();
    const Action act = top.code->step(top.locals);
    if (const auto* inv = std::get_if<DoInvoke>(&act)) {
      if (inv->slot < 0 ||
          inv->slot >= static_cast<int>(top.env.size())) {
        throw std::logic_error("Engine: program " + top.code->name() +
                               " invoked unknown environment slot " +
                               std::to_string(inv->slot));
      }
      const Handle h = top.env[static_cast<std::size_t>(inv->slot)];
      if (h.port == kNoPort) {
        throw std::logic_error("Engine: program " + top.code->name() +
                               " accessed object " + std::to_string(h.gid) +
                               " through a port it does not hold");
      }
      if (sys_->is_base(h.gid)) {
        proc.pending = PendingAccess{h, inv->inv, inv->result_reg};
        return;
      }
      const auto& v = sys_->virt(h.gid);
      const ProgramRef& prog = v.impl->program(inv->inv, h.port);
      Frame child;
      child.code = prog;
      const int persist = v.impl->persistent_slots();
      child.locals.regs.resize(
          static_cast<std::size_t>(std::max(prog->num_regs(), persist)), 0);
      if (persist > 0) {
        child.persist_gid = h.gid;
        child.persist_port = h.port;
        child.persist_count = persist;
        const auto& store = persistent_[static_cast<std::size_t>(h.gid)];
        for (int k = 0; k < persist; ++k) {
          child.locals.regs[static_cast<std::size_t>(k)] =
              store[static_cast<std::size_t>(h.port) * persist +
                    static_cast<std::size_t>(k)];
        }
      }
      child.env = inner_env(v, h.port);
      child.result_reg_in_parent = inv->result_reg;
      child.op_id = history_.begin_op(p, h.gid, h.port, inv->inv, clock_++);
      proc.stack.push_back(std::move(child));
      continue;
    }
    const Val value = std::get<DoReturn>(act).value;
    const Frame finished = std::move(proc.stack.back());
    proc.stack.pop_back();
    if (finished.persist_count > 0) {
      auto& store = persistent_[static_cast<std::size_t>(finished.persist_gid)];
      for (int k = 0; k < finished.persist_count; ++k) {
        store[static_cast<std::size_t>(finished.persist_port) *
                  finished.persist_count +
              static_cast<std::size_t>(k)] =
            finished.locals.regs[static_cast<std::size_t>(k)];
      }
    }
    if (finished.op_id >= 0) {
      history_.end_op(finished.op_id, value, clock_++);
    }
    if (proc.stack.empty()) {
      proc.result = value;
      proc.finished = true;
      return;
    }
    proc.stack.back()
        .locals.regs[static_cast<std::size_t>(finished.result_reg_in_parent)] =
        value;
  }
  throw std::runtime_error(
      "Engine: prepare exceeded frame-transition budget (runaway nesting?)");
}

bool Engine::done(ProcId p) const {
  check_proc(p);
  return procs_[static_cast<std::size_t>(p)].finished;
}

bool Engine::all_done() const {
  for (const auto& proc : procs_) {
    if (!proc.finished) return false;
  }
  return true;
}

std::optional<Val> Engine::result(ProcId p) const {
  check_proc(p);
  return procs_[static_cast<std::size_t>(p)].result;
}

std::vector<ProcId> Engine::runnable() const {
  std::vector<ProcId> out;
  for (ProcId p = 0; p < static_cast<int>(procs_.size()); ++p) {
    if (!procs_[static_cast<std::size_t>(p)].finished) out.push_back(p);
  }
  return out;
}

int Engine::pending_choices(ProcId p) const {
  check_proc(p);
  const auto& proc = procs_[static_cast<std::size_t>(p)];
  if (!proc.pending) {
    throw std::logic_error("Engine::pending_choices: process " +
                           std::to_string(p) + " has no pending access");
  }
  const auto& pa = *proc.pending;
  const auto& b = sys_->base(pa.handle.gid);
  const auto set = b.spec->delta(
      object_state_[static_cast<std::size_t>(pa.handle.gid)],
      pa.handle.port, pa.inv);
  return static_cast<int>(set.size());
}

ObjectId Engine::pending_object(ProcId p) const {
  check_proc(p);
  const auto& proc = procs_[static_cast<std::size_t>(p)];
  if (!proc.pending) {
    throw std::logic_error("Engine::pending_object: process " +
                           std::to_string(p) + " has no pending access");
  }
  return proc.pending->handle.gid;
}

PortId Engine::pending_port(ProcId p) const {
  check_proc(p);
  const auto& proc = procs_[static_cast<std::size_t>(p)];
  if (!proc.pending) {
    throw std::logic_error("Engine::pending_port: process " +
                           std::to_string(p) + " has no pending access");
  }
  return proc.pending->handle.port;
}

InvId Engine::pending_inv(ProcId p) const {
  check_proc(p);
  const auto& proc = procs_[static_cast<std::size_t>(p)];
  if (!proc.pending) {
    throw std::logic_error("Engine::pending_inv: process " +
                           std::to_string(p) + " has no pending access");
  }
  return proc.pending->inv;
}

Engine::CommitInfo Engine::commit(ProcId p, int choice) {
  check_proc(p);
  auto& proc = procs_[static_cast<std::size_t>(p)];
  if (!proc.pending) {
    throw std::logic_error("Engine::commit: process " + std::to_string(p) +
                           " has no pending access");
  }
  const PendingAccess pa = *proc.pending;
  const auto& b = sys_->base(pa.handle.gid);
  const StateId state =
      object_state_[static_cast<std::size_t>(pa.handle.gid)];
  const auto set = b.spec->delta(state, pa.handle.port, pa.inv);
  if (set.empty()) {
    throw std::logic_error("Engine::commit: type " + b.spec->name() +
                           " has no transition for " +
                           b.spec->invocation_name(pa.inv) + " in state " +
                           b.spec->state_name(state));
  }
  if (choice < 0 || choice >= static_cast<int>(set.size())) {
    throw std::out_of_range("Engine::commit: choice " +
                            std::to_string(choice) + " out of range (" +
                            std::to_string(set.size()) + " transitions)");
  }
  const Transition t = set[static_cast<std::size_t>(choice)];
  object_state_[static_cast<std::size_t>(pa.handle.gid)] = t.next;
  ++time_;
  ++clock_;
  ++access_count_[static_cast<std::size_t>(pa.handle.gid)];
  ++access_by_inv_[static_cast<std::size_t>(pa.handle.gid)]
                  [static_cast<std::size_t>(pa.inv)];
  proc.stack.back().locals.regs[static_cast<std::size_t>(pa.result_reg)] =
      t.resp;
  proc.pending.reset();
  prepare(p);
  return CommitInfo{pa.handle.gid, pa.handle.port, pa.inv, t.resp};
}

StateId Engine::object_state(ObjectId g) const {
  if (!sys_->is_base(g)) {
    throw std::logic_error("Engine::object_state: not a base object");
  }
  return object_state_[static_cast<std::size_t>(g)];
}

std::size_t Engine::access_count(ObjectId g) const {
  if (g < 0 || g >= sys_->num_objects()) {
    throw std::out_of_range("Engine::access_count: object id out of range");
  }
  return access_count_[static_cast<std::size_t>(g)];
}

std::size_t Engine::access_count(ObjectId g, InvId i) const {
  if (g < 0 || g >= sys_->num_objects() || !sys_->is_base(g)) {
    throw std::out_of_range("Engine::access_count: bad base object id");
  }
  const auto& counts = access_by_inv_[static_cast<std::size_t>(g)];
  if (i < 0 || i >= static_cast<int>(counts.size())) {
    throw std::out_of_range("Engine::access_count: invocation out of range");
  }
  return counts[static_cast<std::size_t>(i)];
}

int Engine::stack_depth(ProcId p) const {
  check_proc(p);
  return static_cast<int>(procs_[static_cast<std::size_t>(p)].stack.size());
}

void Engine::emit_key(ConfigKey& key, const ProcessRenaming* renaming) const {
  auto& w = key.words;
  const auto mapped = [renaming](ObjectId g, PortId port) -> PortId {
    return renaming ? renaming->map_port(g, port) : port;
  };
  for (ObjectId g = 0; g < sys_->num_objects(); ++g) {
    if (sys_->is_base(g)) {
      w.push_back(
          static_cast<std::uint64_t>(object_state_[static_cast<std::size_t>(g)]));
    } else {
      const auto& block = persistent_[static_cast<std::size_t>(g)];
      const auto* old_port =
          renaming && !renaming->old_port[static_cast<std::size_t>(g)].empty()
              ? &renaming->old_port[static_cast<std::size_t>(g)]
              : nullptr;
      if (!old_port || block.empty()) {
        for (const Val v : block) w.push_back(static_cast<std::uint64_t>(v));
      } else {
        // Renamed view: the block of new port j is old port old_port[j]'s.
        const std::size_t persist = block.size() / old_port->size();
        for (const PortId old : *old_port) {
          for (std::size_t k = 0; k < persist; ++k) {
            w.push_back(static_cast<std::uint64_t>(
                block[static_cast<std::size_t>(old) * persist + k]));
          }
        }
      }
    }
  }
  for (std::size_t pp = 0; pp < procs_.size(); ++pp) {
    const Proc& proc =
        procs_[renaming
                   ? static_cast<std::size_t>(renaming->old_proc[pp])
                   : pp];
    w.push_back(proc.finished ? 1u : 0u);
    w.push_back(proc.result ? static_cast<std::uint64_t>(*proc.result) + 1
                            : 0u);
    if (proc.pending) {
      w.push_back(0xFEu);
      w.push_back(static_cast<std::uint64_t>(proc.pending->handle.gid));
      w.push_back(static_cast<std::uint64_t>(
          mapped(proc.pending->handle.gid, proc.pending->handle.port)));
      w.push_back(static_cast<std::uint64_t>(proc.pending->inv));
      w.push_back(static_cast<std::uint64_t>(proc.pending->result_reg));
    } else {
      w.push_back(0xFDu);
    }
    w.push_back(static_cast<std::uint64_t>(proc.stack.size()));
    for (const Frame& f : proc.stack) {
      // Program identity: code objects are immutable and shared, so the
      // pointer identifies the program within a run.
      w.push_back(reinterpret_cast<std::uintptr_t>(f.code.get()));
      w.push_back(static_cast<std::uint64_t>(f.locals.pc));
      w.push_back(static_cast<std::uint64_t>(f.locals.regs.size()));
      for (const Val v : f.locals.regs) {
        w.push_back(static_cast<std::uint64_t>(v));
      }
      w.push_back(static_cast<std::uint64_t>(f.result_reg_in_parent));
      // env is determined by (code, port context) but is cheap to include:
      for (const Handle& h : f.env) {
        w.push_back((static_cast<std::uint64_t>(h.gid) << 16) ^
                    static_cast<std::uint64_t>(mapped(h.gid, h.port) + 1));
      }
      // op_id is deliberately excluded: it indexes the history, which is
      // path data, not configuration state.
    }
  }
}

ConfigKey Engine::config_key() const {
  ConfigKey key;
  emit_key(key, nullptr);
  return key;
}

ConfigKey Engine::config_key(const ProcessRenaming& r) const {
  ConfigKey key;
  emit_key(key, &r);
  return key;
}

void Engine::apply_renaming(const ProcessRenaming& r) {
  std::vector<Proc> renamed(procs_.size());
  for (std::size_t p = 0; p < procs_.size(); ++p) {
    Proc& dst = renamed[static_cast<std::size_t>(r.proc_map[p])];
    dst = std::move(procs_[p]);
    if (dst.pending) {
      dst.pending->handle.port =
          r.map_port(dst.pending->handle.gid, dst.pending->handle.port);
    }
    for (Frame& f : dst.stack) {
      for (Handle& h : f.env) h.port = r.map_port(h.gid, h.port);
      if (f.persist_gid >= 0) {
        f.persist_port = r.map_port(f.persist_gid, f.persist_port);
      }
    }
  }
  procs_ = std::move(renamed);
  for (ObjectId g = 0; g < sys_->num_objects(); ++g) {
    if (sys_->is_base(g)) continue;
    auto& block = persistent_[static_cast<std::size_t>(g)];
    const auto& old_port = r.old_port[static_cast<std::size_t>(g)];
    if (block.empty() || old_port.empty()) continue;
    const std::size_t persist = block.size() / old_port.size();
    std::vector<Val> permuted(block.size());
    for (std::size_t port = 0; port < old_port.size(); ++port) {
      std::copy_n(block.begin() +
                      static_cast<std::ptrdiff_t>(
                          static_cast<std::size_t>(old_port[port]) * persist),
                  static_cast<std::ptrdiff_t>(persist),
                  permuted.begin() +
                      static_cast<std::ptrdiff_t>(port * persist));
    }
    block = std::move(permuted);
  }
  history_.rename(
      [&r](ProcId p) { return r.proc_map[static_cast<std::size_t>(p)]; },
      [&r](ObjectId g, PortId port) { return r.map_port(g, port); });
}

}  // namespace wfregs
