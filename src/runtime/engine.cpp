#include "wfregs/runtime/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "wfregs/runtime/config_intern.hpp"
#include "wfregs/runtime/reduction.hpp"

namespace wfregs {

std::size_t ConfigKeyHash::operator()(const ConfigKey& k) const {
  return static_cast<std::size_t>(config_hash_words(k.words));
}

Engine::Engine(std::shared_ptr<const System> sys) : sys_(std::move(sys)) {
  if (!sys_) throw std::invalid_argument("Engine: null system");
  {
    // Enumerate every reachable program in a construction-order-independent
    // way so the dense ids (and hence config keys) are stable across
    // processes: toplevels first, then implementation programs by
    // (object, invocation, port).
    auto ids =
        std::make_shared<std::unordered_map<const ProgramCode*,
                                            std::uint64_t>>();
    std::uint64_t next = 0;
    const auto assign = [&ids, &next](const ProgramCode* code) {
      if (code && ids->emplace(code, next).second) ++next;
    };
    for (ProcId p = 0; p < sys_->num_processes(); ++p) {
      assign(sys_->toplevel_program(p).get());
    }
    for (ObjectId g = 0; g < sys_->num_objects(); ++g) {
      if (sys_->is_base(g)) continue;
      const auto& impl = *sys_->virt(g).impl;
      for (InvId inv = 0; inv < impl.iface().num_invocations(); ++inv) {
        for (PortId port = 0; port < impl.iface().ports(); ++port) {
          if (impl.has_program(inv, port)) {
            assign(impl.program(inv, port).get());
          }
        }
      }
    }
    program_ids_ = std::move(ids);
  }
  compiled_.resize(static_cast<std::size_t>(sys_->num_objects()), nullptr);
  object_state_.resize(static_cast<std::size_t>(sys_->num_objects()), 0);
  persistent_.resize(static_cast<std::size_t>(sys_->num_objects()));
  access_count_.resize(static_cast<std::size_t>(sys_->num_objects()), 0);
  access_by_inv_.resize(static_cast<std::size_t>(sys_->num_objects()));
  for (ObjectId g = 0; g < sys_->num_objects(); ++g) {
    if (sys_->is_base(g)) {
      const auto& b = sys_->base(g);
      compiled_[static_cast<std::size_t>(g)] = b.compiled.get();
      object_state_[static_cast<std::size_t>(g)] = b.initial;
      access_by_inv_[static_cast<std::size_t>(g)].resize(
          static_cast<std::size_t>(b.spec->num_invocations()), 0);
    } else {
      const auto& v = sys_->virt(g);
      const int slots = v.impl->persistent_slots();
      if (slots > 0) {
        auto& store = persistent_[static_cast<std::size_t>(g)];
        store.reserve(static_cast<std::size_t>(slots) *
                      v.impl->iface().ports());
        for (PortId port = 0; port < v.impl->iface().ports(); ++port) {
          for (const Val init : v.impl->persistent_initial()) {
            store.push_back(init);
          }
        }
      }
    }
  }
  procs_.resize(static_cast<std::size_t>(sys_->num_processes()));
  for (ProcId p = 0; p < sys_->num_processes(); ++p) {
    auto& proc = procs_[static_cast<std::size_t>(p)];
    const ProgramRef& code = sys_->toplevel_program(p);
    Frame top;
    top.code = code;
    top.locals.regs.resize(static_cast<std::size_t>(code->num_regs()), 0);
    top.env = sys_->toplevel_env(p);
    proc.stack.push_back(std::move(top));
    prepare(p);
  }
}

void Engine::check_proc(ProcId p) const {
  if (p < 0 || p >= static_cast<int>(procs_.size())) {
    throw std::out_of_range("Engine: process id out of range");
  }
}

std::vector<Handle> Engine::inner_env(const System::VirtualObject& v,
                                      PortId port) const {
  std::vector<Handle> env;
  env.reserve(v.inner.size());
  const auto decls = v.impl->objects();
  for (std::size_t k = 0; k < v.inner.size(); ++k) {
    env.push_back(
        Handle{v.inner[k], decls[k].port_of_outer[static_cast<std::size_t>(
                               port)]});
  }
  return env;
}

void Engine::prepare(ProcId p, UndoRecord* undo) {
  auto& proc = procs_[static_cast<std::size_t>(p)];
  // Guard against a single prepare() performing unbounded virtual-frame
  // traffic (e.g. mutually recursive implementations).
  constexpr int kMaxTransitions = 1000000;
  for (int guard = 0; guard < kMaxTransitions; ++guard) {
    if (proc.stack.empty()) {
      proc.finished = true;
      return;
    }
    Frame& top = proc.stack.back();
    const Action act = top.code->step(top.locals);
    if (const auto* inv = std::get_if<DoInvoke>(&act)) {
      if (inv->slot < 0 ||
          inv->slot >= static_cast<int>(top.env.size())) {
        throw std::logic_error("Engine: program " + top.code->name() +
                               " invoked unknown environment slot " +
                               std::to_string(inv->slot));
      }
      const Handle h = top.env[static_cast<std::size_t>(inv->slot)];
      if (h.port == kNoPort) {
        throw std::logic_error("Engine: program " + top.code->name() +
                               " accessed object " + std::to_string(h.gid) +
                               " through a port it does not hold");
      }
      if (sys_->is_base(h.gid)) {
        // Validate the invocation id once, here: the explorers then read
        // delta through CompiledType::delta_unchecked on every edge (state
        // and port are valid by construction).
        const CompiledType& ct = *compiled_[static_cast<std::size_t>(h.gid)];
        if (inv->inv < 0 || inv->inv >= ct.num_invocations()) {
          throw std::out_of_range("Engine: program " + top.code->name() +
                                  " invoked out-of-range invocation " +
                                  std::to_string(inv->inv) + " on type " +
                                  ct.name());
        }
        proc.pending = PendingAccess{h, inv->inv, inv->result_reg};
        return;
      }
      const auto& v = sys_->virt(h.gid);
      const ProgramRef& prog = v.impl->program(inv->inv, h.port);
      Frame child;
      child.code = prog;
      const int persist = v.impl->persistent_slots();
      child.locals.regs.resize(
          static_cast<std::size_t>(std::max(prog->num_regs(), persist)), 0);
      if (persist > 0) {
        child.persist_gid = h.gid;
        child.persist_port = h.port;
        child.persist_count = persist;
        const auto& store = persistent_[static_cast<std::size_t>(h.gid)];
        for (int k = 0; k < persist; ++k) {
          child.locals.regs[static_cast<std::size_t>(k)] =
              store[static_cast<std::size_t>(h.port) * persist +
                    static_cast<std::size_t>(k)];
        }
      }
      child.env = inner_env(v, h.port);
      child.result_reg_in_parent = inv->result_reg;
      child.op_id = history_.begin_op(p, h.gid, h.port, inv->inv, clock_++);
      proc.stack.push_back(std::move(child));
      continue;
    }
    const Val value = std::get<DoReturn>(act).value;
    const Frame finished = std::move(proc.stack.back());
    proc.stack.pop_back();
    if (finished.persist_count > 0) {
      auto& store = persistent_[static_cast<std::size_t>(finished.persist_gid)];
      const std::size_t offset =
          static_cast<std::size_t>(finished.persist_port) *
          static_cast<std::size_t>(finished.persist_count);
      if (undo) {
        auto& pu = undo->persist.emplace_back();
        pu.gid = finished.persist_gid;
        pu.offset = offset;
        pu.old.assign(store.begin() + static_cast<std::ptrdiff_t>(offset),
                      store.begin() + static_cast<std::ptrdiff_t>(
                                          offset + static_cast<std::size_t>(
                                                       finished.persist_count)));
      }
      for (int k = 0; k < finished.persist_count; ++k) {
        store[offset + static_cast<std::size_t>(k)] =
            finished.locals.regs[static_cast<std::size_t>(k)];
      }
    }
    if (finished.op_id >= 0) {
      // Ops begun during this step (id >= the journal's history_size) are
      // removed wholesale by truncate; only older ops need reopening.
      if (undo &&
          static_cast<std::size_t>(finished.op_id) < undo->history_size) {
        undo->reopened_ops.push_back(finished.op_id);
      }
      history_.end_op(finished.op_id, value, clock_++);
    }
    if (proc.stack.empty()) {
      proc.result = value;
      proc.finished = true;
      return;
    }
    proc.stack.back()
        .locals.regs[static_cast<std::size_t>(finished.result_reg_in_parent)] =
        value;
  }
  throw std::runtime_error(
      "Engine: prepare exceeded frame-transition budget (runaway nesting?)");
}

bool Engine::done(ProcId p) const {
  check_proc(p);
  return procs_[static_cast<std::size_t>(p)].finished;
}

bool Engine::all_done() const {
  for (const auto& proc : procs_) {
    if (!proc.finished) return false;
  }
  return true;
}

std::optional<Val> Engine::result(ProcId p) const {
  check_proc(p);
  return procs_[static_cast<std::size_t>(p)].result;
}

std::vector<ProcId> Engine::runnable() const {
  std::vector<ProcId> out;
  for (ProcId p = 0; p < static_cast<int>(procs_.size()); ++p) {
    if (!procs_[static_cast<std::size_t>(p)].finished) out.push_back(p);
  }
  return out;
}

int Engine::pending_choices(ProcId p) const {
  check_proc(p);
  const auto& proc = procs_[static_cast<std::size_t>(p)];
  if (!proc.pending) {
    throw std::logic_error("Engine::pending_choices: process " +
                           std::to_string(p) + " has no pending access");
  }
  const auto& pa = *proc.pending;
  const auto set =
      compiled_[static_cast<std::size_t>(pa.handle.gid)]->delta_unchecked(
          object_state_[static_cast<std::size_t>(pa.handle.gid)],
          pa.handle.port, pa.inv);
  return static_cast<int>(set.size());
}

ObjectId Engine::pending_object(ProcId p) const {
  check_proc(p);
  const auto& proc = procs_[static_cast<std::size_t>(p)];
  if (!proc.pending) {
    throw std::logic_error("Engine::pending_object: process " +
                           std::to_string(p) + " has no pending access");
  }
  return proc.pending->handle.gid;
}

PortId Engine::pending_port(ProcId p) const {
  check_proc(p);
  const auto& proc = procs_[static_cast<std::size_t>(p)];
  if (!proc.pending) {
    throw std::logic_error("Engine::pending_port: process " +
                           std::to_string(p) + " has no pending access");
  }
  return proc.pending->handle.port;
}

InvId Engine::pending_inv(ProcId p) const {
  check_proc(p);
  const auto& proc = procs_[static_cast<std::size_t>(p)];
  if (!proc.pending) {
    throw std::logic_error("Engine::pending_inv: process " +
                           std::to_string(p) + " has no pending access");
  }
  return proc.pending->inv;
}

Engine::CommitInfo Engine::commit(ProcId p, int choice) {
  return commit_impl(p, choice, nullptr);
}

Engine::CommitInfo Engine::apply(ProcId p, int choice, UndoRecord& undo) {
  return commit_impl(p, choice, &undo);
}

Engine::CommitInfo Engine::commit_impl(ProcId p, int choice,
                                       UndoRecord* undo) {
  check_proc(p);
  auto& proc = procs_[static_cast<std::size_t>(p)];
  if (!proc.pending) {
    throw std::logic_error("Engine::commit: process " + std::to_string(p) +
                           " has no pending access");
  }
  const PendingAccess pa = *proc.pending;
  const CompiledType& ct = *compiled_[static_cast<std::size_t>(pa.handle.gid)];
  const StateId state =
      object_state_[static_cast<std::size_t>(pa.handle.gid)];
  const auto set = ct.delta_unchecked(state, pa.handle.port, pa.inv);
  if (set.empty()) {
    const auto& b = sys_->base(pa.handle.gid);
    throw std::logic_error("Engine::commit: type " + b.spec->name() +
                           " has no transition for " +
                           b.spec->invocation_name(pa.inv) + " in state " +
                           b.spec->state_name(state));
  }
  if (choice < 0 || choice >= static_cast<int>(set.size())) {
    throw std::out_of_range("Engine::commit: choice " +
                            std::to_string(choice) + " out of range (" +
                            std::to_string(set.size()) + " transitions)");
  }
  if (undo) {
    undo->p = p;
    undo->gid = pa.handle.gid;
    undo->inv = pa.inv;
    undo->saved_state = state;
    undo->saved_time = time_;
    undo->saved_clock = clock_;
    undo->history_size = history_.size();
    undo->saved_proc = proc;  // full pre-step snapshot, before any mutation
    undo->persist.clear();
    undo->reopened_ops.clear();
  }
  const Transition t = set[static_cast<std::size_t>(choice)];
  object_state_[static_cast<std::size_t>(pa.handle.gid)] = t.next;
  ++time_;
  ++clock_;
  ++access_count_[static_cast<std::size_t>(pa.handle.gid)];
  ++access_by_inv_[static_cast<std::size_t>(pa.handle.gid)]
                  [static_cast<std::size_t>(pa.inv)];
  proc.stack.back().locals.regs[static_cast<std::size_t>(pa.result_reg)] =
      t.resp;
  proc.pending.reset();
  prepare(p, undo);
  return CommitInfo{pa.handle.gid, pa.handle.port, pa.inv, t.resp};
}

void Engine::revert(UndoRecord& undo) {
  if (undo.p < 0) {
    throw std::logic_error("Engine::revert: record was never filled");
  }
  object_state_[static_cast<std::size_t>(undo.gid)] = undo.saved_state;
  --access_count_[static_cast<std::size_t>(undo.gid)];
  --access_by_inv_[static_cast<std::size_t>(undo.gid)]
                  [static_cast<std::size_t>(undo.inv)];
  time_ = undo.saved_time;
  clock_ = undo.saved_clock;
  // Persistent blocks, newest write-back first (a block written twice in
  // one step ends at its original values).
  for (auto it = undo.persist.rbegin(); it != undo.persist.rend(); ++it) {
    auto& store = persistent_[static_cast<std::size_t>(it->gid)];
    std::copy(it->old.begin(), it->old.end(),
              store.begin() + static_cast<std::ptrdiff_t>(it->offset));
  }
  history_.truncate(undo.history_size);
  for (const int op_id : undo.reopened_ops) history_.reopen_op(op_id);
  procs_[static_cast<std::size_t>(undo.p)] = std::move(undo.saved_proc);
  undo.p = -1;  // mark consumed (saved_proc was moved out)
}

StateId Engine::object_state(ObjectId g) const {
  if (!sys_->is_base(g)) {
    throw std::logic_error("Engine::object_state: not a base object");
  }
  return object_state_[static_cast<std::size_t>(g)];
}

std::size_t Engine::access_count(ObjectId g) const {
  if (g < 0 || g >= sys_->num_objects()) {
    throw std::out_of_range("Engine::access_count: object id out of range");
  }
  return access_count_[static_cast<std::size_t>(g)];
}

std::size_t Engine::access_count(ObjectId g, InvId i) const {
  if (g < 0 || g >= sys_->num_objects() || !sys_->is_base(g)) {
    throw std::out_of_range("Engine::access_count: bad base object id");
  }
  const auto& counts = access_by_inv_[static_cast<std::size_t>(g)];
  if (i < 0 || i >= static_cast<int>(counts.size())) {
    throw std::out_of_range("Engine::access_count: invocation out of range");
  }
  return counts[static_cast<std::size_t>(i)];
}

int Engine::stack_depth(ProcId p) const {
  check_proc(p);
  return static_cast<int>(procs_[static_cast<std::size_t>(p)].stack.size());
}

void Engine::emit_key(ConfigKey& key, const ProcessRenaming* renaming) const {
  auto& w = key.words;
  const auto mapped = [renaming](ObjectId g, PortId port) -> PortId {
    return renaming ? renaming->map_port(g, port) : port;
  };
  for (ObjectId g = 0; g < sys_->num_objects(); ++g) {
    if (sys_->is_base(g)) {
      w.push_back(
          static_cast<std::uint64_t>(object_state_[static_cast<std::size_t>(g)]));
    } else {
      const auto& block = persistent_[static_cast<std::size_t>(g)];
      const auto* old_port =
          renaming && !renaming->old_port[static_cast<std::size_t>(g)].empty()
              ? &renaming->old_port[static_cast<std::size_t>(g)]
              : nullptr;
      if (!old_port || block.empty()) {
        for (const Val v : block) w.push_back(static_cast<std::uint64_t>(v));
      } else {
        // Renamed view: the block of new port j is old port old_port[j]'s.
        const std::size_t persist = block.size() / old_port->size();
        for (const PortId old : *old_port) {
          for (std::size_t k = 0; k < persist; ++k) {
            w.push_back(static_cast<std::uint64_t>(
                block[static_cast<std::size_t>(old) * persist + k]));
          }
        }
      }
    }
  }
  for (std::size_t pp = 0; pp < procs_.size(); ++pp) {
    const Proc& proc =
        procs_[renaming
                   ? static_cast<std::size_t>(renaming->old_proc[pp])
                   : pp];
    w.push_back(proc.finished ? 1u : 0u);
    w.push_back(proc.result ? static_cast<std::uint64_t>(*proc.result) + 1
                            : 0u);
    if (proc.pending) {
      w.push_back(0xFEu);
      w.push_back(static_cast<std::uint64_t>(proc.pending->handle.gid));
      w.push_back(static_cast<std::uint64_t>(
          mapped(proc.pending->handle.gid, proc.pending->handle.port)));
      w.push_back(static_cast<std::uint64_t>(proc.pending->inv));
      w.push_back(static_cast<std::uint64_t>(proc.pending->result_reg));
    } else {
      w.push_back(0xFDu);
    }
    w.push_back(static_cast<std::uint64_t>(proc.stack.size()));
    for (const Frame& f : proc.stack) {
      // Program identity: code objects are immutable and shared, so each is
      // identified by its construction-order-stable dense id (not its
      // pointer -- keys must match across processes for checkpoint resume).
      w.push_back(program_ids_->at(f.code.get()));
      w.push_back(static_cast<std::uint64_t>(f.locals.pc));
      w.push_back(static_cast<std::uint64_t>(f.locals.regs.size()));
      for (const Val v : f.locals.regs) {
        w.push_back(static_cast<std::uint64_t>(v));
      }
      w.push_back(static_cast<std::uint64_t>(f.result_reg_in_parent));
      // env is determined by (code, port context) but is cheap to include:
      for (const Handle& h : f.env) {
        w.push_back((static_cast<std::uint64_t>(h.gid) << 16) ^
                    static_cast<std::uint64_t>(mapped(h.gid, h.port) + 1));
      }
      // op_id is deliberately excluded: it indexes the history, which is
      // path data, not configuration state.
    }
  }
}

ConfigKey Engine::config_key() const {
  ConfigKey key;
  emit_key(key, nullptr);
  return key;
}

ConfigKey Engine::config_key(const ProcessRenaming& r) const {
  ConfigKey key;
  emit_key(key, &r);
  return key;
}

void Engine::config_key_into(ConfigKey& key) const {
  key.words.clear();
  emit_key(key, nullptr);
}

void Engine::config_key_into(ConfigKey& key, const ProcessRenaming& r) const {
  key.words.clear();
  emit_key(key, &r);
}

void Engine::apply_renaming(const ProcessRenaming& r) {
  std::vector<Proc> renamed(procs_.size());
  for (std::size_t p = 0; p < procs_.size(); ++p) {
    Proc& dst = renamed[static_cast<std::size_t>(r.proc_map[p])];
    dst = std::move(procs_[p]);
    if (dst.pending) {
      dst.pending->handle.port =
          r.map_port(dst.pending->handle.gid, dst.pending->handle.port);
    }
    for (Frame& f : dst.stack) {
      for (Handle& h : f.env) h.port = r.map_port(h.gid, h.port);
      if (f.persist_gid >= 0) {
        f.persist_port = r.map_port(f.persist_gid, f.persist_port);
      }
    }
  }
  procs_ = std::move(renamed);
  for (ObjectId g = 0; g < sys_->num_objects(); ++g) {
    if (sys_->is_base(g)) continue;
    auto& block = persistent_[static_cast<std::size_t>(g)];
    const auto& old_port = r.old_port[static_cast<std::size_t>(g)];
    if (block.empty() || old_port.empty()) continue;
    const std::size_t persist = block.size() / old_port.size();
    std::vector<Val> permuted(block.size());
    for (std::size_t port = 0; port < old_port.size(); ++port) {
      std::copy_n(block.begin() +
                      static_cast<std::ptrdiff_t>(
                          static_cast<std::size_t>(old_port[port]) * persist),
                  static_cast<std::ptrdiff_t>(persist),
                  permuted.begin() +
                      static_cast<std::ptrdiff_t>(port * persist));
    }
    block = std::move(permuted);
  }
  history_.rename(
      [&r](ProcId p) { return r.proc_map[static_cast<std::size_t>(p)]; },
      [&r](ObjectId g, PortId port) { return r.map_port(g, port); });
}

}  // namespace wfregs
