// The lock-free parallel explorer: the engine behind explore_parallel for
// every multi-threaded run.
//
// Same two-phase architecture as the retained locked engine (see
// explorer_parallel.cpp and parallel_common.hpp for discovery, canonical
// replay and the DP), with every shared mutable structure replaced by a
// wfregs/concurrent primitive:
//
//   * MEMO TABLE: one ConcurrentInterner<PNode> instead of 64 mutex-striped
//     (interner, arena) shards.  A child claim is a CAS slot reservation
//     plus a two-phase publication; Ref.inserted is true for exactly one
//     claimer per configuration, which is what keeps the `configs` counter
//     and the expanded-exactly-once discipline identical to the locked
//     engine.  The claiming worker remains the node's only edge-list
//     writer, published to the post-passes by thread join exactly as
//     before.
//   * FRONTIER: per-worker Chase-Lev deques (WsDeque) instead of mutexed
//     std::deques.  The owner pushes and pops at the bottom (LIFO, the
//     DFS-like order that keeps engine repositioning cheap); thieves steal
//     the top (FIFO -- oldest, largest subtrees), the same discipline the
//     locks used to enforce.  Items are heap-allocated (the deque's cells
//     are atomic pointers); ownership transfers with a successful
//     pop/steal, and items stranded by an early stop are drained after
//     join.
//   * STATS: per-worker edges/terminals/contention counters flow through
//     the wait-free StatsSnapshot aggregator instead of shared atomics --
//     workers publish wait-free, and any observer (here: the post-join
//     aggregation, which is quiescent and therefore exact) reads a
//     consistent cut.  The `configs_` admission counter is the one
//     deliberate exception: the max_configs limit requires a single
//     exactly-once sequence of admission tickets, so it stays a (padded)
//     global fetch_add -- the same trade the locked engine made.
//
// The determinism contract is inherited wholesale: discovery populates the
// same node graph in whatever order the race resolves, and the
// single-threaded canonical replay afterwards recomputes every counter in
// sequential order, so completed runs are bit-identical to explore() at any
// thread count.  Contention (CAS retries, steal traffic, snapshot
// invalidations) is reported in ExploreOutcome::contention -- observational
// only, never part of the contract.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "parallel_common.hpp"
#include "wfregs/concurrent/cacheline.hpp"
#include "wfregs/concurrent/contention.hpp"
#include "wfregs/concurrent/interner.hpp"
#include "wfregs/concurrent/snapshot.hpp"
#include "wfregs/concurrent/ws_deque.hpp"
#include "wfregs/runtime/config_intern.hpp"
#include "wfregs/runtime/explorer.hpp"

namespace wfregs {

namespace {

using concurrent::ContentionCounters;
using concurrent::kCacheLine;
using parallel_detail::PathNode;
using parallel_detail::PathStep;
using parallel_detail::PEdge;
using parallel_detail::PNode;
using parallel_detail::WorkerState;
using parallel_detail::WorkItem;

// StatsSnapshot counter layout (one writer slot per worker).
constexpr std::size_t kCtrEdges = 0;
constexpr std::size_t kCtrTerminals = 1;
constexpr std::size_t kCtrCasRetries = 2;
constexpr std::size_t kCtrStealAttempts = 3;
constexpr std::size_t kCtrSteals = 4;
constexpr std::size_t kNumCounters = 5;

class LockFreeParallelExplorer {
 public:
  LockFreeParallelExplorer(const ExploreOptions& options,
                           const TerminalCheck& check, int threads)
      : limits_(options.limits),
        options_(options),
        check_(check),
        threads_(threads),
        stats_(static_cast<std::size_t>(threads), kNumCounters) {
    queues_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      queues_.push_back(
          std::make_unique<concurrent::WsDeque<WorkItem>>(256));
    }
  }

  ExploreOutcome run(const Engine& root) {
    const System& sys = root.system();
    if (options_.reduction != Reduction::kNone) {
      ctx_ = std::make_unique<ReductionContext>(sys, options_.reduction,
                                                options_.independence);
    }
    num_objects_ = sys.num_objects();
    if (limits_.track_access_bounds) {
      inv_offset_ = parallel_detail::build_inv_offset(sys, num_objects_);
    }
    if (limits_.max_configs == 0 || limits_.max_depth < 0) {
      // The sequential explorer aborts before visiting even the root.
      ExploreOutcome out;
      out.complete = false;
      return out;
    }
    // Canonicalize the root once; every worker's engine starts as a copy of
    // this representative, and all path chains are rooted at it.
    canonical_root_.emplace(root);
    std::uint64_t root_sleep = 0;
    PNode* root_node = nullptr;
    {
      ConfigKey key;
      if (ctx_) {
        ctx_->canonical_node_key_into(*canonical_root_, root_sleep, key,
                                      nullptr);
      } else {
        canonical_root_->config_key_into(key);
      }
      ContentionCounters scratch;
      root_node =
          interner_
              .intern(key.words, config_hash_words(key.words), scratch)
              .value;
    }
    configs_.store(1, std::memory_order_relaxed);
    pending_.store(1, std::memory_order_relaxed);
    // Single-threaded here, so the owner-only push is ours to make.
    queues_[0]->push(new WorkItem{root_node, nullptr, 0, root_sleep});

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads_));
    for (int t = 0; t < threads_; ++t) {
      workers.emplace_back(&LockFreeParallelExplorer::worker, this, t);
    }
    for (std::thread& th : workers) th.join();
    drain_stranded_items();
    if (exception_) std::rethrow_exception(exception_);

    ExploreOutcome out;
    // Workers joined: the collect is quiescent, hence retry-free and exact.
    const std::vector<std::uint64_t> totals =
        stats_.collect(&out.contention);
    out.stats.configs = configs_.load(std::memory_order_relaxed);
    out.stats.edges = static_cast<std::size_t>(totals[kCtrEdges]);
    out.stats.terminals = static_cast<std::size_t>(totals[kCtrTerminals]);
    out.stats.interned_configs = interner_.size();
    out.contention.cas_retries += totals[kCtrCasRetries];
    out.contention.steal_attempts += totals[kCtrStealAttempts];
    out.contention.steals += totals[kCtrSteals];
    if (incomplete_.load(std::memory_order_relaxed)) {
      out.complete = false;
      return out;
    }
    if (stop_.load(std::memory_order_relaxed)) {
      // Early stop at a violating terminal: counters are partial lower
      // bounds and the violation is whichever worker surfaced one first.
      std::lock_guard<std::mutex> lk(violation_mu_);
      out.violation = early_violation_;
      return out;
    }
    parallel_detail::replay_and_dp(root_node, limits_, num_objects_,
                                   inv_offset_, out);
    return out;
  }

 private:
  /// The per-worker Host of parallel_detail::expand_node (see the hook
  /// table there): edge/terminal counts go to the worker's wait-free
  /// snapshot writer, child claims to the lock-free interner.
  struct Host {
    LockFreeParallelExplorer* self;
    int wid;
    concurrent::StatsSnapshot::Writer writer;
    ContentionCounters counters;

    ReductionContext* ctx() const { return self->ctx_.get(); }
    bool stopped() const {
      return self->stop_.load(std::memory_order_acquire);
    }
    void count_edge() { writer.add(kCtrEdges, 1); }
    void on_terminal(PNode* node, Engine& e) {
      writer.add(kCtrTerminals, 1);
      self->on_terminal(node, e);
    }
    bool claim_child(const WorkItem& item, std::uint64_t child_sleep,
                     const ConfigKey& key, std::uint64_t hash,
                     ObjectId object, InvId inv, ProcId p, int choice,
                     int renaming) {
      return self->claim_child(*this, item, child_sleep, key, hash, object,
                               inv, p, choice, renaming);
    }

    /// Publishes everything counted so far as one snapshot record.
    void flush() {
      writer.set(kCtrCasRetries, counters.cas_retries);
      writer.set(kCtrStealAttempts, counters.steal_attempts);
      writer.set(kCtrSteals, counters.steals);
      writer.publish();
    }
  };

  void worker(int wid) {
    WorkerState ws;
    Host host{this, wid, stats_.writer(static_cast<std::size_t>(wid)), {}};
    try {
      int idle_rounds = 0;
      while (!stop_.load(std::memory_order_acquire)) {
        if (limits_.cancel &&
            limits_.cancel->load(std::memory_order_relaxed)) {
          incomplete_.store(true, std::memory_order_relaxed);
          stop_.store(true, std::memory_order_release);
          break;
        }
        std::unique_ptr<WorkItem> item(pop(wid, host.counters));
        if (!item) {
          if (pending_.load(std::memory_order_acquire) == 0) break;
          host.flush();  // keep steal traffic visible while idling
          if (++idle_rounds > 64) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          } else {
            std::this_thread::yield();
          }
          continue;
        }
        idle_rounds = 0;
        if (!ws.engine) ws.engine.emplace(*canonical_root_);
        parallel_detail::switch_to(ctx_.get(), ws, *item);
        parallel_detail::expand_node(host, ws, *item);
        pending_.fetch_sub(1, std::memory_order_acq_rel);
        host.flush();
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(violation_mu_);
        if (!exception_) exception_ = std::current_exception();
      }
      stop_.store(true, std::memory_order_release);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
    host.flush();
  }

  /// LIFO from the worker's own deque, then FIFO steals round-robin from
  /// the other workers'.  The returned item's ownership transfers to the
  /// caller.
  WorkItem* pop(int wid, ContentionCounters& c) {
    if (WorkItem* item = queues_[static_cast<std::size_t>(wid)]->pop()) {
      return item;
    }
    for (int k = 1; k < threads_; ++k) {
      concurrent::WsDeque<WorkItem>& victim =
          *queues_[static_cast<std::size_t>((wid + k) % threads_)];
      if (WorkItem* item = victim.steal(c)) return item;
    }
    return nullptr;
  }

  void on_terminal(PNode* node, Engine& e) {
    node->terminal = true;
    if (check_) {
      if (auto violation = check_(e)) {
        node->violation = std::move(violation);
        {
          std::lock_guard<std::mutex> lk(violation_mu_);
          if (!early_violation_) early_violation_ = node->violation;
        }
        if (limits_.stop_at_violation) {
          stop_.store(true, std::memory_order_release);
        }
      }
    }
  }

  /// Claims a discovered child (already canonicalized under reduction) in
  /// the lock-free interner, records the edge, and enqueues the expansion
  /// on the claiming worker's own deque when this call won the publication
  /// race.  Returns false on a limit abort.
  bool claim_child(Host& host, const WorkItem& item,
                   std::uint64_t child_sleep, const ConfigKey& key,
                   std::uint64_t hash, ObjectId object, InvId inv, ProcId p,
                   int choice, int renaming) {
    const auto ref = interner_.intern(key.words, hash, host.counters);
    item.node->edges.push_back(PEdge{ref.value, object, inv});
    if (ref.inserted) {
      const std::size_t count =
          configs_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (count > limits_.max_configs || item.depth + 1 > limits_.max_depth ||
          (limits_.cancel &&
           limits_.cancel->load(std::memory_order_relaxed))) {
        incomplete_.store(true, std::memory_order_relaxed);
        stop_.store(true, std::memory_order_release);
        return false;
      }
      pending_.fetch_add(1, std::memory_order_acq_rel);
      auto link = std::make_shared<const PathNode>(
          PathNode{PathStep{p, choice, renaming}, item.path});
      queues_[static_cast<std::size_t>(host.wid)]->push(new WorkItem{
          ref.value, std::move(link), item.depth + 1, child_sleep});
    }
    return true;
  }

  /// An early stop strands unexpanded items in the deques; after join we
  /// are single-threaded, so owner pops reclaim them all.
  void drain_stranded_items() {
    for (auto& q : queues_) {
      while (WorkItem* item = q->pop()) delete item;
    }
  }

  const ExploreLimits limits_;
  const ExploreOptions options_;
  const TerminalCheck& check_;
  const int threads_;
  /// Non-null iff options_.reduction != kNone; built in run() once the
  /// system is known.
  std::unique_ptr<ReductionContext> ctx_;
  int num_objects_ = 0;
  std::vector<std::size_t> inv_offset_;
  /// The canonicalized root configuration; workers copy it lazily on their
  /// first item.
  std::optional<Engine> canonical_root_;
  concurrent::ConcurrentInterner<PNode> interner_;
  std::vector<std::unique_ptr<concurrent::WsDeque<WorkItem>>> queues_;
  concurrent::StatsSnapshot stats_;
  /// Admission tickets for the max_configs limit: deliberately ONE global
  /// padded atomic (see the file comment).
  alignas(kCacheLine) std::atomic<std::size_t> configs_{0};
  alignas(kCacheLine) std::atomic<std::size_t> pending_{0};
  alignas(kCacheLine) std::atomic<bool> stop_{false};
  std::atomic<bool> incomplete_{false};
  std::mutex violation_mu_;  ///< guards early_violation_ and exception_
  std::optional<std::string> early_violation_;
  std::exception_ptr exception_;
};

}  // namespace

ExploreOutcome explore_parallel_lockfree(const Engine& root,
                                         const TerminalCheck& check,
                                         const ExploreOptions& options,
                                         int n_threads) {
  if (options.storage.enabled()) {
    // Out-of-core runs route to the sequential storage-backed engine; the
    // lock-free explorer is contractually bit-identical to explore(), so
    // only the thread count changes.
    return explore(root, options, check);
  }
  int threads = n_threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw ? static_cast<int>(hw) : 1;
  }
  LockFreeParallelExplorer impl(options, check, threads);
  return impl.run(root);
}

}  // namespace wfregs
