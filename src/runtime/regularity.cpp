#include "wfregs/runtime/regularity.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "wfregs/runtime/history_check.hpp"
#include "wfregs/runtime/system.hpp"

namespace wfregs {

RegularityResult check_regular(const std::vector<OpRecord>& ops, int values,
                               int initial) {
  if (values < 2) {
    throw std::invalid_argument("check_regular: values >= 2");
  }
  if (initial < 0 || initial >= values) {
    throw std::out_of_range("check_regular: initial out of range");
  }
  std::vector<const OpRecord*> writes;
  std::vector<const OpRecord*> reads;
  for (const OpRecord& op : ops) {
    if (op.inv == 0) {
      reads.push_back(&op);
    } else {
      writes.push_back(&op);
    }
  }
  std::ranges::sort(writes, [](const OpRecord* a, const OpRecord* b) {
    return a->invoke_time < b->invoke_time;
  });
  // Single writer: writes must not overlap.
  for (std::size_t k = 1; k < writes.size(); ++k) {
    const auto* prev = writes[k - 1];
    if (!prev->response || prev->response_time > writes[k]->invoke_time) {
      RegularityResult r;
      r.detail = "overlapping writes: not a single-writer history";
      return r;
    }
  }
  for (const OpRecord* read : reads) {
    if (!read->response) continue;  // a pending read constrains nothing
    const Val got = *read->response;
    // Latest write completed before the read began.
    int before = initial;
    for (const OpRecord* w : writes) {
      if (w->response && w->response_time < read->invoke_time) {
        before = static_cast<int>(w->inv) - 1;
      }
    }
    bool allowed = (got == before);
    // Any write overlapping the read.
    for (const OpRecord* w : writes) {
      if (allowed) break;
      const bool started_before_read_ended =
          w->invoke_time < read->response_time;
      const bool ended_after_read_started =
          !w->response || w->response_time > read->invoke_time;
      if (started_before_read_ended && ended_after_read_started) {
        allowed = (got == static_cast<Val>(w->inv) - 1);
      }
    }
    if (!allowed) {
      std::ostringstream out;
      out << "read at [" << read->invoke_time << ", " << read->response_time
          << "] returned " << got << ", but the preceding value was "
          << before << " and no overlapping write supplies it";
      RegularityResult r;
      r.detail = out.str();
      return r;
    }
  }
  RegularityResult r;
  r.regular = true;
  return r;
}

RegularVerifyResult verify_regular(
    std::shared_ptr<const Implementation> impl,
    std::vector<std::vector<InvId>> scripts, int values,
    const ExploreLimits& limits) {
  VerifyOptions options;
  options.limits = limits;
  return verify_regular(std::move(impl), std::move(scripts), values, options);
}

RegularVerifyResult verify_regular(
    std::shared_ptr<const Implementation> impl,
    std::vector<std::vector<InvId>> scripts, int values,
    const VerifyOptions& options) {
  const ExploreLimits& limits = options.limits;
  if (!impl) throw std::invalid_argument("verify_regular: null impl");
  const int n = impl->iface().ports();
  if (static_cast<int>(scripts.size()) != n) {
    throw std::invalid_argument(
        "verify_regular: need one script per interface port");
  }
  if (options.static_precheck) {
    if (auto err = options.static_precheck(*impl)) {
      RegularVerifyResult failed;
      failed.complete = true;  // the precheck is a full (static) answer
      failed.detail = std::move(*err);
      return failed;
    }
  }
  auto sys = std::make_shared<System>(n);
  std::vector<PortId> ports;
  for (PortId p = 0; p < n; ++p) ports.push_back(p);
  const ObjectId obj = sys->add_implemented(impl, ports);
  for (ProcId p = 0; p < n; ++p) {
    // Responses are folded into process state so that executions with
    // different histories occupy distinct configurations (the explorer
    // memoizes on configurations; see verify.cpp for the full note).
    ProgramBuilder b;
    b.assign(1, lit(0));
    for (const InvId inv : scripts[static_cast<std::size_t>(p)]) {
      b.invoke(0, lit(inv), 0);
      b.assign(1, reg(1) * lit(1 << 20) + reg(0) + lit(1));
    }
    b.ret(reg(1));
    sys->set_toplevel(p, b.build("regular_p" + std::to_string(p)), {obj});
  }
  const int initial = impl->iface_initial();
  const TerminalCheck check =
      [obj, values, initial](const Engine& e) -> std::optional<std::string> {
    auto r = check_history_regular(e.history(), values, initial, obj);
    if (r.ok) return std::nullopt;
    return std::move(r.detail);
  };
  const Engine root{std::move(sys)};
  ExploreOptions explore_options{limits, options.reduction};
  explore_options.storage = options.storage;
  const auto out = explore_parallel(root, check, explore_options,
                                    options.threads);
  RegularVerifyResult result;
  result.wait_free = out.wait_free;
  result.complete = out.complete;
  result.resumed = out.resumed;
  result.checkpointed = out.checkpointed;
  result.stats = out.stats;
  if (out.violation) result.detail = *out.violation;
  result.ok = out.wait_free && out.complete && !out.violation;
  return result;
}

}  // namespace wfregs
