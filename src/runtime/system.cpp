#include "wfregs/runtime/system.hpp"

#include <stdexcept>

namespace wfregs {

System::System(int num_processes) : num_processes_(num_processes) {
  if (num_processes <= 0) {
    throw std::invalid_argument("System: need at least one process");
  }
  toplevel_.resize(static_cast<std::size_t>(num_processes));
  toplevel_env_.resize(static_cast<std::size_t>(num_processes));
}

void System::check_proc(ProcId p) const {
  if (p < 0 || p >= num_processes_) {
    throw std::out_of_range("System: process id out of range");
  }
}

ObjectId System::add_base(std::shared_ptr<const TypeSpec> spec,
                          StateId initial,
                          std::vector<PortId> port_of_process) {
  if (!spec) throw std::invalid_argument("System::add_base: null spec");
  if (initial < 0 || initial >= spec->num_states()) {
    throw std::out_of_range("System::add_base: initial state out of range");
  }
  if (static_cast<int>(port_of_process.size()) != num_processes_) {
    throw std::invalid_argument(
        "System::add_base: port_of_process must have one entry per process");
  }
  for (const PortId port : port_of_process) {
    if (port != kNoPort && (port < 0 || port >= spec->ports())) {
      throw std::out_of_range("System::add_base: port out of range");
    }
  }
  auto compiled = compiled_for(*spec);
  objects_.emplace_back(
      BaseObject{std::move(spec), initial, std::move(compiled)});
  top_ports_.push_back(std::move(port_of_process));
  placements_.push_back(
      Placement{static_cast<ObjectId>(objects_.size()) - 1, {}});
  ++num_base_;
  return static_cast<ObjectId>(objects_.size()) - 1;
}

ObjectId System::instantiate(
    const ObjectDecl& decl, std::vector<int>& path,
    std::vector<std::pair<ObjectId, std::vector<int>>>& collected) {
  if (decl.is_base()) {
    objects_.emplace_back(
        BaseObject{decl.spec, decl.initial, compiled_for(*decl.spec)});
    top_ports_.emplace_back();  // inner objects have no top-level ports
    placements_.emplace_back();  // patched by add_implemented
    ++num_base_;
    const auto g = static_cast<ObjectId>(objects_.size()) - 1;
    collected.emplace_back(g, path);
    return g;
  }
  VirtualObject v;
  v.impl = decl.impl;
  v.inner.reserve(decl.impl->objects().size());
  const auto decls = decl.impl->objects();
  for (std::size_t k = 0; k < decls.size(); ++k) {
    path.push_back(static_cast<int>(k));
    v.inner.push_back(instantiate(decls[k], path, collected));
    path.pop_back();
  }
  objects_.emplace_back(std::move(v));
  top_ports_.emplace_back();
  placements_.emplace_back();
  const auto g = static_cast<ObjectId>(objects_.size()) - 1;
  collected.emplace_back(g, path);
  return g;
}

ObjectId System::add_implemented(std::shared_ptr<const Implementation> impl,
                                 std::vector<PortId> port_of_process) {
  if (!impl) {
    throw std::invalid_argument("System::add_implemented: null impl");
  }
  if (static_cast<int>(port_of_process.size()) != num_processes_) {
    throw std::invalid_argument(
        "System::add_implemented: port_of_process must have one entry per "
        "process");
  }
  for (const PortId port : port_of_process) {
    if (port != kNoPort && (port < 0 || port >= impl->iface().ports())) {
      throw std::out_of_range("System::add_implemented: port out of range");
    }
  }
  ObjectDecl decl;
  decl.impl = std::move(impl);
  std::vector<int> path;
  std::vector<std::pair<ObjectId, std::vector<int>>> collected;
  const ObjectId g = instantiate(decl, path, collected);
  top_ports_[static_cast<std::size_t>(g)] = std::move(port_of_process);
  for (auto& [inner_g, inner_path] : collected) {
    placements_[static_cast<std::size_t>(inner_g)] =
        Placement{g, std::move(inner_path)};
  }
  return g;
}

std::shared_ptr<const CompiledType> System::compiled_for(
    const TypeSpec& spec) {
  for (const auto& [key, compiled] : compiled_cache_) {
    if (key == &spec) return compiled;
  }
  auto compiled = std::make_shared<const CompiledType>(spec);
  compiled_cache_.emplace_back(&spec, compiled);
  return compiled;
}

const System::Placement& System::placement(ObjectId g) const {
  if (g < 0 || g >= num_objects()) {
    throw std::out_of_range("System::placement: object id out of range");
  }
  return placements_[static_cast<std::size_t>(g)];
}

ObjectId System::resolve(ObjectId top, std::span<const int> path) const {
  if (top < 0 || top >= num_objects()) {
    throw std::out_of_range("System::resolve: top object id out of range");
  }
  ObjectId g = top;
  for (const int slot : path) {
    const auto& v = virt(g);
    if (slot < 0 || slot >= static_cast<int>(v.inner.size())) {
      throw std::out_of_range("System::resolve: slot out of range");
    }
    g = v.inner[static_cast<std::size_t>(slot)];
  }
  return g;
}

bool System::is_base(ObjectId g) const {
  if (g < 0 || g >= num_objects()) {
    throw std::out_of_range("System: object id out of range");
  }
  return std::holds_alternative<BaseObject>(
      objects_[static_cast<std::size_t>(g)]);
}

const System::BaseObject& System::base(ObjectId g) const {
  if (!is_base(g)) {
    throw std::logic_error("System::base: object is implemented, not base");
  }
  return std::get<BaseObject>(objects_[static_cast<std::size_t>(g)]);
}

const System::VirtualObject& System::virt(ObjectId g) const {
  if (is_base(g)) {
    throw std::logic_error("System::virt: object is base, not implemented");
  }
  return std::get<VirtualObject>(objects_[static_cast<std::size_t>(g)]);
}

void System::set_toplevel(ProcId p, ProgramRef code,
                          std::vector<ObjectId> env) {
  check_proc(p);
  if (!code) throw std::invalid_argument("System::set_toplevel: null code");
  std::vector<Handle> handles;
  handles.reserve(env.size());
  for (const ObjectId g : env) {
    const PortId port = top_port(g, p);
    handles.push_back(Handle{g, port});
  }
  toplevel_[static_cast<std::size_t>(p)] = std::move(code);
  toplevel_env_[static_cast<std::size_t>(p)] = std::move(handles);
}

const ProgramRef& System::toplevel_program(ProcId p) const {
  check_proc(p);
  const auto& prog = toplevel_[static_cast<std::size_t>(p)];
  if (!prog) {
    throw std::logic_error("System: process " + std::to_string(p) +
                           " has no top-level program");
  }
  return prog;
}

const std::vector<Handle>& System::toplevel_env(ProcId p) const {
  check_proc(p);
  return toplevel_env_[static_cast<std::size_t>(p)];
}

PortId System::top_port(ObjectId g, ProcId p) const {
  check_proc(p);
  if (g < 0 || g >= num_objects()) {
    throw std::out_of_range("System::top_port: object id out of range");
  }
  const auto& ports = top_ports_[static_cast<std::size_t>(g)];
  if (ports.empty()) {
    throw std::logic_error(
        "System::top_port: object was not added at top level");
  }
  return ports[static_cast<std::size_t>(p)];
}

}  // namespace wfregs
