#include "wfregs/runtime/implementation.hpp"

#include <stdexcept>

namespace wfregs {

Implementation::Implementation(std::string name,
                               std::shared_ptr<const TypeSpec> iface,
                               StateId iface_initial)
    : name_(std::move(name)),
      iface_(std::move(iface)),
      iface_initial_(iface_initial) {
  if (!iface_) {
    throw std::invalid_argument("Implementation(" + name_ +
                                "): null interface spec");
  }
  if (iface_initial < 0 || iface_initial >= iface_->num_states()) {
    throw std::out_of_range("Implementation(" + name_ +
                            "): interface initial state out of range");
  }
  programs_.resize(static_cast<std::size_t>(iface_->num_invocations()) *
                   iface_->ports());
}

void Implementation::check_port_map(const std::vector<PortId>& map,
                                    int inner_ports) const {
  // Declaration-time validation: a bad port map would otherwise only
  // surface as an engine fault deep inside some schedule, so reject it
  // here with enough context to find the declaration.
  const std::string where = "Implementation(" + name_ + "), inner object #" +
                            std::to_string(objects_.size());
  if (static_cast<int>(map.size()) != iface_->ports()) {
    throw std::invalid_argument(
        where + ": port_of_outer must have one entry per interface port (" +
        std::to_string(iface_->ports()) + "), got " +
        std::to_string(map.size()));
  }
  for (std::size_t j = 0; j < map.size(); ++j) {
    const PortId p = map[j];
    if (p != kNoPort && (p < 0 || p >= inner_ports)) {
      throw std::out_of_range(
          where + ": port_of_outer[" + std::to_string(j) + "] = " +
          std::to_string(p) + " is not an inner port in [0, " +
          std::to_string(inner_ports) + ") and not kNoPort");
    }
  }
}

int Implementation::add_base(std::shared_ptr<const TypeSpec> spec,
                             StateId initial,
                             std::vector<PortId> port_of_outer) {
  if (!spec) {
    throw std::invalid_argument("Implementation(" + name_ +
                                "): null inner spec");
  }
  if (initial < 0 || initial >= spec->num_states()) {
    throw std::out_of_range(
        "Implementation(" + name_ + "), inner object #" +
        std::to_string(objects_.size()) + " (" + spec->name() +
        "): initial state " + std::to_string(initial) + " outside [0, " +
        std::to_string(spec->num_states()) + ")");
  }
  check_port_map(port_of_outer, spec->ports());
  ObjectDecl decl;
  decl.spec = std::move(spec);
  decl.initial = initial;
  decl.port_of_outer = std::move(port_of_outer);
  objects_.push_back(std::move(decl));
  return static_cast<int>(objects_.size()) - 1;
}

int Implementation::add_nested(std::shared_ptr<const Implementation> impl,
                               std::vector<PortId> port_of_outer) {
  if (!impl) {
    throw std::invalid_argument("Implementation(" + name_ +
                                "): null nested implementation");
  }
  check_port_map(port_of_outer, impl->iface().ports());
  ObjectDecl decl;
  decl.impl = std::move(impl);
  decl.port_of_outer = std::move(port_of_outer);
  objects_.push_back(std::move(decl));
  return static_cast<int>(objects_.size()) - 1;
}

std::size_t Implementation::prog_index(InvId inv, PortId port) const {
  if (inv < 0 || inv >= iface_->num_invocations()) {
    throw std::out_of_range(
        "Implementation(" + name_ + "): invocation " + std::to_string(inv) +
        " outside [0, " + std::to_string(iface_->num_invocations()) + ")");
  }
  if (port < 0 || port >= iface_->ports()) {
    throw std::out_of_range(
        "Implementation(" + name_ + "): port " + std::to_string(port) +
        " outside [0, " + std::to_string(iface_->ports()) + ")");
  }
  return static_cast<std::size_t>(inv) * iface_->ports() +
         static_cast<std::size_t>(port);
}

void Implementation::set_program(InvId inv, PortId port, ProgramRef code) {
  if (!code) {
    throw std::invalid_argument("Implementation(" + name_ +
                                "): null program");
  }
  programs_[prog_index(inv, port)] = std::move(code);
}

void Implementation::set_program_all_ports(InvId inv, ProgramRef code) {
  for (PortId p = 0; p < iface_->ports(); ++p) set_program(inv, p, code);
}

const ProgramRef& Implementation::program(InvId inv, PortId port) const {
  const auto& p = programs_[prog_index(inv, port)];
  if (!p) {
    throw std::logic_error("Implementation(" + name_ + "): no program for " +
                           iface_->invocation_name(inv) + " on port " +
                           std::to_string(port));
  }
  return p;
}

bool Implementation::has_program(InvId inv, PortId port) const {
  return programs_[prog_index(inv, port)] != nullptr;
}

void Implementation::set_persistent(std::vector<Val> initial) {
  persistent_initial_ = std::move(initial);
}

std::shared_ptr<Implementation> Implementation::rewrite_objects(
    const RewriteFn& fn) const {
  auto copy = std::make_shared<Implementation>(name_, iface_, iface_initial_);
  copy->programs_ = programs_;
  copy->persistent_initial_ = persistent_initial_;
  std::vector<int> path;
  const auto rewrite_decl = [&](const auto& self,
                                const ObjectDecl& decl) -> ObjectDecl {
    if (auto replaced = fn(path, decl)) {
      return *std::move(replaced);
    }
    if (decl.is_base()) return decl;
    // Recurse into the nested implementation.
    auto nested = std::make_shared<Implementation>(
        decl.impl->name_, decl.impl->iface_, decl.impl->iface_initial_);
    nested->programs_ = decl.impl->programs_;
    nested->persistent_initial_ = decl.impl->persistent_initial_;
    for (std::size_t k = 0; k < decl.impl->objects_.size(); ++k) {
      path.push_back(static_cast<int>(k));
      nested->objects_.push_back(self(self, decl.impl->objects_[k]));
      path.pop_back();
    }
    ObjectDecl out;
    out.impl = std::move(nested);
    out.port_of_outer = decl.port_of_outer;
    return out;
  };
  for (std::size_t k = 0; k < objects_.size(); ++k) {
    path.push_back(static_cast<int>(k));
    copy->objects_.push_back(rewrite_decl(rewrite_decl, objects_[k]));
    path.pop_back();
  }
  return copy;
}

int Implementation::flattened_base_count() const {
  int count = 0;
  for (const ObjectDecl& decl : objects_) {
    count += decl.is_base() ? 1 : decl.impl->flattened_base_count();
  }
  return count;
}

}  // namespace wfregs
