#include "wfregs/runtime/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace wfregs {

ProcId RoundRobinScheduler::pick(const Engine& /*engine*/,
                                 const std::vector<ProcId>& runnable) {
  // First runnable id strictly greater than last_, wrapping around.
  const auto it = std::ranges::upper_bound(runnable, last_);
  last_ = it != runnable.end() ? *it : runnable.front();
  return last_;
}

ProcId RandomScheduler::pick(const Engine& /*engine*/,
                             const std::vector<ProcId>& runnable) {
  std::uniform_int_distribution<std::size_t> dist(0, runnable.size() - 1);
  return runnable[dist(rng_)];
}

int FirstChooser::pick(int n) {
  if (n <= 0) throw std::invalid_argument("FirstChooser: empty choice set");
  return 0;
}

int RandomChooser::pick(int n) {
  if (n <= 0) throw std::invalid_argument("RandomChooser: empty choice set");
  std::uniform_int_distribution<int> dist(0, n - 1);
  return dist(rng_);
}

ProcId AdversarialScheduler::pick(const Engine& engine,
                                  const std::vector<ProcId>& runnable) {
  steps_.resize(
      static_cast<std::size_t>(engine.system().num_processes()), 0);
  ProcId choice = -1;
  // Find a racing pair: two runnable processes poised at the same object.
  for (std::size_t x = 0; x < runnable.size() && choice < 0; ++x) {
    for (std::size_t y = x + 1; y < runnable.size() && choice < 0; ++y) {
      if (engine.pending_object(runnable[x]) ==
          engine.pending_object(runnable[y])) {
        // Alternate within the pair so both sides of the race advance.
        choice = (last_ == runnable[x]) ? runnable[y] : runnable[x];
      }
    }
  }
  if (choice < 0) {
    // No race: advance the least-advanced process (keeps operations long
    // and overlapping).
    choice = runnable.front();
    for (const ProcId p : runnable) {
      if (steps_[static_cast<std::size_t>(p)] <
          steps_[static_cast<std::size_t>(choice)]) {
        choice = p;
      }
    }
  }
  ++steps_[static_cast<std::size_t>(choice)];
  last_ = choice;
  return choice;
}

ProcId ReplayScheduler::pick(const Engine& /*engine*/,
                             const std::vector<ProcId>& runnable) {
  if (next_ >= sequence_.size()) {
    throw std::out_of_range("ReplayScheduler: sequence exhausted");
  }
  const ProcId p = sequence_[next_++];
  if (!std::ranges::binary_search(runnable, p)) {
    throw std::out_of_range("ReplayScheduler: process " + std::to_string(p) +
                            " is not runnable");
  }
  return p;
}

bool run_to_completion(Engine& engine, Scheduler& scheduler, Chooser& chooser,
                       std::size_t max_steps) {
  for (std::size_t step = 0; step < max_steps; ++step) {
    if (engine.all_done()) return true;
    const auto runnable = engine.runnable();
    const ProcId p = scheduler.pick(engine, runnable);
    const int width = engine.pending_choices(p);
    engine.commit(p, width == 1 ? 0 : chooser.pick(width));
  }
  return engine.all_done();
}

}  // namespace wfregs
