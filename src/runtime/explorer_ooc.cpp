// The out-of-core sequential explorer behind ExploreOptions::storage.
//
// This is ExplorerImpl / ReducedExplorerImpl (explorer.cpp) rebuilt as an
// EXPLICIT-STACK DFS so the traversal state -- the frame stack -- is a
// first-class value that can be serialized into a FrontierCheckpoint and
// rebuilt on resume.  Three substitutions, none of which change a single
// observable:
//
//   * the in-RAM ConfigInterner becomes a storage::OocInterner: key words
//     are parent-delta compressed (DeltaCodec) into a SpillArena whose
//     residency obeys ExploreOptions::storage.memory_budget_bytes;
//   * the per-node NodeInfo vector becomes flat arrays (depth per id, plus
//     flattened access-bound rows when tracking) -- the exact shape the
//     checkpoint serializes;
//   * the recursion becomes a Frame stack, where each frame holds its
//     node's enumeration position (steps[step_idx], nondeterministic choice
//     c), the undo journal of its in-flight child step, and the partial
//     longest-path DP accumulated so far.
//
// ORDER CONTRACT.  The traversal replays explorer.cpp bit for bit: memo
// lookup precedes the cycle abort, which precedes the limit/cancel check,
// which precedes the intern + configs increment; children are enumerated in
// ascending process order with nondeterministic choices inner; edges are
// counted before each step; under reduction the engine is canonicalized in
// place at node entry and un-renamed on every exit path.  The differential
// storage suite (tests/storage_ooc.cpp) holds explore()-with-storage to
// plain explore() across the zoo in every reduction mode.
//
// CHECKPOINT POINTS.  A periodic snapshot is written right after a frame
// push (the new top frame pending at its first step); an interrupt snapshot
// is written when the limit/cancel check fires with a non-empty stack --
// the parent's in-flight step is reverted and recorded as the pending retry
// position (and its already-counted edge subtracted), so a resumed run
// re-applies and re-counts it.  Both snapshot kinds therefore describe the
// same shape: all frames below the top hold applied (in-flight) steps that
// resume replays onto a fresh engine; the top frame holds the next
// enumeration position.  A definitive end -- completion, a cycle, or a
// stop_at_violation hit -- writes a finished snapshot embedding the whole
// outcome, which re-runs and resubmissions short-circuit on.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "wfregs/runtime/config_intern.hpp"
#include "wfregs/runtime/explorer.hpp"
#include "wfregs/storage/checkpoint.hpp"
#include "wfregs/storage/ooc_interner.hpp"
#include "wfregs/storage/spill_arena.hpp"

namespace wfregs::detail {

namespace {

using storage::DeltaCodec;
using storage::FrameSnap;
using storage::FrontierCheckpoint;
using storage::FrontierSnapshot;
using storage::OocInterner;
using storage::SpillArena;

/// DP value flowing up the DFS, identical to explorer.cpp's NodeInfo minus
/// the state flag (state lives in node_depth_: -1 = on path).
struct Info {
  int depth_from = 0;
  std::vector<std::size_t> acc_from;
  std::vector<std::size_t> inv_from;
};

struct Frame {
  std::uint32_t id = 0;
  Info info;
  /// Enabled steps in ascending process order (full enumeration including
  /// slept ones; ReductionContext::child_sleep indexes into it).  Under
  /// kNone only p and width are populated.
  std::vector<ReductionContext::Step> steps;
  std::size_t step_idx = 0;
  int choice = 0;
  std::uint64_t sleep = 0;       ///< post-canonicalization sleep mask
  int applied_renaming = -1;     ///< entry canonicalization, undone at pop
  Engine::UndoRecord undo;       ///< journal of the in-flight child step
  Engine::CommitInfo commit;     ///< commit info of the in-flight step
  bool in_flight = false;
  std::vector<std::uint64_t> key;  ///< this node's canonical key words
  int depth = 0;                   ///< == stack index
};

class OocExplorer {
 public:
  OocExplorer(const ExploreOptions& options, const TerminalCheck& check)
      : options_(options), limits_(options.limits), check_(check) {}

  ExploreOutcome run(const Engine& root) {
    const System& sys = root.system();
    num_objects_ = sys.num_objects();
    if (limits_.track_access_bounds) {
      inv_offset_.resize(static_cast<std::size_t>(num_objects_) + 1, 0);
      for (ObjectId g = 0; g < num_objects_; ++g) {
        const int invs =
            sys.is_base(g) ? sys.base(g).spec->num_invocations() : 0;
        inv_offset_[static_cast<std::size_t>(g) + 1] =
            inv_offset_[static_cast<std::size_t>(g)] +
            static_cast<std::size_t>(invs);
      }
      acc_len_ = static_cast<std::size_t>(num_objects_);
      inv_len_ = inv_offset_.back();
    }
    if (options_.reduction != Reduction::kNone) {
      ctx_ = std::make_unique<ReductionContext>(sys, options_.reduction,
                                                options_.independence);
    }

    make_store();
    engine_.emplace(root);
    compute_fingerprint(root);
    if (!options_.storage.checkpoint_dir.empty()) {
      if (const auto final_outcome = open_checkpoint(root)) {
        return *final_outcome;
      }
    }
    if (stack_.empty() && !outcome_.resumed) {
      enter(0, 0);
    }
    while (!stack_.empty()) {
      Frame& f = stack_.back();
      if (f.in_flight) {
        engine_->revert(f.undo);
        f.in_flight = false;
        if (!aborted_) {
          combine(f, leaf_);
          ++f.choice;
          if (f.choice >= f.steps[f.step_idx].width) {
            f.choice = 0;
            ++f.step_idx;
          }
        }
      }
      if (aborted_) {
        pop();
        continue;
      }
      if (ctx_) {
        while (f.step_idx < f.steps.size() &&
               (f.sleep & (std::uint64_t{1} << f.steps[f.step_idx].p))) {
          ++f.step_idx;
        }
      }
      if (f.step_idx >= f.steps.size()) {
        pop();
        continue;
      }
      const ReductionContext::Step& st = f.steps[f.step_idx];
      const std::uint64_t child_sleep =
          ctx_ ? ctx_->child_sleep(f.steps, f.step_idx, f.sleep) : 0;
      ++outcome_.stats.edges;
      f.commit = engine_->apply(st.p, f.choice, f.undo);
      f.in_flight = true;
      enter(child_sleep, f.depth + 1);
    }

    if (!aborted_) {
      outcome_.stats.depth = leaf_.depth_from;
      if (limits_.track_access_bounds) {
        outcome_.stats.max_accesses = leaf_.acc_from;
        outcome_.stats.max_accesses_by_inv.resize(
            static_cast<std::size_t>(num_objects_));
        for (ObjectId g = 0; g < num_objects_; ++g) {
          auto& per =
              outcome_.stats.max_accesses_by_inv[static_cast<std::size_t>(g)];
          per.assign(
              leaf_.inv_from.begin() +
                  static_cast<std::ptrdiff_t>(
                      inv_offset_[static_cast<std::size_t>(g)]),
              leaf_.inv_from.begin() +
                  static_cast<std::ptrdiff_t>(
                      inv_offset_[static_cast<std::size_t>(g) + 1]));
        }
      }
    }
    outcome_.stats.interned_configs = memo_->size();

    if (ckpt_) {
      if (!interrupted_) {
        // Definitive end (clean completion, cycle, or stop_at_violation):
        // the finished record lets any re-run short-circuit.
        ckpt_->write_final(snapshot_of_outcome());
      } else if (wrote_interrupt_) {
        outcome_.checkpointed = true;
      }
    }
    return outcome_;
  }

 private:
  // ---- storage -------------------------------------------------------------

  void make_store() {
    SpillArena::Options arena_options;
    arena_options.budget_bytes = options_.storage.memory_budget_bytes;
    arena_options.segment_bytes = options_.storage.arena_segment_bytes;
    arena_options.dir = options_.storage.spill_dir;
    memo_.reset();
    arena_ = std::make_unique<SpillArena>(arena_options);
    memo_ = std::make_unique<OocInterner>(arena_.get(),
                                          options_.storage.keyframe_interval);
  }

  // ---- DP plumbing ---------------------------------------------------------

  Info leaf() const {
    Info info;
    if (limits_.track_access_bounds) {
      info.acc_from.assign(acc_len_, 0);
      info.inv_from.assign(inv_len_, 0);
    }
    return info;
  }

  Info node_info(std::uint32_t id) const {
    Info info;
    info.depth_from = node_depth_[id];
    if (limits_.track_access_bounds) {
      info.acc_from.assign(node_acc_.begin() + id * acc_len_,
                           node_acc_.begin() + (id + 1) * acc_len_);
      info.inv_from.assign(node_inv_.begin() + id * inv_len_,
                           node_inv_.begin() + (id + 1) * inv_len_);
    }
    return info;
  }

  void push_node_slot() {
    node_depth_.push_back(-1);  // on path until the node's DP completes
    if (limits_.track_access_bounds) {
      node_acc_.resize(node_acc_.size() + acc_len_, 0);
      node_inv_.resize(node_inv_.size() + inv_len_, 0);
    }
  }

  void set_node(std::uint32_t id, const Info& info) {
    node_depth_[id] = info.depth_from;
    if (limits_.track_access_bounds) {
      std::copy(info.acc_from.begin(), info.acc_from.end(),
                node_acc_.begin() + id * acc_len_);
      std::copy(info.inv_from.begin(), info.inv_from.end(),
                node_inv_.begin() + id * inv_len_);
    }
  }

  /// Folds a finished child into its parent frame's partial DP, exactly
  /// explorer.cpp's accumulation (commit-sourced object/inv under kNone,
  /// step-sourced under reduction -- the values coincide; the code paths
  /// are kept parallel to the originals).
  void combine(Frame& f, const Info& child) {
    f.info.depth_from = std::max(f.info.depth_from, child.depth_from + 1);
    if (!limits_.track_access_bounds) return;
    const ReductionContext::Step& st = f.steps[f.step_idx];
    const ObjectId object = ctx_ ? st.object : f.commit.object;
    const InvId inv = ctx_ ? st.inv : f.commit.inv;
    for (int g = 0; g < num_objects_; ++g) {
      std::size_t cand = child.acc_from[static_cast<std::size_t>(g)];
      if (g == object) ++cand;
      f.info.acc_from[static_cast<std::size_t>(g)] =
          std::max(f.info.acc_from[static_cast<std::size_t>(g)], cand);
    }
    const std::size_t hit = inv_offset_[static_cast<std::size_t>(object)] +
                            static_cast<std::size_t>(inv);
    for (std::size_t k = 0; k < f.info.inv_from.size(); ++k) {
      std::size_t cand = child.inv_from[k];
      if (k == hit) ++cand;
      f.info.inv_from[k] = std::max(f.info.inv_from[k], cand);
    }
  }

  // ---- traversal -----------------------------------------------------------

  std::vector<ReductionContext::Step> enumerate_steps() const {
    if (ctx_) return ctx_->steps(*engine_);
    std::vector<ReductionContext::Step> steps;
    for (const ProcId p : engine_->runnable()) {
      ReductionContext::Step st;
      st.p = p;
      st.width = engine_->pending_choices(p);
      steps.push_back(st);
    }
    return steps;
  }

  /// Advances into the configuration the engine currently holds (the root,
  /// or the child just applied by the top frame).  Mirrors explorer.cpp's
  /// dfs() entry: on a memo hit / cycle / limit the node resolves
  /// immediately into leaf_; otherwise a frame is pushed.
  void enter(std::uint64_t sleep, int depth) {
    if (aborted_) {
      leaf_ = leaf();
      return;
    }
    int applied = -1;
    if (ctx_) {
      ctx_->canonical_node_key_into(*engine_, sleep, scratch_, &applied);
    } else {
      engine_->config_key_into(scratch_);
    }
    const std::uint64_t hash = config_hash_words(scratch_.words);
    if (const std::uint32_t hit = memo_->find(scratch_.words, hash);
        hit != OocInterner::kNotFound) {
      if (node_depth_[hit] < 0) {
        // On-path repeat: the Section 4.2 Koenig's-lemma cycle abort.
        outcome_.wait_free = false;
        aborted_ = true;
        leaf_ = leaf();
      } else {
        leaf_ = node_info(hit);
      }
      if (applied >= 0) ctx_->undo_renaming(*engine_, applied);
      return;
    }
    if (depth > limits_.max_depth ||
        outcome_.stats.configs >= limits_.max_configs ||
        (limits_.cancel && limits_.cancel->load(std::memory_order_relaxed))) {
      if (applied >= 0) ctx_->undo_renaming(*engine_, applied);
      interrupt_checkpoint();
      outcome_.complete = false;
      aborted_ = true;
      interrupted_ = true;
      leaf_ = leaf();
      return;
    }
    const bool have_parent = !stack_.empty();
    const std::uint32_t id = memo_->intern(
        scratch_.words, hash,
        have_parent ? stack_.back().id : DeltaCodec::kNoParent,
        have_parent ? std::span<const std::uint64_t>(stack_.back().key)
                    : std::span<const std::uint64_t>{});
    push_node_slot();
    ++outcome_.stats.configs;

    Info info = leaf();
    if (engine_->all_done()) {
      ++outcome_.stats.terminals;
      if (check_) {
        if (auto violation = check_(*engine_)) {
          if (!outcome_.violation) outcome_.violation = std::move(violation);
          if (limits_.stop_at_violation) aborted_ = true;
        }
      }
      set_node(id, info);
      leaf_ = std::move(info);
      if (applied >= 0) ctx_->undo_renaming(*engine_, applied);
      return;
    }
    Frame f;
    f.id = id;
    f.info = std::move(info);
    f.steps = enumerate_steps();
    f.sleep = sleep;
    f.applied_renaming = applied;
    f.depth = depth;
    f.key.assign(scratch_.words.begin(), scratch_.words.end());
    stack_.push_back(std::move(f));
    if (ckpt_ &&
        outcome_.stats.configs - last_checkpoint_configs_ >=
            options_.storage.checkpoint_every_configs) {
      write_checkpoint(outcome_.stats.edges);
    }
  }

  /// Retires the top frame: publishes its DP row, hands its Info to the
  /// parent through leaf_, and inverts its entry canonicalization -- the
  /// unwind explorer.cpp performs on return from dfs(), aborted or not.
  void pop() {
    Frame& f = stack_.back();
    set_node(f.id, f.info);
    leaf_ = std::move(f.info);
    if (f.applied_renaming >= 0) {
      ctx_->undo_renaming(*engine_, f.applied_renaming);
    }
    stack_.pop_back();
  }

  // ---- fingerprint / checkpoint --------------------------------------------

  void compute_fingerprint(const Engine& root) {
    ConfigKey rk;
    root.config_key_into(rk);
    std::vector<std::uint64_t> words;
    words.reserve(rk.words.size() + 3);
    words.push_back(0x5746524547465031ull);  // salt
    words.push_back(static_cast<std::uint64_t>(options_.reduction));
    words.push_back((limits_.track_access_bounds ? 1u : 0u) |
                    (static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(limits_.max_depth))
                     << 32));
    words.insert(words.end(), rk.words.begin(), rk.words.end());
    fp_lo_ = config_hash_words(words);
    words[0] = 0x5746524547465032ull;
    fp_hi_ = config_hash_words(words);
  }

  /// Opens the checkpoint directory and resumes when possible.  Returns an
  /// outcome only when a finished snapshot short-circuits the whole run.
  std::optional<ExploreOutcome> open_checkpoint(const Engine& root) {
    namespace fs = std::filesystem;
    const std::string& dir = options_.storage.checkpoint_dir;
    const std::string& from = options_.storage.resume_from;
    if (!from.empty() && from != dir && fs::exists(from)) {
      // resume_from seeds the checkpoint dir with another directory's
      // state (e.g. a copy snapshotted before a risky change); the run
      // itself always checkpoints into checkpoint_dir.
      fs::create_directories(dir);
      for (const char* name : {"frontier.log", "arena.log"}) {
        if (fs::exists(fs::path(from) / name)) {
          fs::copy_file(fs::path(from) / name, fs::path(dir) / name,
                        fs::copy_options::overwrite_existing);
        }
      }
    }
    ckpt_ = std::make_unique<FrontierCheckpoint>(dir);
    std::size_t fed = 0;
    const auto key_cb = [&](std::uint32_t id, std::uint32_t parent,
                            std::span<const std::uint64_t> words) {
      const std::uint32_t got =
          memo_->intern(words, config_hash_words(words), parent, {});
      if (got != id) {
        throw std::runtime_error(
            "checkpoint resume: manifest ids are not dense");
      }
      push_node_slot();
      ++fed;
    };
    auto snap = ckpt_->open(fp_hi_, fp_lo_, options_.storage.resume, key_cb);
    if (!snap) {
      if (fed != 0) {
        // A snapshot was abandoned mid-feed (malformed batch): rebuild the
        // store from scratch rather than keep a partial manifest.
        make_store();
        node_depth_.clear();
        node_acc_.clear();
        node_inv_.clear();
      }
      return std::nullopt;
    }
    if (snap->finished) {
      ExploreOutcome out;
      out.wait_free = snap->wait_free;
      out.complete = snap->complete;
      if (snap->has_violation) out.violation = snap->violation;
      out.stats.configs = snap->configs;
      out.stats.edges = snap->edges;
      out.stats.terminals = snap->terminals;
      out.stats.interned_configs = snap->interned;
      out.stats.depth = snap->depth;
      out.stats.max_accesses.assign(snap->max_accesses.begin(),
                                    snap->max_accesses.end());
      out.stats.max_accesses_by_inv.resize(snap->max_accesses_by_inv.size());
      for (std::size_t g = 0; g < snap->max_accesses_by_inv.size(); ++g) {
        out.stats.max_accesses_by_inv[g].assign(
            snap->max_accesses_by_inv[g].begin(),
            snap->max_accesses_by_inv[g].end());
      }
      out.resumed = true;
      return out;
    }
    restore(*snap, root);
    return std::nullopt;
  }

  void restore(const FrontierSnapshot& snap, const Engine& root) {
    if (snap.interned != memo_->size() ||
        snap.node_depth_from.size() != memo_->size()) {
      throw std::runtime_error("checkpoint resume: manifest/snapshot skew");
    }
    for (std::size_t k = 0; k < snap.node_depth_from.size(); ++k) {
      node_depth_[k] = snap.node_depth_from[k];
    }
    if (limits_.track_access_bounds) {
      if (snap.acc_len != acc_len_ || snap.inv_len != inv_len_ ||
          snap.node_acc.size() != node_acc_.size() ||
          snap.node_inv.size() != node_inv_.size()) {
        throw std::runtime_error("checkpoint resume: tracking shape skew");
      }
      std::copy(snap.node_acc.begin(), snap.node_acc.end(),
                node_acc_.begin());
      std::copy(snap.node_inv.begin(), snap.node_inv.end(),
                node_inv_.begin());
    }
    outcome_.stats.configs = snap.configs;
    outcome_.stats.edges = snap.edges;
    outcome_.stats.terminals = snap.terminals;
    if (snap.has_violation) outcome_.violation = snap.violation;
    outcome_.resumed = true;
    last_checkpoint_configs_ = snap.configs;

    // Rebuild the engine and the frame stack by replaying the in-flight
    // steps; canonicalization re-runs deterministically, and every replayed
    // node key is checked against the interned manifest.
    engine_.emplace(root);
    std::vector<std::uint64_t> expect;
    std::uint64_t sleep = 0;
    for (std::size_t k = 0; k < snap.frames.size(); ++k) {
      const FrameSnap& fs = snap.frames[k];
      Frame f;
      int applied = -1;
      if (ctx_) {
        ctx_->canonical_node_key_into(*engine_, sleep, scratch_, &applied);
      } else {
        engine_->config_key_into(scratch_);
      }
      memo_->decode_into(fs.id, expect);
      if (expect != scratch_.words || (ctx_ && sleep != fs.sleep)) {
        throw std::runtime_error("checkpoint resume: replay diverged");
      }
      f.id = fs.id;
      f.applied_renaming = applied;
      f.sleep = fs.sleep;
      f.depth = static_cast<int>(k);
      f.key = scratch_.words;
      f.steps = enumerate_steps();
      f.step_idx = fs.step_idx;
      f.choice = fs.choice;
      f.info.depth_from = fs.depth_from;
      if (limits_.track_access_bounds) {
        f.info.acc_from.assign(fs.acc_from.begin(), fs.acc_from.end());
        f.info.inv_from.assign(fs.inv_from.begin(), fs.inv_from.end());
      }
      stack_.push_back(std::move(f));
      if (k + 1 < snap.frames.size()) {
        Frame& g = stack_.back();
        const ReductionContext::Step& st = g.steps[g.step_idx];
        g.commit = engine_->apply(st.p, g.choice, g.undo);
        g.in_flight = true;
        sleep = ctx_ ? ctx_->child_sleep(g.steps, g.step_idx, g.sleep) : 0;
      }
    }
  }

  FrontierSnapshot snapshot_base(std::uint64_t edges) const {
    FrontierSnapshot s;
    s.fp_hi = fp_hi_;
    s.fp_lo = fp_lo_;
    s.wait_free = true;
    s.complete = true;
    if (outcome_.violation) {
      s.has_violation = true;
      s.violation = *outcome_.violation;
    }
    s.configs = outcome_.stats.configs;
    s.edges = edges;
    s.terminals = outcome_.stats.terminals;
    s.interned = static_cast<std::uint32_t>(memo_->size());
    s.node_depth_from = node_depth_;
    s.acc_len = static_cast<std::uint32_t>(acc_len_);
    s.inv_len = static_cast<std::uint32_t>(inv_len_);
    s.node_acc.assign(node_acc_.begin(), node_acc_.end());
    s.node_inv.assign(node_inv_.begin(), node_inv_.end());
    return s;
  }

  void write_checkpoint(std::uint64_t edges) {
    FrontierSnapshot s = snapshot_base(edges);
    s.frames.reserve(stack_.size());
    for (const Frame& f : stack_) {
      FrameSnap fs;
      fs.id = f.id;
      fs.step_idx = static_cast<std::uint32_t>(f.step_idx);
      fs.choice = f.choice;
      fs.sleep = f.sleep;
      fs.depth_from = f.info.depth_from;
      fs.acc_from.assign(f.info.acc_from.begin(), f.info.acc_from.end());
      fs.inv_from.assign(f.info.inv_from.begin(), f.info.inv_from.end());
      s.frames.push_back(std::move(fs));
    }
    ckpt_->write_snapshot(
        s, [&](std::uint32_t id, std::uint32_t* parent,
               std::vector<std::uint64_t>* out) {
          *parent = memo_->parent(id);
          memo_->decode_into(id, *out);
        });
    last_checkpoint_configs_ = outcome_.stats.configs;
  }

  /// The limit/cancel branch's resumable snapshot: reverts the parent's
  /// in-flight step, records it as the pending retry position and subtracts
  /// its already-counted edge (resume re-applies and re-counts it).
  void interrupt_checkpoint() {
    if (!ckpt_ || stack_.empty()) return;
    Frame& parent = stack_.back();
    engine_->revert(parent.undo);
    parent.in_flight = false;
    write_checkpoint(outcome_.stats.edges - 1);
    wrote_interrupt_ = true;
  }

  FrontierSnapshot snapshot_of_outcome() const {
    FrontierSnapshot s;
    s.fp_hi = fp_hi_;
    s.fp_lo = fp_lo_;
    s.finished = true;
    s.wait_free = outcome_.wait_free;
    s.complete = outcome_.complete;
    if (outcome_.violation) {
      s.has_violation = true;
      s.violation = *outcome_.violation;
    }
    s.configs = outcome_.stats.configs;
    s.edges = outcome_.stats.edges;
    s.terminals = outcome_.stats.terminals;
    s.interned = static_cast<std::uint32_t>(outcome_.stats.interned_configs);
    s.depth = outcome_.stats.depth;
    s.max_accesses.assign(outcome_.stats.max_accesses.begin(),
                          outcome_.stats.max_accesses.end());
    s.max_accesses_by_inv.resize(outcome_.stats.max_accesses_by_inv.size());
    for (std::size_t g = 0; g < s.max_accesses_by_inv.size(); ++g) {
      s.max_accesses_by_inv[g].assign(
          outcome_.stats.max_accesses_by_inv[g].begin(),
          outcome_.stats.max_accesses_by_inv[g].end());
    }
    return s;
  }

  const ExploreOptions options_;
  const ExploreLimits limits_;
  const TerminalCheck& check_;
  std::unique_ptr<ReductionContext> ctx_;
  int num_objects_ = 0;
  std::vector<std::size_t> inv_offset_;
  std::size_t acc_len_ = 0;
  std::size_t inv_len_ = 0;
  bool aborted_ = false;
  bool interrupted_ = false;
  bool wrote_interrupt_ = false;
  ExploreOutcome outcome_;
  std::optional<Engine> engine_;
  ConfigKey scratch_;
  std::unique_ptr<SpillArena> arena_;
  std::unique_ptr<OocInterner> memo_;
  /// Per-id DP rows: depth (-1 = on path) plus flattened access bounds.
  std::vector<std::int32_t> node_depth_;
  std::vector<std::size_t> node_acc_;
  std::vector<std::size_t> node_inv_;
  std::vector<Frame> stack_;
  Info leaf_;  ///< DP value of the most recently resolved node
  std::unique_ptr<FrontierCheckpoint> ckpt_;
  std::uint64_t fp_hi_ = 0;
  std::uint64_t fp_lo_ = 0;
  std::size_t last_checkpoint_configs_ = 0;
};

}  // namespace

ExploreOutcome explore_ooc(const Engine& root, const ExploreOptions& options,
                           const TerminalCheck& check) {
  OocExplorer impl(options, check);
  return impl.run(root);
}

}  // namespace wfregs::detail
