// The pre-compiled-core explorer, kept verbatim as a reference
// implementation: copy-the-engine-to-branch DFS over std::unordered_map
// memo tables.  explore() (explorer.cpp) reproduces these traversals with
// an undo-journaled engine and an interned memo; the differential suites
// assert bit-identical ExploreOutcomes between the two, and
// bench_e12_compiled_core measures the speedup against this code.  Do not
// modify the traversal order here: its exact counter sequence is the
// contract the compiled core is held to.
#include "wfregs/runtime/explorer.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

namespace wfregs {

namespace {

struct NodeInfo {
  enum class State { kOnPath, kDone };
  State state = State::kOnPath;
  int depth_from = 0;
  /// Per base object: max accesses on any path from here (when tracking).
  std::vector<std::size_t> acc_from;
  /// Flattened per (base object, invocation) maxima (when tracking).
  std::vector<std::size_t> inv_from;
};

class LegacyExplorerImpl {
 public:
  LegacyExplorerImpl(const ExploreLimits& limits, const TerminalCheck& check)
      : limits_(limits), check_(check) {}

  ExploreOutcome run(const Engine& root) {
    const System& sys = root.system();
    num_objects_ = sys.num_objects();
    if (limits_.track_access_bounds) {
      inv_offset_.resize(static_cast<std::size_t>(num_objects_) + 1, 0);
      for (ObjectId g = 0; g < num_objects_; ++g) {
        const int invs =
            sys.is_base(g) ? sys.base(g).spec->num_invocations() : 0;
        inv_offset_[static_cast<std::size_t>(g) + 1] =
            inv_offset_[static_cast<std::size_t>(g)] +
            static_cast<std::size_t>(invs);
      }
    }
    const NodeInfo info = dfs(root, 0);
    // Stats are only meaningful when the exploration ran to completion
    // (no cycle, no limit hit, no early stop at a violation).
    if (!aborted_) {
      outcome_.stats.depth = info.depth_from;
      if (limits_.track_access_bounds) {
        outcome_.stats.max_accesses = info.acc_from;
        outcome_.stats.max_accesses_by_inv.resize(
            static_cast<std::size_t>(num_objects_));
        for (ObjectId g = 0; g < num_objects_; ++g) {
          auto& per = outcome_.stats
                          .max_accesses_by_inv[static_cast<std::size_t>(g)];
          per.assign(info.inv_from.begin() +
                         static_cast<std::ptrdiff_t>(
                             inv_offset_[static_cast<std::size_t>(g)]),
                     info.inv_from.begin() +
                         static_cast<std::ptrdiff_t>(
                             inv_offset_[static_cast<std::size_t>(g) + 1]));
        }
      }
    }
    outcome_.stats.interned_configs = memo_.size();
    return outcome_;
  }

 private:
  NodeInfo leaf() const {
    NodeInfo info;
    info.state = NodeInfo::State::kDone;
    if (limits_.track_access_bounds) {
      info.acc_from.assign(static_cast<std::size_t>(num_objects_), 0);
      info.inv_from.assign(inv_offset_.back(), 0);
    }
    return info;
  }

  NodeInfo dfs(const Engine& e, int depth) {
    if (aborted_) return leaf();
    const ConfigKey key = e.config_key();
    if (const auto it = memo_.find(key); it != memo_.end()) {
      if (it->second.state == NodeInfo::State::kOnPath) {
        // A configuration repeats along the current path: the executions of
        // this implementation form an infinite tree, so by the Section 4.2
        // argument (Koenig's lemma) some process runs forever without
        // completing -- the implementation is not wait-free.
        outcome_.wait_free = false;
        aborted_ = true;
        return leaf();
      }
      return it->second;
    }
    if (depth > limits_.max_depth ||
        outcome_.stats.configs >= limits_.max_configs ||
        (limits_.cancel &&
         limits_.cancel->load(std::memory_order_relaxed))) {
      outcome_.complete = false;
      aborted_ = true;
      return leaf();
    }
    memo_.emplace(key, NodeInfo{NodeInfo::State::kOnPath, 0, {}, {}});
    ++outcome_.stats.configs;

    NodeInfo info = leaf();
    if (e.all_done()) {
      ++outcome_.stats.terminals;
      if (check_) {
        if (auto violation = check_(e)) {
          if (!outcome_.violation) outcome_.violation = std::move(violation);
          if (limits_.stop_at_violation) aborted_ = true;
        }
      }
    } else {
      for (const ProcId p : e.runnable()) {
        const int width = e.pending_choices(p);
        for (int c = 0; c < width; ++c) {
          ++outcome_.stats.edges;
          Engine child = e;
          const Engine::CommitInfo commit = child.commit(p, c);
          const NodeInfo child_info = dfs(child, depth + 1);
          if (aborted_) break;
          info.depth_from =
              std::max(info.depth_from, child_info.depth_from + 1);
          if (limits_.track_access_bounds) {
            for (int g = 0; g < num_objects_; ++g) {
              std::size_t cand =
                  child_info.acc_from[static_cast<std::size_t>(g)];
              if (g == commit.object) ++cand;
              info.acc_from[static_cast<std::size_t>(g)] =
                  std::max(info.acc_from[static_cast<std::size_t>(g)], cand);
            }
            const std::size_t hit =
                inv_offset_[static_cast<std::size_t>(commit.object)] +
                static_cast<std::size_t>(commit.inv);
            for (std::size_t k = 0; k < info.inv_from.size(); ++k) {
              std::size_t cand = child_info.inv_from[k];
              if (k == hit) ++cand;
              info.inv_from[k] = std::max(info.inv_from[k], cand);
            }
          }
        }
        if (aborted_) break;
      }
    }
    memo_[key] = info;
    return info;
  }

  const ExploreLimits& limits_;
  const TerminalCheck& check_;
  int num_objects_ = 0;
  std::vector<std::size_t> inv_offset_;
  bool aborted_ = false;
  ExploreOutcome outcome_;
  std::unordered_map<ConfigKey, NodeInfo, ConfigKeyHash> memo_;
};

/// The reduced DFS over (canonical configuration, sleep mask) nodes; see
/// explorer.cpp for the traversal contract.
class LegacyReducedExplorerImpl {
 public:
  LegacyReducedExplorerImpl(const ExploreOptions& options,
                            const TerminalCheck& check)
      : limits_(options.limits), check_(check), options_(options) {}

  ExploreOutcome run(const Engine& root) {
    const System& sys = root.system();
    ctx_ = std::make_unique<ReductionContext>(sys, options_.reduction,
                                              options_.independence);
    num_objects_ = sys.num_objects();
    if (limits_.track_access_bounds) {
      inv_offset_.resize(static_cast<std::size_t>(num_objects_) + 1, 0);
      for (ObjectId g = 0; g < num_objects_; ++g) {
        const int invs =
            sys.is_base(g) ? sys.base(g).spec->num_invocations() : 0;
        inv_offset_[static_cast<std::size_t>(g) + 1] =
            inv_offset_[static_cast<std::size_t>(g)] +
            static_cast<std::size_t>(invs);
      }
    }
    const NodeInfo info = dfs(Engine(root), 0, 0);
    if (!aborted_) {
      outcome_.stats.depth = info.depth_from;
      if (limits_.track_access_bounds) {
        outcome_.stats.max_accesses = info.acc_from;
        outcome_.stats.max_accesses_by_inv.resize(
            static_cast<std::size_t>(num_objects_));
        for (ObjectId g = 0; g < num_objects_; ++g) {
          auto& per = outcome_.stats
                          .max_accesses_by_inv[static_cast<std::size_t>(g)];
          per.assign(info.inv_from.begin() +
                         static_cast<std::ptrdiff_t>(
                             inv_offset_[static_cast<std::size_t>(g)]),
                     info.inv_from.begin() +
                         static_cast<std::ptrdiff_t>(
                             inv_offset_[static_cast<std::size_t>(g) + 1]));
        }
      }
    }
    outcome_.stats.interned_configs = memo_.size();
    return outcome_;
  }

 private:
  NodeInfo leaf() const {
    NodeInfo info;
    info.state = NodeInfo::State::kDone;
    if (limits_.track_access_bounds) {
      info.acc_from.assign(static_cast<std::size_t>(num_objects_), 0);
      info.inv_from.assign(inv_offset_.back(), 0);
    }
    return info;
  }

  NodeInfo dfs(Engine e, std::uint64_t sleep, int depth) {
    if (aborted_) return leaf();
    const ConfigKey key = ctx_->canonical_node_key(e, sleep);
    if (const auto it = memo_.find(key); it != memo_.end()) {
      if (it->second.state == NodeInfo::State::kOnPath) {
        outcome_.wait_free = false;
        aborted_ = true;
        return leaf();
      }
      return it->second;
    }
    if (depth > limits_.max_depth ||
        outcome_.stats.configs >= limits_.max_configs ||
        (limits_.cancel &&
         limits_.cancel->load(std::memory_order_relaxed))) {
      outcome_.complete = false;
      aborted_ = true;
      return leaf();
    }
    memo_.emplace(key, NodeInfo{NodeInfo::State::kOnPath, 0, {}, {}});
    ++outcome_.stats.configs;

    NodeInfo info = leaf();
    if (e.all_done()) {
      ++outcome_.stats.terminals;
      if (check_) {
        if (auto violation = check_(e)) {
          if (!outcome_.violation) outcome_.violation = std::move(violation);
          if (limits_.stop_at_violation) aborted_ = true;
        }
      }
    } else {
      const auto steps = ctx_->steps(e);
      for (std::size_t idx = 0; idx < steps.size() && !aborted_; ++idx) {
        const auto& step = steps[idx];
        if (sleep & (std::uint64_t{1} << step.p)) continue;
        const std::uint64_t child_sleep =
            ctx_->child_sleep(steps, idx, sleep);
        for (int c = 0; c < step.width; ++c) {
          ++outcome_.stats.edges;
          Engine child = e;
          child.commit(step.p, c);
          const NodeInfo child_info =
              dfs(std::move(child), child_sleep, depth + 1);
          if (aborted_) break;
          info.depth_from =
              std::max(info.depth_from, child_info.depth_from + 1);
          if (limits_.track_access_bounds) {
            for (int g = 0; g < num_objects_; ++g) {
              std::size_t cand =
                  child_info.acc_from[static_cast<std::size_t>(g)];
              if (g == step.object) ++cand;
              info.acc_from[static_cast<std::size_t>(g)] =
                  std::max(info.acc_from[static_cast<std::size_t>(g)], cand);
            }
            const std::size_t hit =
                inv_offset_[static_cast<std::size_t>(step.object)] +
                static_cast<std::size_t>(step.inv);
            for (std::size_t k = 0; k < info.inv_from.size(); ++k) {
              std::size_t cand = child_info.inv_from[k];
              if (k == hit) ++cand;
              info.inv_from[k] = std::max(info.inv_from[k], cand);
            }
          }
        }
      }
    }
    memo_[key] = info;
    return info;
  }

  const ExploreLimits& limits_;
  const TerminalCheck& check_;
  const ExploreOptions& options_;
  std::unique_ptr<ReductionContext> ctx_;
  int num_objects_ = 0;
  std::vector<std::size_t> inv_offset_;
  bool aborted_ = false;
  ExploreOutcome outcome_;
  std::unordered_map<ConfigKey, NodeInfo, ConfigKeyHash> memo_;
};

}  // namespace

ExploreOutcome explore_legacy(const Engine& root,
                              const ExploreOptions& options,
                              const TerminalCheck& check) {
  if (options.reduction == Reduction::kNone) {
    LegacyExplorerImpl impl(options.limits, check);
    return impl.run(root);
  }
  LegacyReducedExplorerImpl impl(options, check);
  return impl.run(root);
}

}  // namespace wfregs
