#include "wfregs/runtime/fuzz.hpp"

#include <stdexcept>

#include "wfregs/runtime/linearizability.hpp"
#include "wfregs/runtime/scheduler.hpp"
#include "wfregs/runtime/system.hpp"

namespace wfregs {

FuzzResult fuzz_linearizable(std::shared_ptr<const Implementation> impl,
                             const std::vector<std::vector<InvId>>& scripts,
                             const FuzzOptions& options) {
  if (!impl) throw std::invalid_argument("fuzz_linearizable: null impl");
  const int n = impl->iface().ports();
  if (static_cast<int>(scripts.size()) != n) {
    throw std::invalid_argument(
        "fuzz_linearizable: need one script per interface port");
  }
  FuzzResult result;
  for (std::size_t run = 0; run < options.runs; ++run) {
    auto sys = std::make_shared<System>(n);
    std::vector<PortId> ports;
    for (PortId p = 0; p < n; ++p) ports.push_back(p);
    const ObjectId obj = sys->add_implemented(impl, ports);
    for (ProcId p = 0; p < n; ++p) {
      ProgramBuilder b;
      for (const InvId inv : scripts[static_cast<std::size_t>(p)]) {
        b.invoke(0, lit(inv), 0);
      }
      b.ret(lit(0));
      sys->set_toplevel(p, b.build("fuzz_p" + std::to_string(p)), {obj});
    }
    Engine e{std::move(sys)};
    RandomScheduler sched(options.seed + 2 * run);
    RandomChooser chooser(options.seed + 2 * run + 1);
    if (!run_to_completion(e, sched, chooser, options.max_steps_per_run)) {
      result.detail = "run " + std::to_string(run) + ": did not finish in " +
                      std::to_string(options.max_steps_per_run) + " steps";
      return result;
    }
    result.total_steps += e.time();
    const auto ops = e.history().ops_on(obj);
    const auto check =
        check_linearizable(ops, impl->iface(), impl->iface_initial());
    if (!check.linearizable) {
      result.detail = "run " + std::to_string(run) +
                      ": history not linearizable:\n" +
                      describe_history(ops, impl->iface());
      return result;
    }
    ++result.runs;
  }
  result.ok = true;
  return result;
}

}  // namespace wfregs
