#include "wfregs/runtime/history_check.hpp"

#include "wfregs/runtime/linearizability.hpp"
#include "wfregs/runtime/regularity.hpp"

namespace wfregs {

namespace {

std::vector<OpRecord> select_ops(const History& history, ObjectId object) {
  if (object == kAnyObject) return history.ops();
  return history.ops_on(object);
}

}  // namespace

HistoryCheckResult check_history_linearizable(const History& history,
                                              const TypeSpec& spec,
                                              StateId initial,
                                              ObjectId object) {
  const auto ops = select_ops(history, object);
  const auto r = check_linearizable(ops, spec, initial);
  HistoryCheckResult out;
  out.ok = r.linearizable;
  if (!out.ok) {
    out.detail = "history not linearizable:\n" + describe_history(ops, spec);
  }
  return out;
}

HistoryCheckResult check_history_regular(const History& history, int values,
                                         int initial, ObjectId object) {
  const auto r = check_regular(select_ops(history, object), values, initial);
  HistoryCheckResult out;
  out.ok = r.regular;
  out.detail = r.detail;
  return out;
}

}  // namespace wfregs
