#include "wfregs/runtime/reduction.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace wfregs {

namespace {

/// Port count of object g (interface ports for implemented objects).
int object_ports(const System& sys, ObjectId g) {
  return sys.is_base(g) ? sys.base(g).spec->ports()
                        : sys.virt(g).impl->iface().ports();
}

/// port_of[g][p]: the port process p holds on object g (kNoPort when p never
/// reaches g).  Computed by walking the declaration tree top-down: top-level
/// ports come from the System, inner ports from the declarations'
/// port_of_outer chains.
std::vector<std::vector<PortId>> compute_port_of(const System& sys) {
  const int n = sys.num_processes();
  std::vector<std::vector<PortId>> port_of(
      static_cast<std::size_t>(sys.num_objects()),
      std::vector<PortId>(static_cast<std::size_t>(n), kNoPort));
  std::vector<ObjectId> order;
  for (ObjectId g = 0; g < sys.num_objects(); ++g) {
    if (!sys.placement(g).path.empty()) continue;
    for (ProcId p = 0; p < n; ++p) {
      port_of[static_cast<std::size_t>(g)][static_cast<std::size_t>(p)] =
          sys.top_port(g, p);
    }
    order.push_back(g);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    const ObjectId g = order[i];
    if (sys.is_base(g)) continue;
    const auto& v = sys.virt(g);
    const auto decls = v.impl->objects();
    for (std::size_t k = 0; k < v.inner.size(); ++k) {
      const ObjectId ig = v.inner[k];
      for (ProcId p = 0; p < n; ++p) {
        const PortId j =
            port_of[static_cast<std::size_t>(g)][static_cast<std::size_t>(p)];
        port_of[static_cast<std::size_t>(ig)][static_cast<std::size_t>(p)] =
            j == kNoPort ? kNoPort
                         : decls[k].port_of_outer[static_cast<std::size_t>(j)];
      }
      order.push_back(ig);
    }
  }
  return port_of;
}

/// True when two processes hold the same port on some object (base or
/// implemented): steps then conflict through shared per-port state, which
/// invalidates the disjoint-object independence assumption.
bool has_shared_ports(const std::vector<std::vector<PortId>>& port_of) {
  for (const auto& row : port_of) {
    for (std::size_t p1 = 0; p1 < row.size(); ++p1) {
      if (row[p1] == kNoPort) continue;
      for (std::size_t p2 = p1 + 1; p2 < row.size(); ++p2) {
        if (row[p1] == row[p2]) return true;
      }
    }
  }
  return false;
}

}  // namespace

bool accesses_commute_at(const TypeSpec& t, StateId q, PortId a, InvId i1,
                         PortId b, InvId i2) {
  using Outcome = std::tuple<StateId, RespId, RespId>;
  std::vector<Outcome> first;
  std::vector<Outcome> second;
  for (const Transition& t1 : t.delta(q, a, i1)) {
    for (const Transition& t2 : t.delta(t1.next, b, i2)) {
      first.emplace_back(t2.next, t1.resp, t2.resp);
    }
  }
  for (const Transition& t2 : t.delta(q, b, i2)) {
    for (const Transition& t1 : t.delta(t2.next, a, i1)) {
      second.emplace_back(t1.next, t1.resp, t2.resp);
    }
  }
  std::ranges::sort(first);
  first.erase(std::unique(first.begin(), first.end()), first.end());
  std::ranges::sort(second);
  second.erase(std::unique(second.begin(), second.end()), second.end());
  return first == second;
}

IndependenceTable IndependenceTable::build(const System& sys) {
  IndependenceTable table = all_dependent(sys);
  for (ObjectId g = 0; g < sys.num_objects(); ++g) {
    if (!sys.is_base(g)) continue;
    // The pairwise outcome-set comparison was precomputed when the spec was
    // compiled (CompiledType's commutation matrix uses the same
    // [(a*I+i1)*P*I + b*I+i2] layout as PerObject::bits), so building the
    // baseline table is a copy instead of a per-build delta traversal.
    const CompiledType& ct = *sys.base(g).compiled;
    const auto matrix = ct.commutation_matrix();
    auto& per = table.objects_[static_cast<std::size_t>(g)];
    std::copy(matrix.begin(), matrix.end(), per.bits.begin());
  }
  return table;
}

IndependenceTable IndependenceTable::all_dependent(const System& sys) {
  IndependenceTable table;
  table.objects_.resize(static_cast<std::size_t>(sys.num_objects()));
  for (ObjectId g = 0; g < sys.num_objects(); ++g) {
    if (!sys.is_base(g)) continue;
    const TypeSpec& t = *sys.base(g).spec;
    auto& per = table.objects_[static_cast<std::size_t>(g)];
    per.ports = t.ports();
    per.invs = t.num_invocations();
    per.bits.assign(static_cast<std::size_t>(per.ports) * per.invs *
                        per.ports * per.invs,
                    0);
  }
  return table;
}

bool IndependenceTable::covers(ObjectId g, int ports, int invs) const {
  if (g < 0 || g >= static_cast<int>(objects_.size())) return false;
  const PerObject& per = objects_[static_cast<std::size_t>(g)];
  return per.ports == ports && per.invs == invs;
}

bool IndependenceTable::independent(ObjectId g, PortId a, InvId i1, PortId b,
                                    InvId i2) const {
  const PerObject& per = objects_[static_cast<std::size_t>(g)];
  const std::size_t idx =
      ((static_cast<std::size_t>(a) * per.invs + static_cast<std::size_t>(i1)) *
           per.ports +
       static_cast<std::size_t>(b)) *
          per.invs +
      static_cast<std::size_t>(i2);
  return per.bits[idx] != 0;
}

void IndependenceTable::set_independent(ObjectId g, PortId a, InvId i1,
                                        PortId b, InvId i2, bool independent) {
  PerObject& per = objects_[static_cast<std::size_t>(g)];
  const std::size_t idx =
      ((static_cast<std::size_t>(a) * per.invs + static_cast<std::size_t>(i1)) *
           per.ports +
       static_cast<std::size_t>(b)) *
          per.invs +
      static_cast<std::size_t>(i2);
  per.bits[idx] = independent ? 1 : 0;
}

std::size_t IndependenceTable::independent_pairs() const {
  std::size_t count = 0;
  for (const PerObject& per : objects_) {
    for (const char bit : per.bits) count += bit != 0;
  }
  return count;
}

std::vector<ProcessRenaming> symmetry_renamings(const System& sys) {
  const int n = sys.num_processes();
  if (n < 2 || n > 6) return {};
  const auto port_of = compute_port_of(sys);
  const int num_objects = sys.num_objects();

  std::vector<ProcessRenaming> result;
  std::vector<ProcId> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  while (std::next_permutation(perm.begin(), perm.end())) {
    // Process states are interchangeable only between processes running the
    // same (shared, immutable) top-level program over the same objects.
    bool valid = true;
    for (ProcId p = 0; p < n && valid; ++p) {
      const ProcId q = perm[static_cast<std::size_t>(p)];
      if (sys.toplevel_program(p).get() != sys.toplevel_program(q).get()) {
        valid = false;
        break;
      }
      const auto& ea = sys.toplevel_env(p);
      const auto& eb = sys.toplevel_env(q);
      if (ea.size() != eb.size()) {
        valid = false;
        break;
      }
      for (std::size_t k = 0; k < ea.size(); ++k) {
        if (ea[k].gid != eb[k].gid) {
          valid = false;
          break;
        }
      }
    }
    if (!valid) continue;

    // Induced port maps: moving process p onto pi(p) moves p's port on every
    // object onto pi(p)'s port.  Conflicting or non-injective assignments
    // mean pi is not an automorphism.
    std::vector<std::vector<PortId>> maps(
        static_cast<std::size_t>(num_objects));
    std::vector<std::vector<char>> assigned(
        static_cast<std::size_t>(num_objects));
    for (ObjectId g = 0; g < num_objects && valid; ++g) {
      const int ports = object_ports(sys, g);
      auto& m = maps[static_cast<std::size_t>(g)];
      auto& as = assigned[static_cast<std::size_t>(g)];
      m.assign(static_cast<std::size_t>(ports), kNoPort);
      as.assign(static_cast<std::size_t>(ports), 0);
      for (ProcId p = 0; p < n && valid; ++p) {
        const PortId a =
            port_of[static_cast<std::size_t>(g)][static_cast<std::size_t>(p)];
        const PortId b = port_of[static_cast<std::size_t>(g)]
                                [static_cast<std::size_t>(
                                    perm[static_cast<std::size_t>(p)])];
        if ((a == kNoPort) != (b == kNoPort)) {
          valid = false;
        } else if (a != kNoPort) {
          if (as[static_cast<std::size_t>(a)] &&
              m[static_cast<std::size_t>(a)] != b) {
            valid = false;
          }
          m[static_cast<std::size_t>(a)] = b;
          as[static_cast<std::size_t>(a)] = 1;
        }
      }
      if (!valid) break;
      // Injectivity over assigned targets, then complete the partial map to
      // a permutation: ports held by no process are inert, so pair leftover
      // sources with leftover targets in ascending order.
      std::vector<char> used(static_cast<std::size_t>(ports), 0);
      for (PortId a = 0; a < ports && valid; ++a) {
        if (!as[static_cast<std::size_t>(a)]) continue;
        const PortId b = m[static_cast<std::size_t>(a)];
        if (used[static_cast<std::size_t>(b)]) valid = false;
        used[static_cast<std::size_t>(b)] = 1;
      }
      if (!valid) break;
      PortId next_free = 0;
      for (PortId a = 0; a < ports; ++a) {
        if (as[static_cast<std::size_t>(a)]) continue;
        while (used[static_cast<std::size_t>(next_free)]) ++next_free;
        m[static_cast<std::size_t>(a)] = next_free;
        used[static_cast<std::size_t>(next_free)] = 1;
      }
    }
    if (!valid) continue;

    // Moved held ports must be behaviourally identical: same transition rows
    // for base objects, same installed programs for implemented objects.
    for (ObjectId g = 0; g < num_objects && valid; ++g) {
      const auto& m = maps[static_cast<std::size_t>(g)];
      const auto& as = assigned[static_cast<std::size_t>(g)];
      for (PortId a = 0; a < static_cast<PortId>(m.size()) && valid; ++a) {
        if (!as[static_cast<std::size_t>(a)]) continue;
        const PortId b = m[static_cast<std::size_t>(a)];
        if (a == b) continue;
        if (sys.is_base(g)) {
          const TypeSpec& t = *sys.base(g).spec;
          for (StateId q = 0; q < t.num_states() && valid; ++q) {
            for (InvId i = 0; i < t.num_invocations() && valid; ++i) {
              valid = std::ranges::equal(t.delta(q, a, i), t.delta(q, b, i));
            }
          }
        } else {
          const Implementation& impl = *sys.virt(g).impl;
          for (InvId i = 0; i < impl.iface().num_invocations() && valid;
               ++i) {
            const bool ha = impl.has_program(i, a);
            if (ha != impl.has_program(i, b)) {
              valid = false;
            } else if (ha &&
                       impl.program(i, a).get() != impl.program(i, b).get()) {
              valid = false;
            }
          }
        }
      }
    }
    if (!valid) continue;

    ProcessRenaming r;
    r.proc_map = perm;
    r.old_proc.assign(static_cast<std::size_t>(n), 0);
    for (ProcId p = 0; p < n; ++p) {
      r.old_proc[static_cast<std::size_t>(perm[static_cast<std::size_t>(p)])] =
          p;
    }
    r.port_map.resize(static_cast<std::size_t>(num_objects));
    r.old_port.resize(static_cast<std::size_t>(num_objects));
    for (ObjectId g = 0; g < num_objects; ++g) {
      auto& m = maps[static_cast<std::size_t>(g)];
      bool identity = true;
      for (PortId a = 0; a < static_cast<PortId>(m.size()); ++a) {
        identity = identity && m[static_cast<std::size_t>(a)] == a;
      }
      if (identity) continue;  // empty vectors mean identity
      auto& inv = r.old_port[static_cast<std::size_t>(g)];
      inv.assign(m.size(), 0);
      for (PortId a = 0; a < static_cast<PortId>(m.size()); ++a) {
        inv[static_cast<std::size_t>(m[static_cast<std::size_t>(a)])] = a;
      }
      r.port_map[static_cast<std::size_t>(g)] = std::move(m);
    }
    result.push_back(std::move(r));
  }
  return result;
}

ReductionContext::ReductionContext(const System& sys, Reduction mode,
                                   const IndependenceTable* injected)
    : sys_(&sys) {
  if (mode == Reduction::kNone) {
    throw std::logic_error("ReductionContext: reduction mode is none");
  }
  const auto port_of = compute_port_of(sys);
  sleep_active_ =
      sys.num_processes() <= 64 && !has_shared_ports(port_of);
  if (sleep_active_) {
    if (injected) {
      for (ObjectId g = 0; g < sys.num_objects(); ++g) {
        if (!sys.is_base(g)) continue;
        const TypeSpec& t = *sys.base(g).spec;
        if (!injected->covers(g, t.ports(), t.num_invocations())) {
          throw std::invalid_argument(
              "ReductionContext: injected independence table does not cover "
              "base object " +
              std::to_string(g));
        }
      }
      table_ = *injected;
    } else {
      table_ = IndependenceTable::build(sys);
    }
  }
  if (mode == Reduction::kSleepSymmetry) {
    renamings_ = symmetry_renamings(sys);
    inverses_.reserve(renamings_.size());
    for (const ProcessRenaming& r : renamings_) {
      // The inverse permutation is the same renaming with the forward and
      // backward maps swapped.
      ProcessRenaming inv;
      inv.proc_map = r.old_proc;
      inv.old_proc = r.proc_map;
      inv.port_map = r.old_port;
      inv.old_port = r.port_map;
      inverses_.push_back(std::move(inv));
    }
  }
}

std::vector<ReductionContext::Step> ReductionContext::steps(
    const Engine& e) const {
  std::vector<Step> out;
  for (const ProcId p : e.runnable()) {
    Step s;
    s.p = p;
    s.object = e.pending_object(p);
    s.port = e.pending_port(p);
    s.inv = e.pending_inv(p);
    s.width = e.pending_choices(p);
    out.push_back(s);
  }
  return out;
}

bool ReductionContext::independent(const Step& a, const Step& b) const {
  if (a.object != b.object) return true;
  return table_.independent(a.object, a.port, a.inv, b.port, b.inv);
}

std::uint64_t ReductionContext::child_sleep(const std::vector<Step>& steps,
                                            std::size_t taken,
                                            std::uint64_t sleep) const {
  if (!sleep_active_) return 0;
  const Step& t = steps[taken];
  std::uint64_t child = 0;
  for (std::size_t k = 0; k < steps.size(); ++k) {
    const Step& s = steps[k];
    const std::uint64_t bit = std::uint64_t{1} << s.p;
    const bool slept = (sleep & bit) != 0;
    // Candidates: processes already asleep here, plus earlier-explored
    // siblings (their subtrees cover the executions that start with them).
    if (!slept && !(k < taken && s.width > 0)) continue;
    if (independent(s, t)) child |= bit;
  }
  return child;
}

ConfigKey ReductionContext::canonical_node_key(Engine& e,
                                               std::uint64_t& sleep) const {
  ConfigKey key;
  canonical_node_key_into(e, sleep, key, nullptr);
  return key;
}

void ReductionContext::canonical_node_key_into(Engine& e, std::uint64_t& sleep,
                                               ConfigKey& out,
                                               int* applied) const {
  e.config_key_into(out);
  std::uint64_t best_sleep = sleep;
  int best_idx = -1;
  ConfigKey scratch;
  for (std::size_t idx = 0; idx < renamings_.size(); ++idx) {
    const ProcessRenaming& r = renamings_[idx];
    e.config_key_into(scratch, r);
    std::uint64_t renamed = 0;
    for (ProcId p = 0; p < static_cast<int>(r.proc_map.size()); ++p) {
      if (sleep & (std::uint64_t{1} << p)) {
        renamed |= std::uint64_t{1} << r.proc_map[static_cast<std::size_t>(p)];
      }
    }
    if (std::tie(scratch.words, renamed) <
        std::tie(out.words, best_sleep)) {
      std::swap(out.words, scratch.words);
      best_sleep = renamed;
      best_idx = static_cast<int>(idx);
    }
  }
  if (best_idx >= 0) {
    e.apply_renaming(renamings_[static_cast<std::size_t>(best_idx)]);
    sleep = best_sleep;
  }
  if (applied) *applied = best_idx;
  out.words.push_back(best_sleep);
}

void ReductionContext::apply_renaming_index(Engine& e, int idx) const {
  e.apply_renaming(renamings_[static_cast<std::size_t>(idx)]);
}

void ReductionContext::undo_renaming(Engine& e, int idx) const {
  e.apply_renaming(inverses_[static_cast<std::size_t>(idx)]);
}

}  // namespace wfregs
