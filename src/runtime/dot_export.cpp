#include "wfregs/runtime/dot_export.hpp"

#include <sstream>
#include <unordered_map>

namespace wfregs {

namespace {

constexpr unsigned kZero = 1u;
constexpr unsigned kOne = 2u;

class DotBuilder {
 public:
  explicit DotBuilder(const DotOptions& options) : options_(options) {}

  std::string run(const Engine& root) {
    nodes_ << "digraph executions {\n"
           << "  rankdir=TB;\n"
           << "  node [shape=circle, label=\"\", width=0.25];\n";
    visit(root);
    std::ostringstream out;
    out << nodes_.str() << edges_.str() << "}\n";
    return out.str();
  }

 private:
  /// Returns (node id, valence mask) of the configuration.
  std::pair<int, unsigned> visit(const Engine& e) {
    const ConfigKey key = e.config_key();
    if (const auto it = ids_.find(key); it != ids_.end()) return it->second;
    const int id = next_id_++;
    ids_.emplace(key, std::pair{id, 0u});
    unsigned valence = 0;
    if (e.all_done()) {
      std::ostringstream label;
      label << "decide";
      for (ProcId p = 0; p < e.system().num_processes(); ++p) {
        const auto r = e.result(p);
        label << " " << (r ? std::to_string(*r) : "-");
        if (r) valence |= (*r == 0 ? kZero : kOne);
      }
      nodes_ << "  n" << id << " [shape=doublecircle, width=0.4, label=\""
             << label.str() << "\", fontsize=8];\n";
    } else if (ids_.size() < options_.max_configs) {
      for (const ProcId p : e.runnable()) {
        const int width = e.pending_choices(p);
        for (int c = 0; c < width; ++c) {
          Engine child = e;
          const auto commit = child.commit(p, c);
          const auto [child_id, child_valence] = visit(child);
          valence |= child_valence;
          const auto& spec = *e.system().base(commit.object).spec;
          edges_ << "  n" << id << " -> n" << child_id << " [label=\"p" << p
                 << ": " << spec.invocation_name(commit.inv) << "->"
                 << spec.response_name(commit.resp) << "\", fontsize=7];\n";
        }
      }
    } else {
      nodes_ << "  n" << id << " [shape=triangle, label=\"...\"];\n";
      truncated_ = true;
    }
    if (options_.color_by_valence && !e.all_done()) {
      const char* color = valence == (kZero | kOne) ? "gold"
                          : valence == kZero        ? "lightblue"
                          : valence == kOne         ? "lightpink"
                                                    : "gray";
      nodes_ << "  n" << id << " [style=filled, fillcolor=" << color
             << "];\n";
    }
    ids_[key] = {id, valence};
    return {id, valence};
  }

  DotOptions options_;
  int next_id_ = 0;
  bool truncated_ = false;
  std::unordered_map<ConfigKey, std::pair<int, unsigned>, ConfigKeyHash>
      ids_;
  std::ostringstream nodes_;
  std::ostringstream edges_;
};

}  // namespace

std::string export_dot(const Engine& root, const DotOptions& options) {
  DotBuilder builder(options);
  return builder.run(root);
}

}  // namespace wfregs
