#include "wfregs/native/conformance.hpp"

#include <sstream>
#include <stdexcept>

#include "wfregs/concurrent/hash.hpp"
#include "wfregs/runtime/history_check.hpp"

namespace wfregs::native {

namespace {

// This file's historical private `mix64` was a clone of the full
// splitmix64 step; seeds must stay bit-identical so recorded failure seeds
// keep replaying.
using concurrent::splitmix64;

/// All oracles the workload declares, first violation wins.
std::optional<std::string> check_round(const Workload& w,
                                       const NativeRuntime& rt,
                                       const History& h) {
  const StateId initial = w.impl->iface_initial();
  if (auto r = check_history_linearizable(h, w.impl->iface(), initial,
                                          rt.iface_object());
      !r.ok) {
    return std::move(r.detail);
  }
  if (w.check_regular) {
    if (auto r = check_history_regular(h, w.regular_values,
                                       static_cast<int>(initial),
                                       rt.iface_object());
        !r.ok) {
      return "regularity violated: " + std::move(r.detail);
    }
  }
  if (w.consensus) {
    std::optional<Val> decision;
    bool proposed = false;
    for (const OpRecord& op : h.ops()) {
      if (!op.response) continue;
      if (decision && *decision != *op.response) {
        return "consensus agreement violated: decisions " +
               std::to_string(*decision) + " and " +
               std::to_string(*op.response);
      }
      decision = *op.response;
    }
    for (const OpRecord& op : h.ops()) {
      // propose(v) has invocation id v, so the inputs are the inv ids.
      if (decision && static_cast<Val>(op.inv) == *decision) proposed = true;
    }
    if (decision && !proposed) {
      return "consensus validity violated: decision " +
             std::to_string(*decision) + " was never proposed";
    }
  }
  return std::nullopt;
}

ConformanceReport run_rounds(const Workload& w,
                             const ConformanceOptions& opts, int first_round,
                             int rounds, bool deterministic,
                             std::optional<std::uint64_t> fixed_seed) {
  if (!w.impl) throw std::invalid_argument("run_conformance: null workload");
  const NativeRuntime rt(w.impl);
  ConformanceReport report;
  report.workload = w.name;
  report.threads = rt.threads();
  report.ops_per_thread =
      w.force_ops_per_thread > 0 ? w.force_ops_per_thread
                                 : opts.ops_per_thread;
  report.deterministic = deterministic;
  for (int round = first_round; round < first_round + rounds; ++round) {
    const std::uint64_t seed =
        fixed_seed ? *fixed_seed : round_seed(opts.seed, round);
    NativeOptions nopts;
    nopts.ops_per_thread = report.ops_per_thread;
    nopts.seed = seed;
    nopts.deterministic = deterministic;
    nopts.yield_period = opts.yield_period;
    const NativeRun out = rt.run(w.pick, nopts);
    ++report.rounds;
    report.ops += out.history.ops().size();
    report.base_accesses += out.base_accesses;
    ++report.histories_checked;
    if (auto violation = check_round(w, rt, out.history)) {
      ConformanceFailure f;
      f.seed = seed;
      f.round = round;
      f.detail = std::move(*violation);
      f.history = out.history.to_string();
      report.failure = std::move(f);
      break;
    }
  }
  return report;
}

}  // namespace

std::uint64_t round_seed(std::uint64_t base, int round) {
  return splitmix64(base + 0x517cc1b727220a95ULL *
                               static_cast<std::uint64_t>(round + 1));
}

ConformanceReport run_conformance(const Workload& w,
                                  const ConformanceOptions& opts) {
  return run_rounds(w, opts, 0, opts.rounds, opts.deterministic,
                    std::nullopt);
}

ConformanceReport replay_round(const Workload& w,
                               const ConformanceOptions& opts,
                               std::uint64_t seed) {
  return run_rounds(w, opts, 0, 1, /*deterministic=*/true, seed);
}

std::string describe_failure(const ConformanceReport& report) {
  if (!report.failure) return "";
  const ConformanceFailure& f = *report.failure;
  std::ostringstream out;
  out << "native conformance FAILED: workload=" << report.workload
      << " threads=" << report.threads << " ops/thread="
      << report.ops_per_thread << " mode="
      << (report.deterministic ? "deterministic" : "free-running")
      << " round=" << f.round << " seed=" << f.seed << "\n";
  out << "replay: wfregs_native " << report.workload << " --threads "
      << report.threads << " --ops " << report.ops_per_thread << " --replay "
      << f.seed << "\n";
  if (!report.deterministic) {
    out << "(free-running schedules are not exactly reproducible; the "
           "replay reruns the seed token-stepped)\n";
  }
  out << f.detail << "\nhistory:\n" << f.history;
  return out.str();
}

}  // namespace wfregs::native
