#include "wfregs/native/workloads.hpp"

#include <stdexcept>

#include "wfregs/consensus/protocols.hpp"
#include "wfregs/core/bounded_register.hpp"
#include "wfregs/registers/chain.hpp"
#include "wfregs/registers/simpson.hpp"
#include "wfregs/registers/snapshot.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::native {

namespace {

void require_threads(const std::string& name, int threads, int lo, int hi) {
  if (threads < lo || threads > hi) {
    throw std::invalid_argument("workload " + name + ": thread count " +
                                std::to_string(threads) + " outside [" +
                                std::to_string(lo) + ", " +
                                std::to_string(hi) + "]");
  }
}

std::shared_ptr<const TypeSpec> share(TypeSpec t) {
  return std::make_shared<const TypeSpec>(std::move(t));
}

/// The deliberately broken construction: a 4-valued register from two bits
/// with no coherence protocol at all.  write(v) stores the low bit, then
/// the high bit; read collects them one at a time.  A read overlapping a
/// write can observe one new bit and one old one -- a torn value no atomic
/// register may return.
std::shared_ptr<const Implementation> torn_register(int ports) {
  const zoo::RegisterLayout iface{4};
  const zoo::RegisterLayout bit{2};
  auto impl = std::make_shared<Implementation>(
      "torn_register", share(zoo::register_type(4, ports)),
      iface.state_of(0));
  std::vector<PortId> identity;
  for (PortId p = 0; p < ports; ++p) identity.push_back(p);
  const auto bit_spec = share(zoo::register_type(2, ports));
  const int lo = impl->add_base(bit_spec, bit.state_of(0), identity);
  const int hi = impl->add_base(bit_spec, bit.state_of(0), identity);
  for (int v = 0; v < 4; ++v) {
    ProgramBuilder b;
    b.invoke(lo, lit(bit.write(v % 2)), 0);
    b.invoke(hi, lit(bit.write(v / 2)), 0);
    b.ret(lit(iface.ok()));
    impl->set_program_all_ports(iface.write(v),
                                b.build("torn_write" + std::to_string(v)));
  }
  ProgramBuilder b;
  b.invoke(lo, lit(bit.read()), 0);
  b.invoke(hi, lit(bit.read()), 1);
  b.ret(reg(0) + reg(1) * lit(2));
  impl->set_program_all_ports(iface.read(), b.build("torn_read"));
  return impl;
}

}  // namespace

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names{
      "chain",    "oneuse-array",   "simpson",
      "snapshot", "shift-register", "torn-register"};
  return names;
}

Workload make_workload(const std::string& name, int threads,
                       int ops_per_thread) {
  if (ops_per_thread < 1) {
    throw std::invalid_argument("make_workload: need at least 1 op/thread");
  }
  Workload w;
  w.name = name;
  if (name == "chain") {
    require_threads(name, threads, 2, 4);
    // Bounded-use construction: size the write budgets to the round.  The
    // picker only writes on even op indices, so the worst case is
    // ceil(ops/2) writes per thread -- the budget drives the timestamp
    // domain of the Vitanyi-Awerbuch MRMW layer, and with it the size of
    // the compiled transition tables (the budget for 4 threads at 4
    // ops/thread costs ~0.5 GiB; the unhalved one would cost ~4 GiB).
    const int writes_per_thread = (ops_per_thread + 1) / 2;
    registers::ChainOptions chain;
    chain.mrmw_max_writes = threads * writes_per_thread + 1;
    chain.mrsw_max_writes = threads * writes_per_thread + 1;
    w.summary = "Section 4.1 register chain, MRMW reads vs writes";
    w.impl = registers::full_chain_register(3, threads, 0, chain);
    const zoo::RegisterLayout lay{3};
    w.pick = [lay](PortId, int k, std::mt19937_64& rng) -> InvId {
      if (k % 2 != 0) return lay.read();
      const auto roll = rng() % 6;
      return roll < 3 ? lay.read()
                      : lay.write(static_cast<int>(roll - 3));
    };
    return w;
  }
  if (name == "oneuse-array") {
    require_threads(name, threads, 2, 2);
    w.summary = "Section 4.3 SRSW bit from one-use bits, reader vs writer";
    w.impl = core::bounded_bit_from_oneuse(ops_per_thread, ops_per_thread, 0);
    const zoo::SrswRegisterLayout lay{2};
    w.pick = [lay](PortId port, int, std::mt19937_64& rng) -> InvId {
      if (port == zoo::SrswRegisterLayout::reader_port()) return lay.read();
      return lay.write(static_cast<int>(rng() % 2));
    };
    w.check_regular = true;
    w.regular_values = 2;
    return w;
  }
  if (name == "simpson") {
    require_threads(name, threads, 2, 2);
    w.summary = "Simpson four-slot SRSW register, reader vs writer";
    w.impl = registers::simpson_register(4, 0);
    const zoo::SrswRegisterLayout lay{4};
    w.pick = [lay](PortId port, int, std::mt19937_64& rng) -> InvId {
      if (port == zoo::SrswRegisterLayout::reader_port()) return lay.read();
      return lay.write(static_cast<int>(rng() % 4));
    };
    w.check_regular = true;
    w.regular_values = 4;
    return w;
  }
  if (name == "snapshot") {
    require_threads(name, threads, 2, 4);
    w.summary = "Afek et al. snapshot, updates racing scans";
    w.impl = registers::snapshot_from_registers(2, threads, ops_per_thread);
    const zoo::SnapshotLayout lay{threads, 2};
    w.pick = [lay](PortId, int, std::mt19937_64& rng) -> InvId {
      const auto roll = rng() % 4;
      return roll < 2 ? lay.scan()
                      : lay.update(static_cast<int>(roll - 2));
    };
    return w;
  }
  if (name == "shift-register") {
    require_threads(name, threads, 2, 4);
    w.summary = "Aspnes consensus from one shift register, width = threads";
    w.impl = consensus::from_shift_register(threads);
    const zoo::ConsensusLayout lay;
    w.pick = [lay](PortId, int, std::mt19937_64& rng) -> InvId {
      return lay.propose(static_cast<int>(rng() % 2));
    };
    w.consensus = true;
    w.force_ops_per_thread = 1;  // consensus objects are single-use
    return w;
  }
  if (name == "torn-register") {
    require_threads(name, threads, 2, 4);
    w.summary = "CONTROL: torn 4-valued register, must FAIL the oracle";
    w.impl = torn_register(threads);
    const zoo::RegisterLayout lay{4};
    w.pick = [lay](PortId port, int k, std::mt19937_64&) -> InvId {
      // Port 0 reads; the rest toggle between the two all-bits-differ
      // values so every half-written window exposes a torn value.
      if (port == 0) return lay.read();
      return k % 2 == 0 ? lay.write(3) : lay.write(0);
    };
    return w;
  }
  throw std::invalid_argument("unknown native workload: " + name);
}

}  // namespace wfregs::native
