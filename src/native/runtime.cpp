#include "wfregs/native/runtime.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <variant>

#include "wfregs/concurrent/hash.hpp"
#include "wfregs/runtime/program.hpp"

namespace wfregs::native {

namespace {

using concurrent::splitmix64;

/// Serializer for deterministic mode.  A thread parks before every
/// observable event; the next event-holder is drawn from the seeded rng
/// only once every live thread is parked (requesting) or finished, so the
/// grant sequence -- and the whole execution -- depends on nothing but the
/// seed.  Between events exactly one thread runs (the one last granted),
/// performing only thread-local bytecode steps.
class TokenScheduler {
 public:
  TokenScheduler(int n, std::uint64_t seed)
      : st_(static_cast<std::size_t>(n), St::kRunning), rng_(seed) {}

  template <class F>
  auto step(int me, F&& fn) {
    std::unique_lock<std::mutex> lk(m_);
    st_[static_cast<std::size_t>(me)] = St::kRequesting;
    maybe_grant();
    cv_.wait(lk, [&] { return granted_ == me; });
    auto result = fn();  // the event itself runs under the token
    st_[static_cast<std::size_t>(me)] = St::kRunning;
    granted_ = -1;
    return result;
  }

  /// Also the abandon path: a thread that dies mid-event must still hand
  /// the token back, or every peer parks forever.
  void finish(int me) {
    const std::lock_guard<std::mutex> lk(m_);
    if (granted_ == me) granted_ = -1;
    st_[static_cast<std::size_t>(me)] = St::kFinished;
    maybe_grant();
  }

 private:
  enum class St { kRunning, kRequesting, kFinished };

  void maybe_grant() {  // caller holds m_
    if (granted_ != -1) return;
    int candidates = 0;
    for (const St s : st_) {
      if (s == St::kRunning) return;  // pick set not yet determined
      if (s == St::kRequesting) ++candidates;
    }
    if (candidates == 0) return;
    int pick = static_cast<int>(rng_() % static_cast<std::uint64_t>(candidates));
    for (std::size_t i = 0; i < st_.size(); ++i) {
      if (st_[i] == St::kRequesting && pick-- == 0) {
        granted_ = static_cast<int>(i);
        break;
      }
    }
    cv_.notify_all();
  }

  std::mutex m_;
  std::condition_variable cv_;
  std::vector<St> st_;
  int granted_ = -1;
  std::mt19937_64 rng_;
};

struct OpEvent {
  PortId port = -1;
  InvId inv = 0;
  Val resp = 0;
  std::uint64_t t_inv = 0;
  std::uint64_t t_resp = 0;
};

struct RoundShared {
  const System* sys = nullptr;
  const std::vector<std::shared_ptr<const ObjectLowering>>* lowerings =
      nullptr;
  std::vector<PaddedState>* state = nullptr;
  std::vector<std::vector<Val>>* persistent = nullptr;
  std::atomic<std::uint64_t>* clock = nullptr;
  TokenScheduler* sched = nullptr;  // null in free-running mode
  const NativeOptions* opts = nullptr;
  ObjectId iface = -1;
};

struct NFrame {
  ProgramRef code;
  Locals locals;
  std::vector<Handle> env;
  int result_reg_in_parent = 0;
  ObjectId persist_gid = -1;
  PortId persist_port = -1;
  int persist_count = 0;
};

std::vector<Handle> make_inner_env(const System::VirtualObject& v,
                                   PortId port) {
  std::vector<Handle> env;
  env.reserve(v.inner.size());
  const auto decls = v.impl->objects();
  for (std::size_t k = 0; k < v.inner.size(); ++k) {
    env.push_back(
        Handle{v.inner[k],
               decls[k].port_of_outer[static_cast<std::size_t>(port)]});
  }
  return env;
}

class NativeWorker {
 public:
  NativeWorker(RoundShared& sh, int p, std::uint64_t seed)
      : sh_(sh), p_(p), rng_(seed) {
    log_.reserve(static_cast<std::size_t>(sh_.opts->ops_per_thread));
  }

  void run(const InvPicker& pick) {
    try {
      for (int k = 0; k < sh_.opts->ops_per_thread; ++k) {
        run_op(pick(p_, k, rng_));
      }
    } catch (...) {
      error = std::current_exception();
    }
    if (sh_.sched) sh_.sched->finish(p_);
  }

  std::vector<OpEvent> log_;
  std::size_t accesses = 0;
  std::exception_ptr error;

 private:
  /// Runs one observable event: token-gated when deterministic, preceded
  /// by a seeded yield when free-running.
  template <class F>
  auto event(F&& fn) {
    if (sh_.sched) return sh_.sched->step(p_, std::forward<F>(fn));
    if (sh_.opts->yield_period > 0 &&
        rng_() % static_cast<std::uint64_t>(sh_.opts->yield_period) == 0) {
      std::this_thread::yield();
    }
    return fn();
  }

  void push_virtual(ObjectId gid, PortId port, InvId inv, int result_reg) {
    const auto& v = sh_.sys->virt(gid);
    const ProgramRef& prog = v.impl->program(inv, port);
    NFrame child;
    child.code = prog;
    const int persist = v.impl->persistent_slots();
    child.locals.regs.resize(
        static_cast<std::size_t>(std::max(prog->num_regs(), persist)), 0);
    if (persist > 0) {
      child.persist_gid = gid;
      child.persist_port = port;
      child.persist_count = persist;
      const auto& store = (*sh_.persistent)[static_cast<std::size_t>(gid)];
      for (int k = 0; k < persist; ++k) {
        child.locals.regs[static_cast<std::size_t>(k)] =
            store[static_cast<std::size_t>(port) * persist +
                  static_cast<std::size_t>(k)];
      }
    }
    child.env = make_inner_env(v, port);
    child.result_reg_in_parent = result_reg;
    stack_.push_back(std::move(child));
  }

  void run_op(InvId inv) {
    OpEvent rec;
    rec.port = p_;
    rec.inv = inv;
    rec.t_inv = event([&] { return sh_.clock->fetch_add(1); });
    stack_.clear();
    push_virtual(sh_.iface, p_, inv, 0);
    // Same frame-transition budget as Engine::prepare.
    constexpr int kMaxTransitions = 1000000;
    for (int guard = 0; guard < kMaxTransitions; ++guard) {
      NFrame& top = stack_.back();
      const Action act = top.code->step(top.locals);
      if (const auto* call = std::get_if<DoInvoke>(&act)) {
        if (call->slot < 0 ||
            call->slot >= static_cast<int>(top.env.size())) {
          throw std::logic_error("native run: program " + top.code->name() +
                                 " invoked unknown environment slot " +
                                 std::to_string(call->slot));
        }
        const Handle h = top.env[static_cast<std::size_t>(call->slot)];
        if (h.port == kNoPort) {
          throw std::logic_error("native run: program " + top.code->name() +
                                 " accessed object " + std::to_string(h.gid) +
                                 " through a port it does not hold");
        }
        if (sh_.sys->is_base(h.gid)) {
          const ObjectLowering& low =
              *(*sh_.lowerings)[static_cast<std::size_t>(h.gid)];
          if (call->inv < 0 ||
              call->inv >= low.compiled().num_invocations()) {
            throw std::out_of_range(
                "native run: program " + top.code->name() +
                " invoked out-of-range invocation " +
                std::to_string(call->inv) + " on type " +
                low.compiled().name());
          }
          const Val resp = event([&] {
            return low.access((*sh_.state)[static_cast<std::size_t>(h.gid)],
                              h.port, call->inv, rng_);
          });
          ++accesses;
          top.locals.regs[static_cast<std::size_t>(call->result_reg)] = resp;
          continue;
        }
        push_virtual(h.gid, h.port, call->inv, call->result_reg);
        continue;
      }
      const Val value = std::get<DoReturn>(act).value;
      const NFrame finished = std::move(stack_.back());
      stack_.pop_back();
      if (finished.persist_count > 0) {
        auto& store =
            (*sh_.persistent)[static_cast<std::size_t>(finished.persist_gid)];
        const std::size_t offset =
            static_cast<std::size_t>(finished.persist_port) *
            static_cast<std::size_t>(finished.persist_count);
        for (int k = 0; k < finished.persist_count; ++k) {
          store[offset + static_cast<std::size_t>(k)] =
              finished.locals.regs[static_cast<std::size_t>(k)];
        }
      }
      if (stack_.empty()) {
        rec.t_resp = event([&] { return sh_.clock->fetch_add(1); });
        rec.resp = value;
        log_.push_back(rec);
        return;
      }
      stack_.back().locals.regs[static_cast<std::size_t>(
          finished.result_reg_in_parent)] = value;
    }
    throw std::runtime_error(
        "native run: frame-transition budget exceeded (runaway nesting?)");
  }

  RoundShared& sh_;
  int p_;
  std::mt19937_64 rng_;
  std::vector<NFrame> stack_;
};

}  // namespace

NativeRuntime::NativeRuntime(std::shared_ptr<const Implementation> impl)
    : impl_(std::move(impl)) {
  if (!impl_) throw std::invalid_argument("NativeRuntime: null implementation");
  threads_ = impl_->iface().ports();
  auto sys = std::make_shared<System>(threads_);
  std::vector<PortId> ports;
  for (PortId p = 0; p < threads_; ++p) ports.push_back(p);
  iface_object_ = sys->add_implemented(impl_, ports);
  sys_ = std::move(sys);

  lowerings_.resize(static_cast<std::size_t>(sys_->num_objects()));
  for (ObjectId g = 0; g < sys_->num_objects(); ++g) {
    if (!sys_->is_base(g)) continue;
    const auto& b = sys_->base(g);
    // One lowering per distinct compiled type (System already deduplicates
    // CompiledType instances across objects sharing a spec).
    for (ObjectId h = 0; h < g; ++h) {
      if (sys_->is_base(h) &&
          sys_->base(h).compiled.get() == b.compiled.get()) {
        lowerings_[static_cast<std::size_t>(g)] =
            lowerings_[static_cast<std::size_t>(h)];
        break;
      }
    }
    if (!lowerings_[static_cast<std::size_t>(g)]) {
      lowerings_[static_cast<std::size_t>(g)] =
          std::make_shared<const ObjectLowering>(b.compiled);
    }
  }

  // Reject wiring in which two interface ports reach the same (object,
  // port): a port has one client in the model, and the native persistent
  // store relies on it for thread exclusivity.
  std::vector<std::vector<char>> seen(
      static_cast<std::size_t>(sys_->num_objects()));
  for (ObjectId g = 0; g < sys_->num_objects(); ++g) {
    const int p = sys_->is_base(g) ? sys_->base(g).spec->ports()
                                   : sys_->virt(g).impl->iface().ports();
    seen[static_cast<std::size_t>(g)].assign(static_cast<std::size_t>(p), 0);
  }
  const std::function<void(ObjectId, PortId)> walk = [&](ObjectId g,
                                                         PortId port) {
    char& mark = seen[static_cast<std::size_t>(g)][static_cast<std::size_t>(
        port)];
    if (mark) {
      throw std::invalid_argument(
          "NativeRuntime: two interface ports share port " +
          std::to_string(port) + " of inner object " + std::to_string(g) +
          "; such wiring cannot run on one thread per interface port");
    }
    mark = 1;
    if (sys_->is_base(g)) return;
    const auto& v = sys_->virt(g);
    const auto decls = v.impl->objects();
    for (std::size_t k = 0; k < v.inner.size(); ++k) {
      const PortId inner =
          decls[k].port_of_outer[static_cast<std::size_t>(port)];
      if (inner == kNoPort) continue;
      walk(v.inner[k], inner);
    }
  };
  for (PortId p = 0; p < threads_; ++p) walk(iface_object_, p);
}

NativeRun NativeRuntime::run(const InvPicker& pick,
                             const NativeOptions& opts) const {
  if (!pick) throw std::invalid_argument("NativeRuntime::run: null picker");
  if (opts.ops_per_thread < 0) {
    throw std::invalid_argument("NativeRuntime::run: negative op count");
  }

  std::vector<PaddedState> state(
      static_cast<std::size_t>(sys_->num_objects()));
  std::vector<std::vector<Val>> persistent(
      static_cast<std::size_t>(sys_->num_objects()));
  for (ObjectId g = 0; g < sys_->num_objects(); ++g) {
    if (sys_->is_base(g)) {
      state[static_cast<std::size_t>(g)].value.store(
          static_cast<std::uint64_t>(sys_->base(g).initial),
          std::memory_order_relaxed);
    } else {
      const auto& v = sys_->virt(g);
      const int slots = v.impl->persistent_slots();
      if (slots > 0) {
        auto& store = persistent[static_cast<std::size_t>(g)];
        store.reserve(static_cast<std::size_t>(slots) *
                      static_cast<std::size_t>(v.impl->iface().ports()));
        for (PortId port = 0; port < v.impl->iface().ports(); ++port) {
          for (const Val init : v.impl->persistent_initial()) {
            store.push_back(init);
          }
        }
      }
    }
  }
  std::atomic<std::uint64_t> clock{0};
  std::unique_ptr<TokenScheduler> sched;
  if (opts.deterministic) {
    sched = std::make_unique<TokenScheduler>(threads_,
                                             splitmix64(opts.seed));
  }

  RoundShared sh;
  sh.sys = sys_.get();
  sh.lowerings = &lowerings_;
  sh.state = &state;
  sh.persistent = &persistent;
  sh.clock = &clock;
  sh.sched = sched.get();
  sh.opts = &opts;
  sh.iface = iface_object_;

  std::vector<std::unique_ptr<NativeWorker>> workers;
  workers.reserve(static_cast<std::size_t>(threads_));
  for (int p = 0; p < threads_; ++p) {
    workers.push_back(std::make_unique<NativeWorker>(
        sh, p, splitmix64(opts.seed ^ (0x1000 + static_cast<unsigned>(p)))));
  }
  {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads_));
    for (int p = 0; p < threads_; ++p) {
      pool.emplace_back(
          [&pick, w = workers[static_cast<std::size_t>(p)].get()] {
            w->run(pick);
          });
    }
    for (auto& t : pool) t.join();
  }

  NativeRun out;
  std::vector<OpEvent> events;
  for (const auto& w : workers) {
    if (w->error) std::rethrow_exception(w->error);
    out.base_accesses += w->accesses;
    events.insert(events.end(), w->log_.begin(), w->log_.end());
  }
  std::ranges::sort(events, [](const OpEvent& a, const OpEvent& b) {
    return a.t_inv < b.t_inv;
  });
  for (const OpEvent& e : events) {
    const int id = out.history.begin_op(e.port, iface_object_, e.port, e.inv,
                                        static_cast<std::size_t>(e.t_inv));
    out.history.end_op(id, e.resp, static_cast<std::size_t>(e.t_resp));
  }
  return out;
}

}  // namespace wfregs::native
