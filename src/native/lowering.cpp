#include "wfregs/native/lowering.hpp"

#include <stdexcept>
#include <string>

namespace wfregs::native {

ObjectLowering::ObjectLowering(std::shared_ptr<const CompiledType> compiled)
    : compiled_(std::move(compiled)) {
  if (!compiled_) throw std::invalid_argument("ObjectLowering: null type");
  const CompiledType& ct = *compiled_;
  plans_.resize(static_cast<std::size_t>(ct.ports()) *
                static_cast<std::size_t>(ct.num_invocations()));
  for (PortId p = 0; p < ct.ports(); ++p) {
    for (InvId i = 0; i < ct.num_invocations(); ++i) {
      AccessPlan& plan = plans_[static_cast<std::size_t>(p) *
                                    static_cast<std::size_t>(
                                        ct.num_invocations()) +
                                static_cast<std::size_t>(i)];
      bool load_like = true;
      bool store_like = true;
      StateId next0 = -1;
      Val resp0 = -1;
      for (StateId q = 0; q < ct.num_states(); ++q) {
        const auto set = ct.delta_unchecked(q, p, i);
        if (set.size() != 1) {
          load_like = store_like = false;
          break;
        }
        if (set[0].next != q) load_like = false;
        if (q == 0) {
          next0 = set[0].next;
          resp0 = set[0].resp;
        } else if (set[0].next != next0 ||
                   static_cast<Val>(set[0].resp) != resp0) {
          store_like = false;
        }
      }
      if (load_like) {
        plan.kind = AccessKind::kLoad;
        plan.load_resp.reserve(static_cast<std::size_t>(ct.num_states()));
        for (StateId q = 0; q < ct.num_states(); ++q) {
          plan.load_resp.push_back(
              static_cast<Val>(ct.delta_unchecked(q, p, i)[0].resp));
        }
      } else if (store_like) {
        plan.kind = AccessKind::kStore;
        plan.store_next = next0;
        plan.store_resp = resp0;
      } else {
        plan.kind = AccessKind::kRmw;
      }
    }
  }
}

Val ObjectLowering::access(PaddedState& cell, PortId port, InvId inv,
                           std::mt19937_64& rng) const {
  const AccessPlan& p = plan(port, inv);
  switch (p.kind) {
    case AccessKind::kLoad: {
      const std::uint64_t q = cell.value.load(std::memory_order_seq_cst);
      return p.load_resp[static_cast<std::size_t>(q)];
    }
    case AccessKind::kStore:
      cell.value.store(static_cast<std::uint64_t>(p.store_next),
                       std::memory_order_seq_cst);
      return p.store_resp;
    case AccessKind::kRmw:
      break;
  }
  std::uint64_t q = cell.value.load(std::memory_order_seq_cst);
  for (;;) {
    const auto set =
        compiled_->delta_unchecked(static_cast<StateId>(q), port, inv);
    if (set.empty()) {
      throw std::logic_error("native access: type " + compiled_->name() +
                             " has no transition for invocation " +
                             std::to_string(inv) + " in state " +
                             std::to_string(q));
    }
    const Transition t =
        set.size() == 1
            ? set[0]
            : set[static_cast<std::size_t>(rng() % set.size())];
    if (cell.value.compare_exchange_weak(
            q, static_cast<std::uint64_t>(t.next),
            std::memory_order_seq_cst, std::memory_order_seq_cst)) {
      return static_cast<Val>(t.resp);
    }
    // q was refreshed by the failed exchange; re-pick from the new state.
  }
}

}  // namespace wfregs::native
