#include "wfregs/registers/mrmw.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "wfregs/registers/mrsw.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::registers {

MrswFactory chained_mrsw_factory(int mrsw_max_writes, bool bits_at_bottom) {
  const SrswFactory srsw =
      bits_at_bottom ? simpson_srsw_factory() : SrswFactory{};
  return [mrsw_max_writes, srsw](int values, int readers, int initial) {
    return mrsw_register(values, readers, initial, mrsw_max_writes, srsw);
  };
}

std::shared_ptr<const Implementation> mrmw_register(
    int values, int ports, int initial_value, int max_writes,
    const MrswFactory& mrsw_factory) {
  if (values < 2) {
    throw std::invalid_argument("mrmw_register: need at least 2 values");
  }
  if (ports < 2) {
    throw std::invalid_argument("mrmw_register: need at least 2 ports");
  }
  if (initial_value < 0 || initial_value >= values) {
    throw std::out_of_range("mrmw_register: initial value out of range");
  }
  const zoo::RegisterLayout iface_lay{values};
  const int n = ports;

  // ts[w] payload: encode(v, seq) = seq * values + v; writer id is implicit
  // in the register identity; ties broken by writer id.
  const int sub_values = values * (max_writes + 1);
  const zoo::MrswRegisterLayout sub{sub_values, n - 1};
  const int initial_enc = initial_value;  // seq 0

  auto impl = std::make_shared<Implementation>(
      "mrmw_register" + std::to_string(values) + "_p" + std::to_string(n),
      std::make_shared<const TypeSpec>(zoo::register_type(values, n)),
      iface_lay.state_of(initial_value));

  const auto sub_spec = std::make_shared<const TypeSpec>(
      zoo::mrsw_register_type(sub_values, n - 1));

  // ts[w]: written by iface port w, read by every other port.  Reader index
  // of port p in ts[w] is p (p < w) or p-1 (p > w).
  std::vector<int> ts;
  for (int w = 0; w < n; ++w) {
    std::vector<PortId> map(static_cast<std::size_t>(n), kNoPort);
    for (int p = 0; p < n; ++p) {
      if (p == w) {
        map[static_cast<std::size_t>(p)] = sub.writer_port();
      } else {
        map[static_cast<std::size_t>(p)] = sub.reader_port(p < w ? p : p - 1);
      }
    }
    if (mrsw_factory) {
      ts.push_back(impl->add_nested(mrsw_factory(sub_values, n - 1,
                                                 initial_enc),
                                    std::move(map)));
    } else {
      ts.push_back(impl->add_base(sub_spec, sub.state_of(initial_enc),
                                  std::move(map)));
    }
  }

  // Persistent per-port cache of the port's own register: (value, seq).
  impl->set_persistent({initial_value, 0});
  constexpr int kOwnVal = 0;
  constexpr int kOwnSeq = 1;
  constexpr int kMax = 2;   // max seq seen (write) / best seq (read)
  constexpr int kBestW = 3;  // best writer id (read)
  constexpr int kBestV = 4;  // best value (read)
  constexpr int kTmp = 5;

  // ---- write(v) on port w ------------------------------------------------------
  for (int w = 0; w < n; ++w) {
    for (int v = 0; v < values; ++v) {
      ProgramBuilder b;
      b.assign(kMax, reg(kOwnSeq));
      for (int p = 0; p < n; ++p) {
        if (p == w) continue;
        b.invoke(ts[static_cast<std::size_t>(p)], lit(sub.read()), kTmp);
        const Label keep = b.make_label();
        b.branch_if(!(reg(kMax) < reg(kTmp) / lit(values)), keep);
        b.assign(kMax, reg(kTmp) / lit(values));
        b.bind(keep);
      }
      b.assign(kOwnSeq, reg(kMax) + lit(1));
      const Label in_range = b.make_label();
      b.branch_if(reg(kOwnSeq) <= lit(max_writes), in_range);
      b.fail("mrmw writer: exceeded max_writes = " +
             std::to_string(max_writes));
      b.bind(in_range);
      b.invoke(ts[static_cast<std::size_t>(w)],
               lit(1) + reg(kOwnSeq) * lit(values) + lit(v), kTmp);
      b.assign(kOwnVal, lit(v));
      b.ret(lit(iface_lay.ok()));
      impl->set_program(iface_lay.write(v), w,
                        b.build("mrmw_write" + std::to_string(v) + "_p" +
                                std::to_string(w)));
    }
  }

  // ---- read() on port r ----------------------------------------------------------
  for (int r = 0; r < n; ++r) {
    ProgramBuilder b;
    b.assign(kMax, reg(kOwnSeq));
    b.assign(kBestW, lit(r));
    b.assign(kBestV, reg(kOwnVal));
    for (int p = 0; p < n; ++p) {
      if (p == r) continue;
      b.invoke(ts[static_cast<std::size_t>(p)], lit(sub.read()), kTmp);
      const Label keep = b.make_label();
      // Lexicographic (seq, writer-id) comparison.
      b.branch_if(!(reg(kMax) < reg(kTmp) / lit(values) ||
                    (reg(kMax) == reg(kTmp) / lit(values) &&
                     reg(kBestW) < lit(p))),
                  keep);
      b.assign(kMax, reg(kTmp) / lit(values));
      b.assign(kBestW, lit(p));
      b.assign(kBestV, reg(kTmp) % lit(values));
      b.bind(keep);
    }
    b.ret(reg(kBestV));
    impl->set_program(iface_lay.read(), r,
                      b.build("mrmw_read_p" + std::to_string(r)));
  }
  return impl;
}

}  // namespace wfregs::registers
