#include "wfregs/registers/snapshot.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::registers {

namespace {

/// Register allocation and encode/decode helpers shared by the scan and
/// update programs.  Register value encoding:
///   enc = (seq * VIEWS + embedded_view) * V + value.
struct SnapshotCodegen {
  int values = 0;       // V
  int ports = 0;        // n
  int views = 0;        // V^n
  int max_updates = 0;  // S
  std::vector<int> regs;  // inner slot of reg[p]

  // Register file layout (register 0 is the persistent own_enc).
  static constexpr int kOwnEnc = 0;
  int c1(int k) const { return 1 + k; }                      // k < n-1
  int c2(int k) const { return 1 + (ports - 1) + k; }        // k < n-1
  int moves(int k) const { return 1 + 2 * (ports - 1) + k; }  // k < n-1
  int scratch() const { return 1 + 3 * (ports - 1); }
  int result() const { return scratch() + 1; }

  Expr dec_value(Expr enc) const { return enc % lit(values); }
  Expr dec_view(Expr enc) const {
    return (enc / lit(values)) % lit(views);
  }
  Expr dec_seq(Expr enc) const { return enc / lit(values * views); }

  /// Index among "other" components for port q: the k-th other port.
  int other_port(int q, int k) const { return k < q ? k : k + 1; }

  /// The MRSW read invocation for a register of this encoding width.
  InvId read_inv() const { return 0; }
  InvId write_base() const { return 1; }  // write(x) = 1 + x

  /// Emits the scan logic for port q; leaves the scanned view id in
  /// result().  Caller provides the builder.
  void emit_scan(ProgramBuilder& b, int q) const {
    const int n1 = ports - 1;
    for (int k = 0; k < n1; ++k) b.assign(moves(k), lit(0));
    const Label done = b.make_label();
    // At most `ports` rounds are needed (pigeonhole); the fail below is an
    // unreachable backstop.
    for (int round = 0; round < ports; ++round) {
      // First collect.
      for (int k = 0; k < n1; ++k) {
        b.invoke(regs[static_cast<std::size_t>(other_port(q, k))],
                 lit(read_inv()), c1(k));
      }
      // Second collect.
      for (int k = 0; k < n1; ++k) {
        b.invoke(regs[static_cast<std::size_t>(other_port(q, k))],
                 lit(read_inv()), c2(k));
      }
      // Identical sequence numbers in both collects => certified view.
      const Label changed = b.make_label();
      for (int k = 0; k < n1; ++k) {
        b.branch_if(!(dec_seq(reg(c1(k))) == dec_seq(reg(c2(k)))), changed);
      }
      // Assemble view = sum over components of value * V^i.
      b.assign(result(), lit(0));
      {
        int scale = 1;
        int k = 0;
        for (int i = 0; i < ports; ++i) {
          if (i == q) {
            b.assign(result(),
                     reg(result()) + dec_value(reg(kOwnEnc)) * lit(scale));
          } else {
            b.assign(result(),
                     reg(result()) + dec_value(reg(c2(k))) * lit(scale));
            ++k;
          }
          scale *= values;
        }
      }
      b.jump(done);
      b.bind(changed);
      // Count movers; borrow an embedded view from any double mover.
      for (int k = 0; k < n1; ++k) {
        const Label not_moved = b.make_label();
        b.branch_if(dec_seq(reg(c1(k))) == dec_seq(reg(c2(k))), not_moved);
        b.assign(moves(k), reg(moves(k)) + lit(1));
        const Label once = b.make_label();
        b.branch_if(reg(moves(k)) < lit(2), once);
        // Second observed move: c2(k)'s embedded view was scanned entirely
        // within our interval -- adopt it.
        b.assign(result(), dec_view(reg(c2(k))));
        b.jump(done);
        b.bind(once);
        b.bind(not_moved);
      }
    }
    b.fail("snapshot scan: exceeded round bound (impossible)");
    b.bind(done);
  }
};

}  // namespace

std::shared_ptr<const Implementation> snapshot_from_registers(
    int values, int ports, int max_updates) {
  if (values < 2) {
    throw std::invalid_argument("snapshot_from_registers: values >= 2");
  }
  if (ports < 2) {
    throw std::invalid_argument("snapshot_from_registers: ports >= 2");
  }
  if (max_updates < 0) {
    throw std::invalid_argument("snapshot_from_registers: max_updates >= 0");
  }
  const zoo::SnapshotLayout lay{ports, values};
  const int views = lay.power();
  const int enc_range = (max_updates + 1) * views * values;

  auto impl = std::make_shared<Implementation>(
      "snapshot" + std::to_string(values) + "v_n" + std::to_string(ports) +
          "_from_registers",
      std::make_shared<const TypeSpec>(zoo::snapshot_type(values, ports)),
      /*initial=*/0);

  SnapshotCodegen gen;
  gen.values = values;
  gen.ports = ports;
  gen.views = views;
  gen.max_updates = max_updates;

  // reg[p]: written by port p, read by every other port.
  const zoo::MrswRegisterLayout sub{enc_range, ports - 1};
  const auto sub_spec = std::make_shared<const TypeSpec>(
      zoo::mrsw_register_type(enc_range, ports - 1));
  for (int p = 0; p < ports; ++p) {
    std::vector<PortId> map(static_cast<std::size_t>(ports), kNoPort);
    for (int q = 0; q < ports; ++q) {
      map[static_cast<std::size_t>(q)] =
          q == p ? sub.writer_port() : sub.reader_port(q < p ? q : q - 1);
    }
    gen.regs.push_back(impl->add_base(sub_spec, sub.state_of(0),
                                      std::move(map)));
  }

  // Persistent register 0: the port's own encoded register contents.
  impl->set_persistent({0});

  // ---- scan on each port ---------------------------------------------------
  for (int q = 0; q < ports; ++q) {
    ProgramBuilder b;
    gen.emit_scan(b, q);
    b.ret(reg(gen.result()));
    impl->set_program(lay.scan(), q,
                      b.build("snapshot_scan_p" + std::to_string(q)));
  }

  // ---- update(v) on each port ------------------------------------------------
  for (int p = 0; p < ports; ++p) {
    for (int v = 0; v < values; ++v) {
      ProgramBuilder b;
      gen.emit_scan(b, p);  // the embedded view, left in gen.result()
      // seq := own seq + 1, capped.
      b.assign(gen.scratch(), gen.dec_seq(reg(SnapshotCodegen::kOwnEnc)) +
                                  lit(1));
      const Label in_range = b.make_label();
      b.branch_if(reg(gen.scratch()) <= lit(max_updates), in_range);
      b.fail("snapshot update: exceeded max_updates = " +
             std::to_string(max_updates));
      b.bind(in_range);
      b.assign(SnapshotCodegen::kOwnEnc,
               (reg(gen.scratch()) * lit(views) + reg(gen.result())) *
                       lit(values) +
                   lit(v));
      b.invoke(gen.regs[static_cast<std::size_t>(p)],
               lit(gen.write_base()) + reg(SnapshotCodegen::kOwnEnc),
               gen.scratch());
      b.ret(lit(lay.ok()));
      impl->set_program(lay.update(v), p,
                        b.build("snapshot_update" + std::to_string(v) +
                                "_p" + std::to_string(p)));
    }
  }
  return impl;
}

}  // namespace wfregs::registers
