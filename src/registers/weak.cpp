#include "wfregs/registers/weak.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::registers {

namespace {

std::shared_ptr<Implementation> carrier(const std::string& name, int values,
                                        int initial) {
  if (initial < 0 || initial >= values) {
    throw std::out_of_range(name + ": initial value out of range");
  }
  const zoo::SrswRegisterLayout lay{values};
  return std::make_shared<Implementation>(
      name, std::make_shared<const TypeSpec>(zoo::srsw_register_type(values)),
      lay.state_of(initial));
}

const std::vector<PortId> kOrientation{
    zoo::WeakBitLayout::reader_port(), zoo::WeakBitLayout::writer_port()};

std::shared_ptr<const Implementation> bit_from_safe(int initial_value,
                                                    bool write_on_change,
                                                    const std::string& name) {
  const zoo::SrswRegisterLayout iface{2};
  const zoo::WeakBitLayout weak;
  auto impl = carrier(name, 2, initial_value);
  const int bit = impl->add_base(
      std::make_shared<const TypeSpec>(zoo::weak_bit_type(
          zoo::WeakBitKind::kSafe)),
      weak.idle(initial_value), kOrientation);
  // Persistent register 0: the writer's cached current value.
  impl->set_persistent({initial_value});
  {
    ProgramBuilder b;
    b.invoke(bit, lit(weak.read()), 1);
    b.ret(reg(1));
    impl->set_program(iface.read(), zoo::SrswRegisterLayout::reader_port(),
                      b.build(name + "_read"));
  }
  for (int v = 0; v < 2; ++v) {
    ProgramBuilder b;
    if (write_on_change) {
      const Label do_write = b.make_label();
      b.branch_if(!(reg(0) == lit(v)), do_write);
      b.ret(lit(iface.ok()));  // unchanged: do not touch the safe bit
      b.bind(do_write);
    }
    b.invoke(bit, lit(weak.start_write(v)), 1);
    b.invoke(bit, lit(weak.finish_write()), 1);
    b.assign(0, lit(v));
    b.ret(lit(iface.ok()));
    impl->set_program(iface.write(v),
                      zoo::SrswRegisterLayout::writer_port(),
                      b.build(name + "_write" + std::to_string(v)));
  }
  return impl;
}

}  // namespace

std::shared_ptr<const Implementation> regular_bit_from_safe(
    int initial_value) {
  return bit_from_safe(initial_value, /*write_on_change=*/true,
                       "regular_bit_from_safe");
}

std::shared_ptr<const Implementation> naive_bit_from_safe(int initial_value) {
  return bit_from_safe(initial_value, /*write_on_change=*/false,
                       "naive_bit_from_safe");
}

std::shared_ptr<const Implementation> regular_multivalued_from_bits(
    int values, int initial_value) {
  if (values < 2) {
    throw std::invalid_argument(
        "regular_multivalued_from_bits: values >= 2");
  }
  const zoo::SrswRegisterLayout iface{values};
  const zoo::WeakBitLayout weak;
  auto impl = carrier("regular_unary" + std::to_string(values), values,
                      initial_value);
  const auto bit_spec = std::make_shared<const TypeSpec>(
      zoo::weak_bit_type(zoo::WeakBitKind::kRegular));
  std::vector<int> bits;
  for (int v = 0; v < values; ++v) {
    bits.push_back(impl->add_base(
        bit_spec, weak.idle(v == initial_value ? 1 : 0), kOrientation));
  }
  constexpr int kTmp = 0;
  {
    // read: scan upward, return the first set bit.
    ProgramBuilder b;
    for (int v = 0; v < values; ++v) {
      b.invoke(bits[static_cast<std::size_t>(v)], lit(weak.read()), kTmp);
      const Label not_set = b.make_label();
      b.branch_if(!(reg(kTmp) == lit(1)), not_set);
      b.ret(lit(iface.value_resp(v)));
      b.bind(not_set);
    }
    b.fail("unary regular register: no bit set (violates Lamport's "
           "invariant)");
    impl->set_program(iface.read(), zoo::SrswRegisterLayout::reader_port(),
                      b.build("unary_read"));
  }
  for (int v = 0; v < values; ++v) {
    // write(v): set bit v, then clear bits v-1 .. 0 downward.
    ProgramBuilder b;
    b.invoke(bits[static_cast<std::size_t>(v)], lit(weak.start_write(1)),
             kTmp);
    b.invoke(bits[static_cast<std::size_t>(v)], lit(weak.finish_write()),
             kTmp);
    for (int j = v - 1; j >= 0; --j) {
      b.invoke(bits[static_cast<std::size_t>(j)], lit(weak.start_write(0)),
               kTmp);
      b.invoke(bits[static_cast<std::size_t>(j)], lit(weak.finish_write()),
               kTmp);
    }
    b.ret(lit(iface.ok()));
    impl->set_program(iface.write(v),
                      zoo::SrswRegisterLayout::writer_port(),
                      b.build("unary_write" + std::to_string(v)));
  }
  return impl;
}

}  // namespace wfregs::registers
