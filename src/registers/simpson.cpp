#include "wfregs/registers/simpson.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::registers {

namespace {

std::shared_ptr<const TypeSpec> srsw_bit_spec() {
  static const auto spec =
      std::make_shared<const TypeSpec>(zoo::srsw_bit_type());
  return spec;
}

}  // namespace

int slot_bits(int values) {
  if (values < 2) {
    throw std::invalid_argument("slot_bits: need at least 2 values");
  }
  int bits = 0;
  int span = 1;
  while (span < values) {
    span *= 2;
    ++bits;
  }
  return bits;
}

std::shared_ptr<const Implementation> simpson_register(int values,
                                                       int initial_value) {
  if (initial_value < 0 || initial_value >= values) {
    throw std::out_of_range("simpson_register: initial value out of range");
  }
  const zoo::SrswRegisterLayout iface_lay{values};
  const zoo::SrswRegisterLayout bit{2};
  const int nbits = slot_bits(values);

  auto impl = std::make_shared<Implementation>(
      "simpson_register" + std::to_string(values),
      std::make_shared<const TypeSpec>(zoo::srsw_register_type(values)),
      iface_lay.state_of(initial_value));

  // Writer-owned bits: the outer reader holds the bit's read port, the outer
  // writer its write port.
  const std::vector<PortId> writer_owned{
      zoo::SrswRegisterLayout::reader_port(),
      zoo::SrswRegisterLayout::writer_port()};
  // Reader-owned bits (the `reading` handshake) are oriented the other way.
  const std::vector<PortId> reader_owned{
      zoo::SrswRegisterLayout::writer_port(),
      zoo::SrswRegisterLayout::reader_port()};

  // data[pair][index][b]; slot data[0][0] initially encodes initial_value.
  int data_slot[2][2];
  for (int pair = 0; pair < 2; ++pair) {
    for (int index = 0; index < 2; ++index) {
      int first = -1;
      for (int b = 0; b < nbits; ++b) {
        const int init_bit =
            (pair == 0 && index == 0) ? ((initial_value >> b) & 1) : 0;
        const int slot = impl->add_base(srsw_bit_spec(),
                                        bit.state_of(init_bit), writer_owned);
        if (first < 0) first = slot;
      }
      data_slot[pair][index] = first;  // bits occupy first..first+nbits-1
    }
  }
  const int slot_bit[2] = {
      impl->add_base(srsw_bit_spec(), bit.state_of(0), writer_owned),
      impl->add_base(srsw_bit_spec(), bit.state_of(0), writer_owned)};
  const int latest = impl->add_base(srsw_bit_spec(), bit.state_of(0),
                                    writer_owned);
  const int reading = impl->add_base(srsw_bit_spec(), bit.state_of(0),
                                     reader_owned);

  // Persistent writer locals: the writer's copies of slot_bit[0], slot_bit[1]
  // (registers 0 and 1 of every frame; the reader leaves them alone).
  impl->set_persistent({0, 0});
  constexpr int kWSlot0 = 0;
  constexpr int kWSlot1 = 1;
  constexpr int kPair = 2;
  constexpr int kIndex = 3;
  constexpr int kTmp = 4;
  constexpr int kAcc = 5;

  // ---- write(v) ------------------------------------------------------------
  for (int v = 0; v < values; ++v) {
    ProgramBuilder b_;
    // pair := 1 - reading
    b_.invoke(reading, lit(bit.read()), kPair);
    b_.assign(kPair, lit(1) - reg(kPair));
    // index := 1 - wslot[pair]
    const Label use1 = b_.make_label();
    const Label have_index = b_.make_label();
    b_.branch_if(reg(kPair) == lit(1), use1);
    b_.assign(kIndex, lit(1) - reg(kWSlot0));
    b_.jump(have_index);
    b_.bind(use1);
    b_.assign(kIndex, lit(1) - reg(kWSlot1));
    b_.bind(have_index);
    // data[pair][index] := v, bit by bit (4-way branch on pair/index).
    const Label after_data = b_.make_label();
    std::vector<Label> cases;
    for (int pair = 0; pair < 2; ++pair) {
      for (int index = 0; index < 2; ++index) {
        cases.push_back(b_.make_label());
      }
    }
    for (int pair = 0; pair < 2; ++pair) {
      for (int index = 0; index < 2; ++index) {
        b_.branch_if(reg(kPair) == lit(pair) && reg(kIndex) == lit(index),
                     cases[static_cast<std::size_t>(pair * 2 + index)]);
      }
    }
    b_.fail("simpson writer: impossible pair/index");
    for (int pair = 0; pair < 2; ++pair) {
      for (int index = 0; index < 2; ++index) {
        b_.bind(cases[static_cast<std::size_t>(pair * 2 + index)]);
        for (int bb = 0; bb < nbits; ++bb) {
          b_.invoke(data_slot[pair][index] + bb,
                    lit(bit.write((v >> bb) & 1)), kTmp);
        }
        b_.jump(after_data);
      }
    }
    b_.bind(after_data);
    // slot[pair] := index; update the writer's local copy.
    const Label s1 = b_.make_label();
    const Label after_slot = b_.make_label();
    b_.branch_if(reg(kPair) == lit(1), s1);
    b_.invoke(slot_bit[0], lit(1) + reg(kIndex), kTmp);
    b_.assign(kWSlot0, reg(kIndex));
    b_.jump(after_slot);
    b_.bind(s1);
    b_.invoke(slot_bit[1], lit(1) + reg(kIndex), kTmp);
    b_.assign(kWSlot1, reg(kIndex));
    b_.bind(after_slot);
    // latest := pair.
    b_.invoke(latest, lit(1) + reg(kPair), kTmp);
    b_.ret(lit(iface_lay.ok()));
    impl->set_program(iface_lay.write(v),
                      zoo::SrswRegisterLayout::writer_port(),
                      b_.build("simpson_write" + std::to_string(v)));
  }

  // ---- read() ---------------------------------------------------------------
  {
    ProgramBuilder b_;
    // pair := latest; reading := pair.
    b_.invoke(latest, lit(bit.read()), kPair);
    b_.invoke(reading, lit(1) + reg(kPair), kTmp);
    // index := slot[pair].
    const Label r1 = b_.make_label();
    const Label have_index = b_.make_label();
    b_.branch_if(reg(kPair) == lit(1), r1);
    b_.invoke(slot_bit[0], lit(bit.read()), kIndex);
    b_.jump(have_index);
    b_.bind(r1);
    b_.invoke(slot_bit[1], lit(bit.read()), kIndex);
    b_.bind(have_index);
    // value := data[pair][index], bit by bit.
    const Label done = b_.make_label();
    std::vector<Label> cases;
    for (int pair = 0; pair < 2; ++pair) {
      for (int index = 0; index < 2; ++index) {
        cases.push_back(b_.make_label());
      }
    }
    for (int pair = 0; pair < 2; ++pair) {
      for (int index = 0; index < 2; ++index) {
        b_.branch_if(reg(kPair) == lit(pair) && reg(kIndex) == lit(index),
                     cases[static_cast<std::size_t>(pair * 2 + index)]);
      }
    }
    b_.fail("simpson reader: impossible pair/index");
    for (int pair = 0; pair < 2; ++pair) {
      for (int index = 0; index < 2; ++index) {
        b_.bind(cases[static_cast<std::size_t>(pair * 2 + index)]);
        b_.assign(kAcc, lit(0));
        for (int bb = 0; bb < nbits; ++bb) {
          b_.invoke(data_slot[pair][index] + bb, lit(bit.read()), kTmp);
          b_.assign(kAcc, reg(kAcc) + reg(kTmp) * lit(1 << bb));
        }
        b_.jump(done);
      }
    }
    b_.bind(done);
    b_.ret(reg(kAcc));
    impl->set_program(iface_lay.read(),
                      zoo::SrswRegisterLayout::reader_port(),
                      b_.build("simpson_read"));
  }
  return impl;
}

}  // namespace wfregs::registers
