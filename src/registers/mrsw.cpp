#include "wfregs/registers/mrsw.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "wfregs/registers/simpson.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::registers {

SrswFactory simpson_srsw_factory() {
  return [](int values, int initial) {
    return simpson_register(values, initial);
  };
}

std::shared_ptr<const Implementation> mrsw_register(
    int values, int readers, int initial_value, int max_writes,
    const SrswFactory& srsw_factory) {
  if (values < 2) {
    throw std::invalid_argument("mrsw_register: need at least 2 values");
  }
  if (readers < 1) {
    throw std::invalid_argument("mrsw_register: need at least 1 reader");
  }
  if (max_writes < 0) {
    throw std::invalid_argument("mrsw_register: max_writes must be >= 0");
  }
  if (initial_value < 0 || initial_value >= values) {
    throw std::out_of_range("mrsw_register: initial value out of range");
  }
  const zoo::MrswRegisterLayout iface_lay{values, readers};
  const int n = readers + 1;  // iface ports

  // Sub-register payload: encode(v, seq) = seq * values + v.
  const int sub_values = values * (max_writes + 1);
  const zoo::SrswRegisterLayout sub{sub_values};
  const int initial_enc = initial_value;  // seq 0

  auto impl = std::make_shared<Implementation>(
      "mrsw_register" + std::to_string(values) + "_r" +
          std::to_string(readers),
      std::make_shared<const TypeSpec>(zoo::mrsw_register_type(values,
                                                               readers)),
      iface_lay.state_of(initial_value));

  const auto srsw_spec =
      std::make_shared<const TypeSpec>(zoo::srsw_register_type(sub_values));

  // Adds one SRSW sub-register whose read port belongs to iface port
  // `rd` and whose write port belongs to iface port `wr`.
  const auto add_sub = [&](PortId rd, PortId wr) {
    std::vector<PortId> map(static_cast<std::size_t>(n), kNoPort);
    map[static_cast<std::size_t>(rd)] =
        zoo::SrswRegisterLayout::reader_port();
    map[static_cast<std::size_t>(wr)] =
        zoo::SrswRegisterLayout::writer_port();
    if (srsw_factory) {
      return impl->add_nested(srsw_factory(sub_values, initial_enc),
                              std::move(map));
    }
    return impl->add_base(srsw_spec, sub.state_of(initial_enc),
                          std::move(map));
  };

  // table[i]: writer -> reader i.
  std::vector<int> table;
  for (int i = 0; i < readers; ++i) {
    table.push_back(add_sub(iface_lay.reader_port(i),
                            iface_lay.writer_port()));
  }
  // report[j][i] (j != i): reader j -> reader i.
  std::vector<std::vector<int>> report(
      static_cast<std::size_t>(readers),
      std::vector<int>(static_cast<std::size_t>(readers), -1));
  for (int j = 0; j < readers; ++j) {
    for (int i = 0; i < readers; ++i) {
      if (i == j) continue;
      report[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          add_sub(iface_lay.reader_port(i), iface_lay.reader_port(j));
    }
  }

  // Persistent register 0: the writer's sequence counter (readers leave it).
  impl->set_persistent({0});
  constexpr int kSeq = 0;
  constexpr int kBest = 1;
  constexpr int kTmp = 2;

  // ---- write(v) --------------------------------------------------------------
  for (int v = 0; v < values; ++v) {
    ProgramBuilder b;
    b.assign(kSeq, reg(kSeq) + lit(1));
    const Label in_range = b.make_label();
    b.branch_if(reg(kSeq) <= lit(max_writes), in_range);
    b.fail("mrsw writer: exceeded max_writes = " +
           std::to_string(max_writes));
    b.bind(in_range);
    for (int i = 0; i < readers; ++i) {
      b.invoke(table[static_cast<std::size_t>(i)],
               lit(1) + reg(kSeq) * lit(values) + lit(v), kTmp);
    }
    b.ret(lit(iface_lay.ok()));
    impl->set_program(iface_lay.write(v), iface_lay.writer_port(),
                      b.build("mrsw_write" + std::to_string(v)));
  }

  // ---- read() on each reader port ---------------------------------------------
  for (int i = 0; i < readers; ++i) {
    ProgramBuilder b;
    b.invoke(table[static_cast<std::size_t>(i)], lit(sub.read()), kBest);
    for (int j = 0; j < readers; ++j) {
      if (j == i) continue;
      b.invoke(report[static_cast<std::size_t>(j)][static_cast<std::size_t>(
                   i)],
               lit(sub.read()), kTmp);
      const Label keep = b.make_label();
      b.branch_if(!(reg(kBest) / lit(values) < reg(kTmp) / lit(values)),
                  keep);
      b.assign(kBest, reg(kTmp));
      b.bind(keep);
    }
    for (int j = 0; j < readers; ++j) {
      if (j == i) continue;
      b.invoke(report[static_cast<std::size_t>(i)][static_cast<std::size_t>(
                   j)],
               lit(1) + reg(kBest), kTmp);
    }
    b.ret(reg(kBest) % lit(values));
    impl->set_program(iface_lay.read(), iface_lay.reader_port(i),
                      b.build("mrsw_read_r" + std::to_string(i)));
  }
  return impl;
}

}  // namespace wfregs::registers
