#include "wfregs/registers/chain.hpp"

#include "wfregs/registers/mrmw.hpp"
#include "wfregs/registers/mrsw.hpp"

namespace wfregs::registers {

std::shared_ptr<const Implementation> full_chain_register(
    int values, int ports, int initial_value, const ChainOptions& options) {
  return mrmw_register(
      values, ports, initial_value, options.mrmw_max_writes,
      chained_mrsw_factory(options.mrsw_max_writes, options.bits_at_bottom));
}

namespace {

void census_into(const Implementation& impl,
                 std::map<std::string, int>& counts) {
  for (const ObjectDecl& decl : impl.objects()) {
    if (decl.is_base()) {
      ++counts[decl.spec->name()];
    } else {
      census_into(*decl.impl, counts);
    }
  }
}

}  // namespace

std::map<std::string, int> base_census(const Implementation& impl) {
  std::map<std::string, int> counts;
  census_into(impl, counts);
  return counts;
}

}  // namespace wfregs::registers
