#include "wfregs/typesys/type_algebra.hpp"

#include <stdexcept>
#include <vector>

namespace wfregs {

TypeSpec reachable_part(const TypeSpec& t, StateId initial) {
  const auto reach = t.reachable_from(initial);
  std::vector<StateId> dense(static_cast<std::size_t>(t.num_states()), -1);
  // `initial` becomes state 0; the rest keep their relative order.
  dense[static_cast<std::size_t>(initial)] = 0;
  StateId next_id = 1;
  for (const StateId q : reach) {
    if (q != initial) dense[static_cast<std::size_t>(q)] = next_id++;
  }
  TypeSpec out(t.name() + "_reach", t.ports(), next_id, t.num_invocations(),
               t.num_responses());
  for (const StateId q : reach) {
    out.name_state(dense[static_cast<std::size_t>(q)], t.state_name(q));
    for (PortId p = 0; p < t.ports(); ++p) {
      for (InvId i = 0; i < t.num_invocations(); ++i) {
        for (const Transition& tr : t.delta(q, p, i)) {
          out.add(dense[static_cast<std::size_t>(q)], p, i,
                  dense[static_cast<std::size_t>(tr.next)], tr.resp);
        }
      }
    }
  }
  for (InvId i = 0; i < t.num_invocations(); ++i) {
    out.name_invocation(i, t.invocation_name(i));
  }
  for (RespId r = 0; r < t.num_responses(); ++r) {
    out.name_response(r, t.response_name(r));
  }
  out.validate();
  return out;
}

TypeSpec with_ports(const TypeSpec& t, int ports, PortId clone_from) {
  if (ports < 1) throw std::invalid_argument("with_ports: need >= 1 port");
  if (clone_from < 0 || clone_from >= t.ports()) {
    throw std::out_of_range("with_ports: clone_from out of range");
  }
  TypeSpec out(t.name(), ports, t.num_states(), t.num_invocations(),
               t.num_responses());
  for (StateId q = 0; q < t.num_states(); ++q) {
    out.name_state(q, t.state_name(q));
    for (PortId p = 0; p < ports; ++p) {
      const PortId src = p < t.ports() ? p : clone_from;
      for (InvId i = 0; i < t.num_invocations(); ++i) {
        for (const Transition& tr : t.delta(q, src, i)) {
          out.add(q, p, i, tr.next, tr.resp);
        }
      }
    }
  }
  for (InvId i = 0; i < t.num_invocations(); ++i) {
    out.name_invocation(i, t.invocation_name(i));
  }
  for (RespId r = 0; r < t.num_responses(); ++r) {
    out.name_response(r, t.response_name(r));
  }
  out.validate();
  return out;
}

}  // namespace wfregs
