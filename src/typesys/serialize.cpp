#include "wfregs/typesys/serialize.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace wfregs {

namespace {

[[noreturn]] void fail_at(int line, const std::string& what) {
  throw std::runtime_error("parse_type: line " + std::to_string(line) +
                           ": " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;
    tokens.push_back(tok);
  }
  return tokens;
}

/// Resolves a token as a name from `names` or as a numeric index < count.
int resolve(const std::string& tok, const std::vector<std::string>& names,
            int count, const char* kind, int line) {
  for (std::size_t k = 0; k < names.size(); ++k) {
    if (names[k] == tok) return static_cast<int>(k);
  }
  try {
    std::size_t pos = 0;
    const int index = std::stoi(tok, &pos);
    if (pos == tok.size() && index >= 0 && index < count) return index;
  } catch (const std::exception&) {
    // fall through to the error below
  }
  fail_at(line, std::string("unknown ") + kind + " '" + tok + "'");
}

}  // namespace

std::string print_type(const TypeSpec& t) {
  std::ostringstream out;
  out << "type " << t.name() << "\n";
  out << "ports " << t.ports() << "\n";
  out << "states " << t.num_states();
  for (StateId q = 0; q < t.num_states(); ++q) out << " " << t.state_name(q);
  out << "\ninvocations " << t.num_invocations();
  for (InvId i = 0; i < t.num_invocations(); ++i) {
    out << " " << t.invocation_name(i);
  }
  out << "\nresponses " << t.num_responses();
  for (RespId r = 0; r < t.num_responses(); ++r) {
    out << " " << t.response_name(r);
  }
  out << "\n";
  for (StateId q = 0; q < t.num_states(); ++q) {
    for (InvId i = 0; i < t.num_invocations(); ++i) {
      // Collapse to '*' when every port has the same transition set.
      bool uniform = true;
      const auto base = t.delta(q, 0, i);
      for (PortId p = 1; p < t.ports() && uniform; ++p) {
        const auto set = t.delta(q, p, i);
        uniform = std::equal(base.begin(), base.end(), set.begin(),
                             set.end());
      }
      const int port_span = uniform ? 1 : t.ports();
      for (PortId p = 0; p < port_span; ++p) {
        for (const Transition& tr : t.delta(q, p, i)) {
          out << "delta " << t.state_name(q) << " "
              << (uniform ? std::string("*") : std::to_string(p)) << " "
              << t.invocation_name(i) << " -> " << t.state_name(tr.next)
              << " " << t.response_name(tr.resp) << "\n";
        }
      }
    }
  }
  return out.str();
}

TypeSpec parse_type(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;

  std::string name;
  std::optional<int> ports, num_states, num_invs, num_resps;
  std::vector<std::string> state_names, inv_names, resp_names;
  std::optional<TypeSpec> spec;
  bool any_delta = false;

  const auto header = [&](const std::vector<std::string>& tokens,
                          std::optional<int>& slot,
                          std::vector<std::string>& names) {
    if (tokens.size() < 2) fail_at(line_no, "missing count");
    int count = 0;
    try {
      count = std::stoi(tokens[1]);
    } catch (const std::exception&) {
      fail_at(line_no, "bad count '" + tokens[1] + "'");
    }
    if (count <= 0) fail_at(line_no, "count must be positive");
    slot = count;
    names.assign(tokens.begin() + 2, tokens.end());
    if (static_cast<int>(names.size()) > count) {
      fail_at(line_no, "more names than the declared count");
    }
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kw = tokens[0];
    if (kw == "type") {
      if (tokens.size() != 2) fail_at(line_no, "type needs exactly a name");
      name = tokens[1];
    } else if (kw == "ports") {
      if (tokens.size() != 2) fail_at(line_no, "ports needs a count");
      try {
        ports = std::stoi(tokens[1]);
      } catch (const std::exception&) {
        fail_at(line_no, "bad port count");
      }
    } else if (kw == "states") {
      header(tokens, num_states, state_names);
    } else if (kw == "invocations") {
      header(tokens, num_invs, inv_names);
    } else if (kw == "responses") {
      header(tokens, num_resps, resp_names);
    } else if (kw == "delta") {
      if (!spec) {
        if (!ports || !num_states || !num_invs || !num_resps) {
          fail_at(line_no,
                  "delta before ports/states/invocations/responses headers");
        }
        spec.emplace(name.empty() ? "anonymous" : name, *ports, *num_states,
                     *num_invs, *num_resps);
        for (std::size_t k = 0; k < state_names.size(); ++k) {
          spec->name_state(static_cast<StateId>(k), state_names[k]);
        }
        for (std::size_t k = 0; k < inv_names.size(); ++k) {
          spec->name_invocation(static_cast<InvId>(k), inv_names[k]);
        }
        for (std::size_t k = 0; k < resp_names.size(); ++k) {
          spec->name_response(static_cast<RespId>(k), resp_names[k]);
        }
      }
      // delta <state> <port|*> <inv> -> <state> <resp>
      if (tokens.size() != 7 || tokens[4] != "->") {
        fail_at(line_no,
                "expected: delta <state> <port|*> <invocation> -> <state> "
                "<response>");
      }
      const int q = resolve(tokens[1], state_names, *num_states, "state",
                            line_no);
      const int i = resolve(tokens[3], inv_names, *num_invs, "invocation",
                            line_no);
      const int q2 = resolve(tokens[5], state_names, *num_states, "state",
                             line_no);
      const int r = resolve(tokens[6], resp_names, *num_resps, "response",
                            line_no);
      any_delta = true;
      if (tokens[2] == "*") {
        spec->add_oblivious(q, i, q2, r);
      } else {
        const int p = resolve(tokens[2], {}, *ports, "port", line_no);
        spec->add(q, p, i, q2, r);
      }
    } else {
      fail_at(line_no, "unknown keyword '" + kw + "'");
    }
  }
  if (!spec || !any_delta) {
    throw std::runtime_error("parse_type: no transitions defined");
  }
  try {
    spec->validate();
  } catch (const std::logic_error& e) {
    throw std::runtime_error(std::string("parse_type: ") + e.what());
  }
  return *std::move(spec);
}

TypeSpec load_type(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_type: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_type(buffer.str());
}

void save_type(const TypeSpec& t, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_type: cannot open " + path);
  out << print_type(t);
}

}  // namespace wfregs
