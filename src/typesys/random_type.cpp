#include "wfregs/typesys/random_type.hpp"

#include <random>
#include <stdexcept>
#include <string>

namespace wfregs {

TypeSpec random_type(const RandomTypeParams& params, std::uint64_t seed) {
  if (params.branching < 1) {
    throw std::invalid_argument("random_type: branching must be >= 1");
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<StateId> state_dist(0, params.num_states - 1);
  std::uniform_int_distribution<RespId> resp_dist(0, params.num_responses - 1);
  std::uniform_int_distribution<int> count_dist(1, 2 * params.branching - 1);

  TypeSpec t("random_seed" + std::to_string(seed), params.ports,
             params.num_states, params.num_invocations, params.num_responses);
  const int port_span = params.oblivious ? 1 : params.ports;
  for (StateId q = 0; q < params.num_states; ++q) {
    for (PortId p = 0; p < port_span; ++p) {
      for (InvId i = 0; i < params.num_invocations; ++i) {
        const int count = params.branching == 1 ? 1 : count_dist(rng);
        for (int k = 0; k < count; ++k) {
          const StateId next = state_dist(rng);
          const RespId resp = resp_dist(rng);
          if (params.oblivious) {
            t.add_oblivious(q, i, next, resp);
          } else {
            t.add(q, p, i, next, resp);
          }
        }
      }
    }
  }
  t.validate();
  return t;
}

}  // namespace wfregs
