#include "wfregs/typesys/triviality.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <tuple>

namespace wfregs {

namespace {

void require_deterministic(const TypeSpec& t, const char* who) {
  if (!t.is_deterministic()) {
    throw std::invalid_argument(std::string(who) + ": type " + t.name() +
                                " must be deterministic");
  }
}

void require_oblivious(const TypeSpec& t, const char* who) {
  if (!t.is_oblivious()) {
    throw std::invalid_argument(std::string(who) + ": type " + t.name() +
                                " must be oblivious");
  }
}

}  // namespace

// ---- Section 5.1 ------------------------------------------------------------

bool is_trivial_oblivious_from(const TypeSpec& t, StateId q) {
  require_deterministic(t, "is_trivial_oblivious_from");
  require_oblivious(t, "is_trivial_oblivious_from");
  const auto reach = t.reachable_from(q);
  for (InvId i = 0; i < t.num_invocations(); ++i) {
    const RespId base = t.delta_det(q, 0, i).resp;
    for (const StateId p : reach) {
      if (t.delta_det(p, 0, i).resp != base) return false;
    }
  }
  return true;
}

bool is_trivial_oblivious(const TypeSpec& t) {
  return !find_oblivious_witness(t).has_value();
}

std::optional<ObliviousWitness> find_oblivious_witness(const TypeSpec& t) {
  require_deterministic(t, "find_oblivious_witness");
  require_oblivious(t, "find_oblivious_witness");
  // Response constancy over every reachable set is equivalent to response
  // constancy across every one-step edge: if some i distinguishes q from a
  // state reachable in several steps, then along the path there is an edge
  // across which i's response first changes.  This is the constructive
  // content of the paper's remark that p may be chosen one step from q.
  for (StateId q = 0; q < t.num_states(); ++q) {
    for (InvId ip = 0; ip < t.num_invocations(); ++ip) {
      const StateId p = t.delta_det(q, 0, ip).next;
      for (InvId i = 0; i < t.num_invocations(); ++i) {
        const RespId rq = t.delta_det(q, 0, i).resp;
        const RespId rp = t.delta_det(p, 0, i).resp;
        if (rq != rp) {
          return ObliviousWitness{q, ip, p, i, rq, rp};
        }
      }
    }
  }
  return std::nullopt;
}

// ---- Mealy equivalence under one port ----------------------------------------

std::vector<int> port_trace_classes(const TypeSpec& t, PortId j) {
  require_deterministic(t, "port_trace_classes");
  const int n = t.num_states();
  const int ni = t.num_invocations();
  // Initial partition: by the response signature of a single invocation.
  std::vector<int> cls(static_cast<std::size_t>(n), 0);
  {
    std::map<std::vector<RespId>, int> index;
    for (StateId q = 0; q < n; ++q) {
      std::vector<RespId> sig(static_cast<std::size_t>(ni));
      for (InvId i = 0; i < ni; ++i) {
        sig[static_cast<std::size_t>(i)] = t.delta_det(q, j, i).resp;
      }
      const auto [it, _] =
          index.try_emplace(std::move(sig), static_cast<int>(index.size()));
      cls[static_cast<std::size_t>(q)] = it->second;
    }
  }
  // Refine by successor classes until a fixed point (Moore-style).
  for (;;) {
    std::map<std::pair<int, std::vector<int>>, int> index;
    std::vector<int> next(static_cast<std::size_t>(n), 0);
    for (StateId q = 0; q < n; ++q) {
      std::vector<int> succ(static_cast<std::size_t>(ni));
      for (InvId i = 0; i < ni; ++i) {
        succ[static_cast<std::size_t>(i)] =
            cls[static_cast<std::size_t>(t.delta_det(q, j, i).next)];
      }
      const auto [it, _] = index.try_emplace(
          {cls[static_cast<std::size_t>(q)], std::move(succ)},
          static_cast<int>(index.size()));
      next[static_cast<std::size_t>(q)] = it->second;
    }
    if (next == cls) return cls;
    cls = std::move(next);
  }
}

std::optional<std::vector<InvId>> shortest_distinguishing_sequence(
    const TypeSpec& t, PortId j, StateId q1, StateId q2) {
  require_deterministic(t, "shortest_distinguishing_sequence");
  if (q1 == q2) return std::nullopt;
  const int n = t.num_states();
  // BFS over ordered state pairs.  The first pair reached from which some
  // invocation yields differing responses gives the shortest distinguishing
  // sequence; differences can only appear at its last position (a shorter
  // prefix would otherwise already distinguish).
  const auto pack = [n](StateId a, StateId b) {
    return static_cast<std::size_t>(a) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(b);
  };
  struct Pred {
    StateId a = -1, b = -1;
    InvId via = -1;
  };
  std::vector<Pred> pred(static_cast<std::size_t>(n) * n);
  std::vector<char> seen(static_cast<std::size_t>(n) * n, 0);
  std::deque<std::pair<StateId, StateId>> frontier{{q1, q2}};
  seen[pack(q1, q2)] = 1;
  while (!frontier.empty()) {
    const auto [a, b] = frontier.front();
    frontier.pop_front();
    for (InvId i = 0; i < t.num_invocations(); ++i) {
      const Transition ta = t.delta_det(a, j, i);
      const Transition tb = t.delta_det(b, j, i);
      if (ta.resp != tb.resp) {
        // Reconstruct the path of invocations leading to (a, b), then i.
        std::vector<InvId> seq{i};
        StateId ca = a, cb = b;
        while (!(ca == q1 && cb == q2)) {
          const Pred& pr = pred[pack(ca, cb)];
          seq.push_back(pr.via);
          ca = pr.a;
          cb = pr.b;
        }
        std::ranges::reverse(seq);
        return seq;
      }
      const auto key = pack(ta.next, tb.next);
      if (!seen[key] && ta.next != tb.next) {
        seen[key] = 1;
        pred[key] = Pred{a, b, i};
        frontier.emplace_back(ta.next, tb.next);
      }
    }
  }
  return std::nullopt;
}

// ---- Section 5.2 --------------------------------------------------------------

std::optional<NonTrivialPair> find_nontrivial_pair(const TypeSpec& t) {
  require_deterministic(t, "find_nontrivial_pair");
  if (t.ports() < 2) return std::nullopt;
  std::optional<NonTrivialPair> best;
  for (PortId reader = 0; reader < t.ports(); ++reader) {
    const auto cls = port_trace_classes(t, reader);
    for (PortId writer = 0; writer < t.ports(); ++writer) {
      if (writer == reader) continue;
      for (StateId q = 0; q < t.num_states(); ++q) {
        for (InvId iw = 0; iw < t.num_invocations(); ++iw) {
          const StateId p = t.delta_det(q, writer, iw).next;
          if (cls[static_cast<std::size_t>(q)] ==
              cls[static_cast<std::size_t>(p)]) {
            continue;  // the write is invisible to this reader port
          }
          auto seq = shortest_distinguishing_sequence(t, reader, q, p);
          if (!seq) continue;  // should not happen given the class check
          if (best && best->read_seq.size() <= seq->size()) continue;
          NonTrivialPair pair;
          pair.q = q;
          pair.reader_port = reader;
          pair.writer_port = writer;
          pair.write_inv = iw;
          pair.read_seq = std::move(*seq);
          // Replay the read sequence from q (H1) and from p (H2) to record
          // the differing final responses.
          StateId a = q, b = p;
          for (const InvId i : pair.read_seq) {
            const Transition ta = t.delta_det(a, reader, i);
            const Transition tb = t.delta_det(b, reader, i);
            pair.unwritten_resp = ta.resp;
            pair.written_resp = tb.resp;
            a = ta.next;
            b = tb.next;
          }
          best = std::move(pair);
        }
      }
    }
  }
  return best;
}

bool is_trivial_general(const TypeSpec& t) {
  return !find_nontrivial_pair(t).has_value();
}

}  // namespace wfregs
