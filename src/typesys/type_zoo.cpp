#include "wfregs/typesys/type_zoo.hpp"

#include <stdexcept>
#include <vector>

namespace wfregs::zoo {

namespace {

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

}  // namespace

TypeSpec register_type(int values, int ports) {
  require(values >= 2, "register_type: need at least 2 values");
  require(ports >= 1, "register_type: need at least 1 port");
  const RegisterLayout lay{values};
  TypeSpec t("register" + std::to_string(values), ports, values, 1 + values,
             values + 1);
  for (int v = 0; v < values; ++v) {
    t.name_state(lay.state_of(v), "val" + std::to_string(v));
    t.name_invocation(lay.write(v), "write(" + std::to_string(v) + ")");
    t.name_response(lay.value_resp(v), std::to_string(v));
  }
  t.name_invocation(lay.read(), "read");
  t.name_response(lay.ok(), "ok");
  for (int q = 0; q < values; ++q) {
    t.add_oblivious(lay.state_of(q), lay.read(), lay.state_of(q),
                    lay.value_resp(q));
    for (int v = 0; v < values; ++v) {
      t.add_oblivious(lay.state_of(q), lay.write(v), lay.state_of(v),
                      lay.ok());
    }
  }
  t.validate();
  return t;
}

TypeSpec bit_type(int ports) { return register_type(2, ports); }

TypeSpec srsw_register_type(int values) {
  require(values >= 2, "srsw_register_type: need at least 2 values");
  const SrswRegisterLayout lay{values};
  TypeSpec t("srsw_register" + std::to_string(values), 2, values, 1 + values,
             values + 2);
  for (int v = 0; v < values; ++v) {
    t.name_state(lay.state_of(v), "val" + std::to_string(v));
    t.name_invocation(lay.write(v), "write(" + std::to_string(v) + ")");
    t.name_response(lay.value_resp(v), std::to_string(v));
  }
  t.name_invocation(lay.read(), "read");
  t.name_response(lay.ok(), "ok");
  t.name_response(lay.err(), "err");
  for (int q = 0; q < values; ++q) {
    // Port 0: reads work, writes are rejected.
    t.add(lay.state_of(q), SrswRegisterLayout::reader_port(), lay.read(),
          lay.state_of(q), lay.value_resp(q));
    for (int v = 0; v < values; ++v) {
      t.add(lay.state_of(q), SrswRegisterLayout::reader_port(), lay.write(v),
            lay.state_of(q), lay.err());
    }
    // Port 1: writes work, reads are rejected.
    t.add(lay.state_of(q), SrswRegisterLayout::writer_port(), lay.read(),
          lay.state_of(q), lay.err());
    for (int v = 0; v < values; ++v) {
      t.add(lay.state_of(q), SrswRegisterLayout::writer_port(), lay.write(v),
            lay.state_of(v), lay.ok());
    }
  }
  t.validate();
  return t;
}

TypeSpec srsw_bit_type() { return srsw_register_type(2); }

TypeSpec mrsw_register_type(int values, int readers) {
  require(values >= 2, "mrsw_register_type: need at least 2 values");
  require(readers >= 1, "mrsw_register_type: need at least 1 reader");
  const MrswRegisterLayout lay{values, readers};
  TypeSpec t("mrsw_register" + std::to_string(values) + "_r" +
                 std::to_string(readers),
             readers + 1, values, 1 + values, values + 2);
  for (int v = 0; v < values; ++v) {
    t.name_state(lay.state_of(v), "val" + std::to_string(v));
    t.name_invocation(lay.write(v), "write(" + std::to_string(v) + ")");
    t.name_response(lay.value_resp(v), std::to_string(v));
  }
  t.name_invocation(lay.read(), "read");
  t.name_response(lay.ok(), "ok");
  t.name_response(lay.err(), "err");
  for (int q = 0; q < values; ++q) {
    for (int i = 0; i < readers; ++i) {
      t.add(lay.state_of(q), lay.reader_port(i), lay.read(), lay.state_of(q),
            lay.value_resp(q));
      for (int v = 0; v < values; ++v) {
        t.add(lay.state_of(q), lay.reader_port(i), lay.write(v),
              lay.state_of(q), lay.err());
      }
    }
    t.add(lay.state_of(q), lay.writer_port(), lay.read(), lay.state_of(q),
          lay.err());
    for (int v = 0; v < values; ++v) {
      t.add(lay.state_of(q), lay.writer_port(), lay.write(v), lay.state_of(v),
            lay.ok());
    }
  }
  t.validate();
  return t;
}

TypeSpec one_use_bit_type() {
  const OneUseBitLayout lay;
  TypeSpec t("one_use_bit", 2, 3, 2, 3);
  t.name_state(lay.unset(), "UNSET");
  t.name_state(lay.set(), "SET");
  t.name_state(lay.dead(), "DEAD");
  t.name_invocation(lay.read(), "read");
  t.name_invocation(lay.write(), "write");
  t.name_response(lay.zero(), "0");
  t.name_response(lay.one(), "1");
  t.name_response(lay.ok(), "ok");
  // Section 3, verbatim:
  //   delta(UNSET, read)  = {<DEAD, 0>}
  //   delta(SET,   read)  = {<DEAD, 1>}
  //   delta(DEAD,  read)  = {<DEAD, 0>, <DEAD, 1>}
  //   delta(UNSET, write) = {<SET, ok>}
  //   delta(SET,   write) = {<DEAD, ok>}
  //   delta(DEAD,  write) = {<DEAD, ok>}
  t.add_oblivious(lay.unset(), lay.read(), lay.dead(), lay.zero());
  t.add_oblivious(lay.set(), lay.read(), lay.dead(), lay.one());
  t.add_oblivious(lay.dead(), lay.read(), lay.dead(), lay.zero());
  t.add_oblivious(lay.dead(), lay.read(), lay.dead(), lay.one());
  t.add_oblivious(lay.unset(), lay.write(), lay.set(), lay.ok());
  t.add_oblivious(lay.set(), lay.write(), lay.dead(), lay.ok());
  t.add_oblivious(lay.dead(), lay.write(), lay.dead(), lay.ok());
  t.validate();
  return t;
}

TypeSpec consensus_type(int ports) {
  require(ports >= 1, "consensus_type: need at least 1 port");
  const ConsensusLayout lay;
  TypeSpec t("consensus" + std::to_string(ports), ports, 3, 2, 2);
  t.name_state(lay.bottom(), "bottom");
  t.name_state(lay.decided(0), "decided0");
  t.name_state(lay.decided(1), "decided1");
  for (int v = 0; v < 2; ++v) {
    t.name_invocation(lay.propose(v), "propose(" + std::to_string(v) + ")");
    t.name_response(lay.decide_resp(v), std::to_string(v));
  }
  // Section 2.1: the first invocation fixes all future responses.
  for (int v = 0; v < 2; ++v) {
    t.add_oblivious(lay.bottom(), lay.propose(v), lay.decided(v),
                    lay.decide_resp(v));
    for (int u = 0; u < 2; ++u) {
      t.add_oblivious(lay.decided(v), lay.propose(u), lay.decided(v),
                      lay.decide_resp(v));
    }
  }
  t.validate();
  return t;
}

TypeSpec multi_consensus_type(int values, int ports) {
  require(values >= 2, "multi_consensus_type: need at least 2 values");
  require(ports >= 1, "multi_consensus_type: need at least 1 port");
  const MultiConsensusLayout lay{values};
  TypeSpec t("consensus" + std::to_string(values) + "v_n" +
                 std::to_string(ports),
             ports, 1 + values, values, values);
  t.name_state(lay.bottom(), "bottom");
  for (int v = 0; v < values; ++v) {
    t.name_state(lay.decided(v), "decided" + std::to_string(v));
    t.name_invocation(lay.propose(v), "propose(" + std::to_string(v) + ")");
    t.name_response(lay.decide_resp(v), std::to_string(v));
  }
  for (int v = 0; v < values; ++v) {
    t.add_oblivious(lay.bottom(), lay.propose(v), lay.decided(v),
                    lay.decide_resp(v));
    for (int u = 0; u < values; ++u) {
      t.add_oblivious(lay.decided(v), lay.propose(u), lay.decided(v),
                      lay.decide_resp(v));
    }
  }
  t.validate();
  return t;
}

TypeSpec test_and_set_type(int ports) {
  require(ports >= 1, "test_and_set_type: need at least 1 port");
  const TestAndSetLayout lay;
  TypeSpec t("test_and_set", ports, 2, 1, 2);
  t.name_state(0, "clear");
  t.name_state(1, "set");
  t.name_invocation(lay.test_and_set(), "test&set");
  t.name_response(lay.old_value(0), "0");
  t.name_response(lay.old_value(1), "1");
  t.add_oblivious(0, lay.test_and_set(), 1, lay.old_value(0));
  t.add_oblivious(1, lay.test_and_set(), 1, lay.old_value(1));
  t.validate();
  return t;
}

TypeSpec fetch_and_add_type(int cap, int ports) {
  require(cap >= 1, "fetch_and_add_type: cap must be >= 1");
  require(ports >= 1, "fetch_and_add_type: need at least 1 port");
  const FetchAndAddLayout lay{cap};
  TypeSpec t("fetch_and_add_cap" + std::to_string(cap), ports, cap + 1, 1,
             cap + 1);
  t.name_invocation(lay.fetch_and_add(), "fetch&add");
  for (int q = 0; q <= cap; ++q) {
    t.name_state(q, "count" + std::to_string(q));
    t.name_response(lay.old_value(q), std::to_string(q));
    const int next = q < cap ? q + 1 : cap;
    t.add_oblivious(q, lay.fetch_and_add(), next, lay.old_value(q));
  }
  t.validate();
  return t;
}

TypeSpec cas_type(int values, int ports) {
  require(values >= 2, "cas_type: need at least 2 values");
  require(ports >= 1, "cas_type: need at least 1 port");
  const CasLayout lay{values};
  TypeSpec t("cas" + std::to_string(values), ports, values,
             1 + values * values, values + 2);
  t.name_invocation(lay.read(), "read");
  t.name_response(lay.success(), "success");
  t.name_response(lay.failure(), "failure");
  for (int v = 0; v < values; ++v) {
    t.name_state(v, "val" + std::to_string(v));
    t.name_response(lay.value_resp(v), std::to_string(v));
  }
  for (int e = 0; e < values; ++e) {
    for (int d = 0; d < values; ++d) {
      t.name_invocation(lay.cas(e, d), "cas(" + std::to_string(e) + "," +
                                           std::to_string(d) + ")");
    }
  }
  for (int q = 0; q < values; ++q) {
    t.add_oblivious(q, lay.read(), q, lay.value_resp(q));
    for (int e = 0; e < values; ++e) {
      for (int d = 0; d < values; ++d) {
        if (q == e) {
          t.add_oblivious(q, lay.cas(e, d), d, lay.success());
        } else {
          t.add_oblivious(q, lay.cas(e, d), q, lay.failure());
        }
      }
    }
  }
  t.validate();
  return t;
}

TypeSpec cas_old_type(int values, int ports) {
  require(values >= 2, "cas_old_type: need at least 2 values");
  require(ports >= 1, "cas_old_type: need at least 1 port");
  const CasOldLayout lay{values};
  TypeSpec t("cas_old" + std::to_string(values), ports, values,
             values * values, values);
  for (int v = 0; v < values; ++v) {
    t.name_state(v, "val" + std::to_string(v));
    t.name_response(lay.old_value(v), std::to_string(v));
  }
  for (int e = 0; e < values; ++e) {
    for (int d = 0; d < values; ++d) {
      t.name_invocation(lay.cas(e, d), "cas(" + std::to_string(e) + "," +
                                           std::to_string(d) + ")");
      for (int q = 0; q < values; ++q) {
        t.add_oblivious(q, lay.cas(e, d), q == e ? d : q, lay.old_value(q));
      }
    }
  }
  t.validate();
  return t;
}

TypeSpec sticky_bit_type(int ports) {
  require(ports >= 1, "sticky_bit_type: need at least 1 port");
  const StickyBitLayout lay;
  TypeSpec t("sticky_bit", ports, 3, 3, 3);
  t.name_state(lay.bottom_state(), "bottom");
  t.name_state(lay.stuck(0), "stuck0");
  t.name_state(lay.stuck(1), "stuck1");
  t.name_invocation(lay.read(), "read");
  t.name_response(lay.bottom(), "bottom");
  for (int v = 0; v < 2; ++v) {
    t.name_invocation(lay.jam(v), "jam(" + std::to_string(v) + ")");
    t.name_response(lay.value_resp(v), std::to_string(v));
  }
  for (int v = 0; v < 2; ++v) {
    // jam(v) sticks the first value and always reports the stuck value.
    t.add_oblivious(lay.bottom_state(), lay.jam(v), lay.stuck(v),
                    lay.value_resp(v));
    for (int w = 0; w < 2; ++w) {
      t.add_oblivious(lay.stuck(w), lay.jam(v), lay.stuck(w),
                      lay.value_resp(w));
    }
  }
  t.add_oblivious(lay.bottom_state(), lay.read(), lay.bottom_state(),
                  lay.bottom());
  for (int w = 0; w < 2; ++w) {
    t.add_oblivious(lay.stuck(w), lay.read(), lay.stuck(w),
                    lay.value_resp(w));
  }
  t.validate();
  return t;
}

int QueueLayout::num_states() const {
  // All sequences of length 0..capacity over `values` symbols.
  int total = 0;
  int level = 1;
  for (int len = 0; len <= capacity; ++len) {
    total += level;
    level *= values;
  }
  return total;
}

StateId QueueLayout::state_of(std::span<const int> content) const {
  if (static_cast<int>(content.size()) > capacity) {
    throw std::out_of_range("QueueLayout::state_of: content too long");
  }
  // States are numbered by length first (all shorter sequences precede all
  // longer ones), then lexicographically within a length.
  int offset = 0;
  int level = 1;
  for (int len = 0; len < static_cast<int>(content.size()); ++len) {
    offset += level;
    level *= values;
  }
  int index = 0;
  for (const int v : content) {
    if (v < 0 || v >= values) {
      throw std::out_of_range("QueueLayout::state_of: value out of range");
    }
    index = index * values + v;
  }
  return offset + index;
}

TypeSpec queue_type(int capacity, int values, int ports) {
  require(capacity >= 1, "queue_type: capacity must be >= 1");
  require(values >= 2, "queue_type: need at least 2 values");
  require(ports >= 1, "queue_type: need at least 1 port");
  const QueueLayout lay{capacity, values};
  TypeSpec t("queue_cap" + std::to_string(capacity) + "_vals" +
                 std::to_string(values),
             ports, lay.num_states(), values + 1, values + 3);
  t.name_invocation(lay.dequeue(), "dequeue");
  t.name_response(lay.ok(), "ok");
  t.name_response(lay.empty(), "empty");
  t.name_response(lay.full(), "full");
  for (int v = 0; v < values; ++v) {
    t.name_invocation(lay.enqueue(v), "enqueue(" + std::to_string(v) + ")");
    t.name_response(lay.front_value(v), std::to_string(v));
  }
  // Enumerate queue contents recursively and wire up delta.
  std::vector<int> content;
  const auto visit = [&](const auto& self) -> void {
    const StateId q = lay.state_of(content);
    if (content.empty()) {
      t.add_oblivious(q, lay.dequeue(), q, lay.empty());
    } else {
      const int front = content.front();
      std::vector<int> rest(content.begin() + 1, content.end());
      t.add_oblivious(q, lay.dequeue(), lay.state_of(rest),
                      lay.front_value(front));
    }
    for (int v = 0; v < values; ++v) {
      if (static_cast<int>(content.size()) < capacity) {
        content.push_back(v);
        const StateId next = lay.state_of(content);
        content.pop_back();
        t.add_oblivious(q, lay.enqueue(v), next, lay.ok());
      } else {
        t.add_oblivious(q, lay.enqueue(v), q, lay.full());
      }
    }
    if (static_cast<int>(content.size()) < capacity) {
      for (int v = 0; v < values; ++v) {
        content.push_back(v);
        self(self);
        content.pop_back();
      }
    }
  };
  visit(visit);
  t.validate();
  return t;
}

int StackLayout::num_states() const {
  int total = 0;
  int level = 1;
  for (int len = 0; len <= capacity; ++len) {
    total += level;
    level *= values;
  }
  return total;
}

StateId StackLayout::state_of(std::span<const int> content) const {
  if (static_cast<int>(content.size()) > capacity) {
    throw std::out_of_range("StackLayout::state_of: content too long");
  }
  int offset = 0;
  int level = 1;
  for (int len = 0; len < static_cast<int>(content.size()); ++len) {
    offset += level;
    level *= values;
  }
  int index = 0;
  for (const int v : content) {
    if (v < 0 || v >= values) {
      throw std::out_of_range("StackLayout::state_of: value out of range");
    }
    index = index * values + v;
  }
  return offset + index;
}

TypeSpec stack_type(int capacity, int values, int ports) {
  require(capacity >= 1, "stack_type: capacity must be >= 1");
  require(values >= 2, "stack_type: need at least 2 values");
  require(ports >= 1, "stack_type: need at least 1 port");
  const StackLayout lay{capacity, values};
  TypeSpec t("stack_cap" + std::to_string(capacity) + "_vals" +
                 std::to_string(values),
             ports, lay.num_states(), values + 1, values + 3);
  t.name_invocation(lay.pop(), "pop");
  t.name_response(lay.ok(), "ok");
  t.name_response(lay.empty(), "empty");
  t.name_response(lay.full(), "full");
  for (int v = 0; v < values; ++v) {
    t.name_invocation(lay.push(v), "push(" + std::to_string(v) + ")");
    t.name_response(lay.top_value(v), std::to_string(v));
  }
  std::vector<int> content;
  const auto visit = [&](const auto& self) -> void {
    const StateId q = lay.state_of(content);
    if (content.empty()) {
      t.add_oblivious(q, lay.pop(), q, lay.empty());
    } else {
      const int top = content.back();
      content.pop_back();
      const StateId rest = lay.state_of(content);
      content.push_back(top);
      t.add_oblivious(q, lay.pop(), rest, lay.top_value(top));
    }
    for (int v = 0; v < values; ++v) {
      if (static_cast<int>(content.size()) < capacity) {
        content.push_back(v);
        const StateId next = lay.state_of(content);
        content.pop_back();
        t.add_oblivious(q, lay.push(v), next, lay.ok());
      } else {
        t.add_oblivious(q, lay.push(v), q, lay.full());
      }
    }
    if (static_cast<int>(content.size()) < capacity) {
      for (int v = 0; v < values; ++v) {
        content.push_back(v);
        self(self);
        content.pop_back();
      }
    }
  };
  visit(visit);
  t.validate();
  return t;
}

TypeSpec trivial_toggle_type(int ports) {
  require(ports >= 1, "trivial_toggle_type: need at least 1 port");
  TypeSpec t("trivial_toggle", ports, 2, 1, 1);
  t.name_state(0, "A");
  t.name_state(1, "B");
  t.name_invocation(0, "ping");
  t.name_response(0, "ok");
  t.add_oblivious(0, 0, 1, 0);
  t.add_oblivious(1, 0, 0, 0);
  t.validate();
  return t;
}

int SnapshotLayout::power() const {
  int total = 1;
  for (int i = 0; i < components; ++i) total *= values;
  return total;
}

RespId SnapshotLayout::view_resp(std::span<const int> view) const {
  if (static_cast<int>(view.size()) != components) {
    throw std::invalid_argument("SnapshotLayout: wrong view size");
  }
  int id = 0;
  int scale = 1;
  for (const int v : view) {
    if (v < 0 || v >= values) {
      throw std::out_of_range("SnapshotLayout: component value out of range");
    }
    id += v * scale;
    scale *= values;
  }
  return id;
}

int SnapshotLayout::component(RespId view, int i) const {
  int scale = 1;
  for (int k = 0; k < i; ++k) scale *= values;
  return (view / scale) % values;
}

TypeSpec snapshot_type(int values, int ports) {
  require(values >= 2, "snapshot_type: need at least 2 values");
  require(ports >= 1, "snapshot_type: need at least 1 port");
  const SnapshotLayout lay{ports, values};
  const int views = lay.power();
  TypeSpec t("snapshot" + std::to_string(values) + "v_n" +
                 std::to_string(ports),
             ports, views, values + 1, views + 1);
  t.name_invocation(lay.scan(), "scan");
  t.name_response(lay.ok(), "ok");
  for (int v = 0; v < values; ++v) {
    t.name_invocation(lay.update(v), "update(" + std::to_string(v) + ")");
  }
  for (StateId view = 0; view < views; ++view) {
    t.add_oblivious(view, lay.scan(), view, view);
    // update(v) on port p replaces component p; inherently non-oblivious.
    for (PortId p = 0; p < ports; ++p) {
      int scale = 1;
      for (int k = 0; k < p; ++k) scale *= values;
      for (int v = 0; v < values; ++v) {
        const int old_comp = (view / scale) % values;
        const StateId next = view + (v - old_comp) * scale;
        t.add(view, p, lay.update(v), next, lay.ok());
      }
    }
  }
  t.validate();
  return t;
}

TypeSpec trivial_sink_type(int ports) {
  require(ports >= 1, "trivial_sink_type: need at least 1 port");
  TypeSpec t("trivial_sink", ports, 1, 1, 1);
  t.name_state(0, "only");
  t.name_invocation(0, "poke");
  t.name_response(0, "ok");
  t.add_oblivious(0, 0, 0, 0);
  t.validate();
  return t;
}

TypeSpec weak_bit_type(WeakBitKind kind) {
  const WeakBitLayout lay;
  TypeSpec t(kind == WeakBitKind::kSafe ? "safe_bit" : "regular_bit", 2, 6,
             4, 4);
  for (int v = 0; v < 2; ++v) {
    t.name_state(lay.idle(v), "idle" + std::to_string(v));
    t.name_invocation(lay.start_write(v),
                      "start_write(" + std::to_string(v) + ")");
    t.name_response(lay.value_resp(v), std::to_string(v));
    for (int w = 0; w < 2; ++w) {
      t.name_state(lay.writing(v, w),
                   "writing" + std::to_string(v) + std::to_string(w));
    }
  }
  t.name_invocation(lay.read(), "read");
  t.name_invocation(lay.finish_write(), "finish_write");
  t.name_response(lay.ok(), "ok");
  t.name_response(lay.err(), "err");

  const PortId rd = WeakBitLayout::reader_port();
  const PortId wr = WeakBitLayout::writer_port();
  for (int v = 0; v < 2; ++v) {
    // Reads while idle are exact.
    t.add(lay.idle(v), rd, lay.read(), lay.idle(v), lay.value_resp(v));
    // Writer starts a write; reads during it are weak.
    for (int w = 0; w < 2; ++w) {
      t.add(lay.idle(v), wr, lay.start_write(w), lay.writing(v, w),
            lay.ok());
      const StateId mid = lay.writing(v, w);
      if (kind == WeakBitKind::kSafe) {
        // A safe bit may return anything during a write -- even when the
        // write does not change the value.
        t.add(mid, rd, lay.read(), mid, lay.value_resp(0));
        t.add(mid, rd, lay.read(), mid, lay.value_resp(1));
      } else {
        // A regular bit returns the old or the new value.
        t.add(mid, rd, lay.read(), mid, lay.value_resp(v));
        t.add(mid, rd, lay.read(), mid, lay.value_resp(w));
      }
      t.add(mid, wr, lay.finish_write(), lay.idle(w), lay.ok());
      // Misuse while writing: nested start_write.
      for (int u = 0; u < 2; ++u) {
        t.add(mid, wr, lay.start_write(u), mid, lay.err());
      }
      // Wrong-port accesses while writing.
      t.add(mid, wr, lay.read(), mid, lay.err());
      for (int u = 0; u < 2; ++u) {
        t.add(mid, rd, lay.start_write(u), mid, lay.err());
      }
      t.add(mid, rd, lay.finish_write(), mid, lay.err());
    }
    // Misuse while idle.
    t.add(lay.idle(v), wr, lay.finish_write(), lay.idle(v), lay.err());
    t.add(lay.idle(v), wr, lay.read(), lay.idle(v), lay.err());
    for (int u = 0; u < 2; ++u) {
      t.add(lay.idle(v), rd, lay.start_write(u), lay.idle(v), lay.err());
    }
    t.add(lay.idle(v), rd, lay.finish_write(), lay.idle(v), lay.err());
  }
  t.validate();
  return t;
}

TypeSpec nondet_coin_type(int ports) {
  require(ports >= 1, "nondet_coin_type: need at least 1 port");
  TypeSpec t("nondet_coin", ports, 1, 1, 2);
  t.name_state(0, "only");
  t.name_invocation(0, "flip");
  t.name_response(0, "heads");
  t.name_response(1, "tails");
  t.add_oblivious(0, 0, 0, 0);
  t.add_oblivious(0, 0, 0, 1);
  t.validate();
  return t;
}

TypeSpec port_flag_type(int ports) {
  require(ports >= 2, "port_flag_type: needs at least 2 ports");
  const PortFlagLayout lay;
  TypeSpec t("port_flag", ports, 2, 1, 3);
  t.name_state(0, "down");
  t.name_state(1, "up");
  t.name_invocation(lay.touch(), "touch");
  t.name_response(lay.zero(), "0");
  t.name_response(lay.one(), "1");
  t.name_response(lay.ok(), "ok");
  for (StateId q = 0; q < 2; ++q) {
    // Port 0 observes the flag, port 1 raises it, others are inert.
    t.add(q, 0, lay.touch(), q, q == 0 ? lay.zero() : lay.one());
    t.add(q, 1, lay.touch(), 1, lay.ok());
    for (PortId p = 2; p < ports; ++p) {
      t.add(q, p, lay.touch(), q, lay.ok());
    }
  }
  t.validate();
  return t;
}

TypeSpec mod_counter_type(int modulus, int ports) {
  require(modulus >= 2, "mod_counter_type: modulus must be >= 2");
  require(ports >= 1, "mod_counter_type: need at least 1 port");
  TypeSpec t("mod_counter" + std::to_string(modulus), ports, modulus, 1,
             modulus);
  t.name_invocation(0, "inc");
  for (int q = 0; q < modulus; ++q) {
    t.name_state(q, "count" + std::to_string(q));
    t.name_response(q, std::to_string(q));
    const int next = (q + 1) % modulus;
    t.add_oblivious(q, 0, next, next);
  }
  t.validate();
  return t;
}

TypeSpec shift_register_type(int width, int ports) {
  require(width >= 1 && width <= 16,
          "shift_register_type: width must be in [1, 16]");
  require(ports >= 1, "shift_register_type: need at least 1 port");
  const ShiftRegisterLayout lay{width};
  const int cap = lay.capacity();
  TypeSpec t("shift_register" + std::to_string(width), ports, cap, 2, cap);
  t.name_invocation(lay.shl(0), "shl(0)");
  t.name_invocation(lay.shl(1), "shl(1)");
  for (int q = 0; q < cap; ++q) {
    t.name_state(lay.state_of(q), "bits" + std::to_string(q));
    t.name_response(lay.old_resp(q), std::to_string(q));
    for (int b = 0; b < 2; ++b) {
      t.add_oblivious(lay.state_of(q), lay.shl(b),
                      lay.state_of((2 * q + b) % cap), lay.old_resp(q));
    }
  }
  t.validate();
  return t;
}

}  // namespace wfregs::zoo
