#include "wfregs/typesys/compiled_type.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace wfregs {

namespace {

/// Local replica of the reduction layer's outcome-set commutation test
/// (accesses_commute_at), evaluated over the flattened table so typesys
/// stays independent of the runtime library.  The runtime asserts agreement
/// between the two in its differential tests.
bool commute_at(const CompiledType& t, StateId q, PortId a, InvId i1, PortId b,
                InvId i2) {
  using Outcome = std::tuple<StateId, RespId, RespId>;
  std::vector<Outcome> first;
  std::vector<Outcome> second;
  for (const Transition& t1 : t.delta_unchecked(q, a, i1)) {
    for (const Transition& t2 : t.delta_unchecked(t1.next, b, i2)) {
      first.emplace_back(t2.next, t1.resp, t2.resp);
    }
  }
  for (const Transition& t2 : t.delta_unchecked(q, b, i2)) {
    for (const Transition& t1 : t.delta_unchecked(t2.next, a, i1)) {
      second.emplace_back(t1.next, t1.resp, t2.resp);
    }
  }
  std::ranges::sort(first);
  first.erase(std::unique(first.begin(), first.end()), first.end());
  std::ranges::sort(second);
  second.erase(std::unique(second.begin(), second.end()), second.end());
  return first == second;
}

}  // namespace

CompiledType::CompiledType(const TypeSpec& spec)
    : name_(spec.name()),
      ports_(spec.ports()),
      num_states_(spec.num_states()),
      num_invocations_(spec.num_invocations()),
      num_responses_(spec.num_responses()) {
  const std::size_t cells = static_cast<std::size_t>(num_states_) *
                            static_cast<std::size_t>(ports_) *
                            static_cast<std::size_t>(num_invocations_);
  offsets_.reserve(cells + 1);
  offsets_.push_back(0);
  total_ = true;
  deterministic_ = true;
  // Cell order must match cell(): q-major, then port, then invocation.
  for (StateId q = 0; q < num_states_; ++q) {
    for (PortId p = 0; p < ports_; ++p) {
      for (InvId i = 0; i < num_invocations_; ++i) {
        const auto set = spec.delta(q, p, i);
        transitions_.insert(transitions_.end(), set.begin(), set.end());
        offsets_.push_back(static_cast<std::uint32_t>(transitions_.size()));
        total_ = total_ && !set.empty();
        deterministic_ = deterministic_ && set.size() == 1;
      }
    }
  }
  oblivious_ = spec.is_oblivious();

  const std::size_t invs = static_cast<std::size_t>(num_invocations_);
  commute_.assign(static_cast<std::size_t>(ports_) * invs *
                      static_cast<std::size_t>(ports_) * invs,
                  0);
  for (PortId a = 0; a < ports_; ++a) {
    for (InvId i1 = 0; i1 < num_invocations_; ++i1) {
      for (PortId b = 0; b < ports_; ++b) {
        for (InvId i2 = 0; i2 < num_invocations_; ++i2) {
          bool commutes = true;
          for (StateId q = 0; q < num_states_ && commutes; ++q) {
            commutes = commute_at(*this, q, a, i1, b, i2);
          }
          const std::size_t idx =
              ((static_cast<std::size_t>(a) * invs +
                static_cast<std::size_t>(i1)) *
                   static_cast<std::size_t>(ports_) +
               static_cast<std::size_t>(b)) *
                  invs +
              static_cast<std::size_t>(i2);
          commute_[idx] = commutes ? 1 : 0;
        }
      }
    }
  }
}

void CompiledType::check(StateId q, PortId p, InvId i) const {
  if (static_cast<std::uint32_t>(q) >=
          static_cast<std::uint32_t>(num_states_) ||
      static_cast<std::uint32_t>(p) >= static_cast<std::uint32_t>(ports_) ||
      static_cast<std::uint32_t>(i) >=
          static_cast<std::uint32_t>(num_invocations_)) {
    throw std::out_of_range("CompiledType(" + name_ + "): delta(" +
                            std::to_string(q) + ", " + std::to_string(p) +
                            ", " + std::to_string(i) + ") out of range");
  }
}

Transition CompiledType::delta_det(StateId q, PortId p, InvId i) const {
  const auto set = delta(q, p, i);
  if (set.size() != 1) {
    throw std::logic_error("CompiledType(" + name_ + "): delta_det(q" +
                           std::to_string(q) + ", port " + std::to_string(p) +
                           ", i" + std::to_string(i) + ") has " +
                           std::to_string(set.size()) +
                           " transitions (expected exactly 1)");
  }
  return set.front();
}

CompiledType TypeSpec::compile() const { return CompiledType(*this); }

}  // namespace wfregs
