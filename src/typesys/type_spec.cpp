#include "wfregs/typesys/type_spec.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>

namespace wfregs {

TypeSpec::TypeSpec(std::string name, int ports, int num_states,
                   int num_invocations, int num_responses)
    : name_(std::move(name)),
      ports_(ports),
      num_states_(num_states),
      num_invocations_(num_invocations),
      num_responses_(num_responses) {
  if (ports <= 0 || num_states <= 0 || num_invocations <= 0 ||
      num_responses <= 0) {
    throw std::invalid_argument("TypeSpec(" + name_ +
                                "): all dimensions must be positive");
  }
  table_.resize(static_cast<std::size_t>(ports) * num_states *
                num_invocations);
  state_names_.resize(static_cast<std::size_t>(num_states));
  invocation_names_.resize(static_cast<std::size_t>(num_invocations));
  response_names_.resize(static_cast<std::size_t>(num_responses));
}

std::size_t TypeSpec::cell(StateId q, PortId p, InvId i) const {
  return (static_cast<std::size_t>(q) * ports_ + static_cast<std::size_t>(p)) *
             num_invocations_ +
         static_cast<std::size_t>(i);
}

void TypeSpec::check_state(StateId q) const {
  if (q < 0 || q >= num_states_) {
    throw std::out_of_range("TypeSpec(" + name_ + "): state " +
                            std::to_string(q) + " out of range");
  }
}

void TypeSpec::check_port(PortId p) const {
  if (p < 0 || p >= ports_) {
    throw std::out_of_range("TypeSpec(" + name_ + "): port " +
                            std::to_string(p) + " out of range");
  }
}

void TypeSpec::check_invocation(InvId i) const {
  if (i < 0 || i >= num_invocations_) {
    throw std::out_of_range("TypeSpec(" + name_ + "): invocation " +
                            std::to_string(i) + " out of range");
  }
}

void TypeSpec::check_response(RespId r) const {
  if (r < 0 || r >= num_responses_) {
    throw std::out_of_range("TypeSpec(" + name_ + "): response " +
                            std::to_string(r) + " out of range");
  }
}

void TypeSpec::add(StateId q, PortId p, InvId i, StateId q2, RespId r) {
  check_state(q);
  check_port(p);
  check_invocation(i);
  check_state(q2);
  check_response(r);
  auto& set = table_[cell(q, p, i)];
  const Transition t{q2, r};
  const auto pos = std::lower_bound(set.begin(), set.end(), t);
  if (pos == set.end() || *pos != t) set.insert(pos, t);
}

void TypeSpec::add_oblivious(StateId q, InvId i, StateId q2, RespId r) {
  for (PortId p = 0; p < ports_; ++p) add(q, p, i, q2, r);
}

void TypeSpec::name_state(StateId q, std::string name) {
  check_state(q);
  state_names_[static_cast<std::size_t>(q)] = std::move(name);
}

void TypeSpec::name_invocation(InvId i, std::string name) {
  check_invocation(i);
  invocation_names_[static_cast<std::size_t>(i)] = std::move(name);
}

void TypeSpec::name_response(RespId r, std::string name) {
  check_response(r);
  response_names_[static_cast<std::size_t>(r)] = std::move(name);
}

std::span<const Transition> TypeSpec::delta(StateId q, PortId p,
                                            InvId i) const {
  check_state(q);
  check_port(p);
  check_invocation(i);
  return table_[cell(q, p, i)];
}

Transition TypeSpec::delta_det(StateId q, PortId p, InvId i) const {
  const auto set = delta(q, p, i);
  if (set.size() != 1) {
    throw std::logic_error(
        "TypeSpec(" + name_ + "): delta_det(" + state_name(q) + ", port " +
        std::to_string(p) + ", " + invocation_name(i) + ") has " +
        std::to_string(set.size()) + " transitions (expected exactly 1)");
  }
  return set.front();
}

bool TypeSpec::is_total() const {
  return std::ranges::all_of(table_,
                             [](const auto& set) { return !set.empty(); });
}

bool TypeSpec::is_deterministic() const {
  return std::ranges::all_of(table_,
                             [](const auto& set) { return set.size() == 1; });
}

bool TypeSpec::is_oblivious() const {
  for (StateId q = 0; q < num_states_; ++q) {
    for (InvId i = 0; i < num_invocations_; ++i) {
      const auto& base = table_[cell(q, 0, i)];
      for (PortId p = 1; p < ports_; ++p) {
        if (table_[cell(q, p, i)] != base) return false;
      }
    }
  }
  return true;
}

void TypeSpec::validate() const {
  for (StateId q = 0; q < num_states_; ++q) {
    for (PortId p = 0; p < ports_; ++p) {
      for (InvId i = 0; i < num_invocations_; ++i) {
        if (table_[cell(q, p, i)].empty()) {
          throw std::logic_error("TypeSpec(" + name_ +
                                 "): missing transition for state " +
                                 state_name(q) + ", port " +
                                 std::to_string(p) + ", invocation " +
                                 invocation_name(i));
        }
      }
    }
  }
}

std::vector<StateId> TypeSpec::reachable_from(StateId q) const {
  check_state(q);
  std::vector<char> seen(static_cast<std::size_t>(num_states_), 0);
  std::deque<StateId> frontier{q};
  seen[static_cast<std::size_t>(q)] = 1;
  while (!frontier.empty()) {
    const StateId cur = frontier.front();
    frontier.pop_front();
    for (PortId p = 0; p < ports_; ++p) {
      for (InvId i = 0; i < num_invocations_; ++i) {
        for (const Transition& t : table_[cell(cur, p, i)]) {
          if (!seen[static_cast<std::size_t>(t.next)]) {
            seen[static_cast<std::size_t>(t.next)] = 1;
            frontier.push_back(t.next);
          }
        }
      }
    }
  }
  std::vector<StateId> out;
  for (StateId s = 0; s < num_states_; ++s) {
    if (seen[static_cast<std::size_t>(s)]) out.push_back(s);
  }
  return out;
}

bool TypeSpec::reachable(StateId from, StateId to) const {
  check_state(to);
  const auto reach = reachable_from(from);
  return std::ranges::binary_search(reach, to);
}

std::string TypeSpec::state_name(StateId q) const {
  check_state(q);
  const auto& n = state_names_[static_cast<std::size_t>(q)];
  return n.empty() ? "q" + std::to_string(q) : n;
}

std::string TypeSpec::invocation_name(InvId i) const {
  check_invocation(i);
  const auto& n = invocation_names_[static_cast<std::size_t>(i)];
  return n.empty() ? "i" + std::to_string(i) : n;
}

std::string TypeSpec::response_name(RespId r) const {
  check_response(r);
  const auto& n = response_names_[static_cast<std::size_t>(r)];
  return n.empty() ? "r" + std::to_string(r) : n;
}

std::string TypeSpec::to_string() const {
  std::ostringstream out;
  out << "type " << name_ << " <ports=" << ports_ << ", |Q|=" << num_states_
      << ", |I|=" << num_invocations_ << ", |R|=" << num_responses_ << ">\n";
  for (StateId q = 0; q < num_states_; ++q) {
    for (PortId p = 0; p < ports_; ++p) {
      for (InvId i = 0; i < num_invocations_; ++i) {
        const auto& set = table_[cell(q, p, i)];
        if (set.empty()) continue;
        out << "  delta(" << state_name(q) << ", port " << p << ", "
            << invocation_name(i) << ") = {";
        bool first = true;
        for (const Transition& t : set) {
          if (!first) out << ", ";
          first = false;
          out << "<" << state_name(t.next) << ", " << response_name(t.resp)
              << ">";
        }
        out << "}\n";
      }
    }
  }
  return out.str();
}

}  // namespace wfregs
