#include "wfregs/hierarchy/hierarchy.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "wfregs/consensus/check.hpp"
#include "wfregs/core/oneuse_from_type.hpp"
#include "wfregs/core/register_elimination.hpp"
#include "wfregs/typesys/triviality.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::hierarchy {

std::optional<RaceWitness> find_race_witness(const TypeSpec& type) {
  if (!type.is_deterministic()) {
    throw std::invalid_argument(
        "find_race_witness: type must be deterministic");
  }
  // The protocol runs process 0 on port 0 and process 1 on port `other`, so
  // the race must be visible on the ports as wired: EACH side's second-place
  // response must differ from its own first-place response (for oblivious
  // types this collapses to the classic same-port condition).
  const PortId other = type.ports() > 1 ? 1 : 0;
  for (StateId q = 0; q < type.num_states(); ++q) {
    for (InvId i = 0; i < type.num_invocations(); ++i) {
      const Transition a_first = type.delta_det(q, 0, i);
      const Transition b_first = type.delta_det(q, other, i);
      if (type.delta_det(b_first.next, 0, i).resp != a_first.resp &&
          type.delta_det(a_first.next, other, i).resp != b_first.resp) {
        return RaceWitness{q, i, a_first.resp};
      }
    }
  }
  return std::nullopt;
}

std::shared_ptr<const Implementation> race_consensus(const TypeSpec& type) {
  const auto witness = find_race_witness(type);
  if (!witness) return nullptr;
  const zoo::ConsensusLayout cons;
  const zoo::SrswRegisterLayout bit{2};
  auto impl = std::make_shared<Implementation>(
      "race_consensus_" + type.name(),
      std::make_shared<const TypeSpec>(zoo::consensus_type(2)),
      cons.bottom());
  // Announce bits: bit[p] written by p, read by 1-p.
  const auto bit_spec = std::make_shared<const TypeSpec>(zoo::srsw_bit_type());
  int bits[2];
  for (int p = 0; p < 2; ++p) {
    std::vector<PortId> map(2, kNoPort);
    map[static_cast<std::size_t>(p)] = zoo::SrswRegisterLayout::writer_port();
    map[static_cast<std::size_t>(1 - p)] =
        zoo::SrswRegisterLayout::reader_port();
    bits[p] = impl->add_base(bit_spec, 0, std::move(map));
  }
  // The racing object, initialized to the witness state.
  const PortId other = type.ports() > 1 ? 1 : 0;
  const int racer = impl->add_base(std::make_shared<const TypeSpec>(type),
                                   witness->q, {0, other});
  for (int p = 0; p < 2; ++p) {
    // Each process compares against ITS port's first-place response (they
    // differ on non-oblivious types).
    const PortId port = p == 0 ? 0 : other;
    const RespId my_first = type.delta_det(witness->q, port, witness->i).resp;
    for (int v = 0; v < 2; ++v) {
      ProgramBuilder b;
      b.invoke(bits[p], lit(bit.write(v)), 0);
      b.invoke(racer, lit(witness->i), 1);
      const Label lost = b.make_label();
      b.branch_if(!(reg(1) == lit(my_first)), lost);
      b.ret(lit(v));
      b.bind(lost);
      b.invoke(bits[1 - p], lit(bit.read()), 2);
      b.ret(reg(2));
      impl->set_program(v, p,
                        b.build("race_propose" + std::to_string(v) + "_p" +
                                std::to_string(p)));
    }
  }
  return impl;
}

std::optional<AdoptWitness> find_adopt_witness(const TypeSpec& type) {
  if (!type.is_deterministic()) {
    throw std::invalid_argument(
        "find_adopt_witness: type must be deterministic");
  }
  const int nr = type.num_responses();
  for (StateId q = 0; q < type.num_states(); ++q) {
    for (InvId i0 = 0; i0 < type.num_invocations(); ++i0) {
      for (InvId i1 = 0; i1 < type.num_invocations(); ++i1) {
        AdoptWitness w;
        w.q = q;
        w.inv[0] = i0;
        w.inv[1] = i1;
        w.decide.assign(static_cast<std::size_t>(2 * nr), -1);
        // Constrain h(v, resp) = "decide the first proposer's value" over
        // the four (first v, second u) orderings; reject on conflict.
        const auto constrain = [&w, nr](int input, RespId resp,
                                        int value) -> bool {
          auto& cell =
              w.decide[static_cast<std::size_t>(input * nr + resp)];
          if (cell == -1) cell = value;
          return cell == value;
        };
        bool ok = true;
        const PortId other = type.ports() > 1 ? 1 : 0;
        for (const auto& [fp, sp] :
             {std::pair<PortId, PortId>{0, other}, {other, 0}}) {
          for (int v = 0; v < 2 && ok; ++v) {
            const Transition first = type.delta_det(q, fp, w.inv[v]);
            ok = constrain(v, first.resp, v);  // solo / winner case
            for (int u = 0; u < 2 && ok; ++u) {
              const Transition second =
                  type.delta_det(first.next, sp, w.inv[u]);
              ok = constrain(u, second.resp, v);  // loser adopts v
            }
          }
          if (!ok) break;
        }
        if (ok) return w;
      }
    }
  }
  return std::nullopt;
}

std::shared_ptr<const Implementation> adopt_consensus(const TypeSpec& type) {
  const auto w = find_adopt_witness(type);
  if (!w) return nullptr;
  const zoo::ConsensusLayout cons;
  const int nr = type.num_responses();
  auto impl = std::make_shared<Implementation>(
      "adopt_consensus_" + type.name(),
      std::make_shared<const TypeSpec>(zoo::consensus_type(2)),
      cons.bottom());
  const PortId other = type.ports() > 1 ? 1 : 0;
  const int obj = impl->add_base(std::make_shared<const TypeSpec>(type),
                                 w->q, {0, other});
  for (int v = 0; v < 2; ++v) {
    ProgramBuilder b;
    b.invoke(obj, lit(w->inv[v]), 0);
    // Dispatch on the response through the decision table.
    std::vector<Label> cases;
    for (int r = 0; r < nr; ++r) cases.push_back(b.make_label());
    for (int r = 0; r < nr; ++r) {
      b.branch_if(reg(0) == lit(r), cases[static_cast<std::size_t>(r)]);
    }
    b.fail("adopt_consensus: response out of range");
    for (int r = 0; r < nr; ++r) {
      b.bind(cases[static_cast<std::size_t>(r)]);
      const int d = w->decide[static_cast<std::size_t>(v * nr + r)];
      if (d == -1) {
        b.fail("adopt_consensus: unconstrained response observed");
      } else {
        b.ret(lit(d));
      }
    }
    impl->set_program_all_ports(v,
                                b.build("adopt_propose" + std::to_string(v)));
  }
  return impl;
}

HierarchyRow classify_type(const TypeSpec& type,
                           const ClassifyOptions& options) {
  HierarchyRow row;
  row.type_name = type.name();
  row.deterministic = type.is_deterministic();
  row.oblivious = type.is_oblivious();
  if (!row.deterministic) {
    row.note = "nondeterministic: deciders and Theorem 5 do not apply";
    return row;
  }
  row.trivial = is_trivial_general(type);

  // h_1 probe: one object, no registers, bounded depth.
  if (options.probe_h1) {
    row.h1_probe_depth = options.h1_probe_depth;
    row.h1_single_object = consensus::synthesize_two_consensus(
                               {{std::make_shared<const TypeSpec>(type),
                                 0,
                                 {}}},
                               options.h1_probe_depth,
                               options.synthesis_node_cap)
                               .verdict;
  }

  // Register-free single-object certificate (h_1 >= 2, hence everything).
  if (const auto adopt = adopt_consensus(type)) {
    const auto check = consensus::check_consensus(adopt);
    if (check.solves) {
      row.h1r_at_least_2 = true;
      row.hm_at_least_2 = true;
      row.note = "solves 2-consensus alone (adopt witness)";
      row.theorem5_consistent = true;
      return row;
    }
  }

  // h_1^r >= 2 certificate: the race protocol, model-checked.
  const auto race = race_consensus(type);
  if (race) {
    const auto check = consensus::check_consensus(race);
    row.h1r_at_least_2 = check.solves;
    if (!check.solves) row.note = "race protocol failed: " + check.detail;
  }

  // h_m >= 2 certificate: Theorem 5 applied to the race protocol.
  if (row.h1r_at_least_2 && !*row.trivial) {
    core::EliminationOptions elim;
    const TypeSpec substrate = type;
    elim.oneuse_factory = [substrate] {
      return core::oneuse_from_deterministic(substrate);
    };
    const auto report = core::eliminate_registers(race, elim);
    if (report.ok) {
      const auto check = consensus::check_consensus(report.result);
      row.hm_at_least_2 = check.solves;
      if (!check.solves) {
        row.note = "eliminated protocol failed: " + check.detail;
      }
    } else {
      row.note = "elimination failed: " + report.detail;
    }
  }

  // Theorem 5 consistency: for deterministic types, level-2 membership in
  // h_m^r (witnessed by h_1^r <= h_m^r) must transfer to h_m.
  row.theorem5_consistent = (row.h1r_at_least_2 == row.hm_at_least_2);
  return row;
}

std::vector<HierarchyRow> survey_zoo(const ClassifyOptions& options) {
  std::vector<HierarchyRow> rows;
  for (const auto& t :
       {zoo::bit_type(2), zoo::register_type(4, 2), zoo::test_and_set_type(2),
        zoo::fetch_and_add_type(4, 2), zoo::queue_type(2, 2, 2),
        zoo::cas_old_type(2, 2), zoo::sticky_bit_type(2),
        zoo::consensus_type(2), zoo::mod_counter_type(3, 2),
        zoo::trivial_toggle_type(2), zoo::nondet_coin_type(2)}) {
    rows.push_back(classify_type(t, options));
  }
  return rows;
}

namespace {

std::string verdict_str(consensus::SynthesisVerdict v) {
  switch (v) {
    case consensus::SynthesisVerdict::kSolvable:
      return ">=2";
    case consensus::SynthesisVerdict::kUnsolvable:
      return "=1*";
    case consensus::SynthesisVerdict::kUnknown:
      return "?";
  }
  return "?";
}

}  // namespace

std::string to_table(const std::vector<HierarchyRow>& rows) {
  std::ostringstream out;
  out << std::left << std::setw(22) << "type" << std::setw(7) << "det"
      << std::setw(7) << "obliv" << std::setw(9) << "trivial" << std::setw(9)
      << "h1(k)" << std::setw(9) << "h1^r>=2" << std::setw(9) << "hm>=2"
      << std::setw(9) << "thm5 ok"
      << "note\n";
  for (const auto& r : rows) {
    out << std::left << std::setw(22) << r.type_name << std::setw(7)
        << (r.deterministic ? "yes" : "no") << std::setw(7)
        << (r.oblivious ? "yes" : "no") << std::setw(9)
        << (r.trivial ? (*r.trivial ? "yes" : "no") : "-") << std::setw(9)
        << verdict_str(r.h1_single_object) << std::setw(9)
        << (r.h1r_at_least_2 ? "yes" : "no") << std::setw(9)
        << (r.hm_at_least_2 ? "yes" : "no") << std::setw(9)
        << (r.theorem5_consistent ? "yes" : "NO") << r.note << "\n";
  }
  out << "(h1(k): bounded-synthesis verdict for one object, no registers; "
         "=1* means exhaustively unsolvable at the probed depth)\n";
  return out.str();
}

}  // namespace wfregs::hierarchy
