#include "wfregs/concurrent/snapshot.hpp"

#include <cassert>

namespace wfregs::concurrent {

StatsSnapshot::StatsSnapshot(std::size_t slots, std::size_t counters)
    : num_slots_(slots), counters_(counters),
      slots_(std::make_unique<detail::SnapshotSlot[]>(slots)) {
  assert(counters <= kMaxCounters);
}

std::uint64_t StatsSnapshot::read_slot(const detail::SnapshotSlot& s,
                                       std::uint64_t* out,
                                       std::uint64_t* retries) const {
  for (;;) {
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    const auto& active = s.buf[s1 & 1];
    // Under TSan the buffer loads are seq_cst instead of relaxed-then-
    // fence: seq_cst program order keeps them before the s2 re-read, the
    // load-load edge the acquire fence provides in the normal build.
    for (std::size_t i = 0; i < counters_; ++i) {
      out[i] = active[i].load(kTsanBuild ? std::memory_order_seq_cst
                                         : std::memory_order_relaxed);
    }
    if constexpr (!kTsanBuild) {
      std::atomic_thread_fence(std::memory_order_acquire);
    }
    // s2 must equal s1 EXACTLY: publication s1 + 1 leaves buf[s1 & 1]
    // intact, but publication s1 + 2 scribbles it, and a reader cannot
    // tell "s1 + 1 just finished" from "s1 + 2 is mid-copy over our
    // buffer", so any movement invalidates the read.  The writer that
    // invalidated us completed a publication -- the retry reads strictly
    // newer state (lock-free, not wait-free, for readers).
    const std::uint64_t s2 = s.seq.load(kTsanBuild
                                            ? std::memory_order_seq_cst
                                            : std::memory_order_acquire);
    if (s2 == s1) return s1;
    *retries += 1;
  }
}

std::vector<std::uint64_t> StatsSnapshot::collect(ContentionCounters* retries,
                                                  int max_rounds) const {
  std::uint64_t local_retries = 0;
  std::vector<std::uint64_t> seqs(num_slots_, 0);
  std::vector<std::uint64_t> records(num_slots_ * counters_, 0);
  for (int round = 0; round < max_rounds; ++round) {
    for (std::size_t i = 0; i < num_slots_; ++i) {
      seqs[i] =
          read_slot(slots_[i], &records[i * counters_], &local_retries);
    }
    // Double collect: if no slot published between the first pass and this
    // re-read, the records form one consistent cut across all writers.
    bool clean = true;
    for (std::size_t i = 0; i < num_slots_; ++i) {
      if (slots_[i].seq.load(std::memory_order_acquire) != seqs[i]) {
        clean = false;
        break;
      }
    }
    if (clean) break;
    local_retries += 1;
    // The final round's records are still used: each is individually
    // intact (seqlock-validated) and was current inside the scan window.
  }
  std::vector<std::uint64_t> totals(counters_, 0);
  for (std::size_t i = 0; i < num_slots_; ++i) {
    for (std::size_t cidx = 0; cidx < counters_; ++cidx) {
      totals[cidx] += records[i * counters_ + cidx];
    }
  }
  if (retries != nullptr) retries->snapshot_retries += local_retries;
  return totals;
}

}  // namespace wfregs::concurrent
