#include "wfregs/core/oneuse_from_type.hpp"

#include <stdexcept>

#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::core {

namespace {

std::shared_ptr<Implementation> new_oneuse_impl(const std::string& name) {
  const zoo::OneUseBitLayout lay;
  return std::make_shared<Implementation>(
      name, std::make_shared<const TypeSpec>(zoo::one_use_bit_type()),
      lay.unset());
}

}  // namespace

std::shared_ptr<const Implementation> oneuse_from_oblivious(
    const TypeSpec& type) {
  const auto witness = find_oblivious_witness(type);  // validates the type
  if (!witness) return nullptr;
  const zoo::OneUseBitLayout lay;
  auto impl = new_oneuse_impl("oneuse_from_" + type.name());
  // One object of the type, initialized to the witness's q ("UNSET").
  // Oblivious types do not distinguish ports; reader takes 0, writer takes
  // the type's other port when it has one.
  const PortId writer_port = type.ports() > 1 ? 1 : 0;
  const int obj = impl->add_base(std::make_shared<const TypeSpec>(type),
                                 witness->q, {0, writer_port});
  {
    ProgramBuilder b;
    b.invoke(obj, lit(witness->i), 0);
    const Label written = b.make_label();
    b.branch_if(!(reg(0) == lit(witness->r_q)), written);
    b.ret(lit(lay.zero()));  // O is still in state q
    b.bind(written);
    b.ret(lit(lay.one()));  // O was in state p (or beyond)
    impl->set_program(lay.read(), 0, b.build("oneuse_read_" + type.name()));
  }
  {
    ProgramBuilder b;
    b.invoke(obj, lit(witness->i_prime), 0);
    b.ret(lit(lay.ok()));
    impl->set_program(lay.write(), 1,
                      b.build("oneuse_write_" + type.name()));
  }
  return impl;
}

std::shared_ptr<const Implementation> oneuse_from_pair(
    const TypeSpec& type, const NonTrivialPair& pair) {
  const zoo::OneUseBitLayout lay;
  auto impl = new_oneuse_impl("oneuse_from_" + type.name());
  const int obj =
      impl->add_base(std::make_shared<const TypeSpec>(type), pair.q,
                     {pair.reader_port, pair.writer_port});
  {
    // The reader replays i-bar and compares the LAST response with H1's.
    ProgramBuilder b;
    for (const InvId i : pair.read_seq) {
      b.invoke(obj, lit(i), 0);
    }
    const Label written = b.make_label();
    b.branch_if(!(reg(0) == lit(pair.unwritten_resp)), written);
    b.ret(lit(lay.zero()));
    b.bind(written);
    // A response of neither history still means the writer moved: return 1.
    b.ret(lit(lay.one()));
    impl->set_program(lay.read(), 0, b.build("oneuse_read_" + type.name()));
  }
  {
    ProgramBuilder b;
    b.invoke(obj, lit(pair.write_inv), 0);
    b.ret(lit(lay.ok()));
    impl->set_program(lay.write(), 1,
                      b.build("oneuse_write_" + type.name()));
  }
  return impl;
}

std::shared_ptr<const Implementation> oneuse_from_deterministic(
    const TypeSpec& type) {
  const auto pair = find_nontrivial_pair(type);  // validates the type
  if (!pair) return nullptr;
  return oneuse_from_pair(type, *pair);
}

}  // namespace wfregs::core
