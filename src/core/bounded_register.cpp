#include "wfregs/core/bounded_register.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::core {

int oneuse_bits_needed(int max_reads, int max_writes) {
  if (max_reads < 0 || max_writes < 0) {
    throw std::invalid_argument("oneuse_bits_needed: bounds must be >= 0");
  }
  return max_reads * (max_writes + 1);
}

std::shared_ptr<const Implementation> bounded_bit_from_oneuse(
    int max_reads, int max_writes, int initial_value,
    const OneUseFactory& factory) {
  if (initial_value != 0 && initial_value != 1) {
    throw std::out_of_range("bounded_bit_from_oneuse: initial must be 0/1");
  }
  const int r_b = max_reads;
  const int w_b = max_writes;
  if (r_b < 0 || w_b < 0) {
    throw std::invalid_argument("bounded_bit_from_oneuse: bounds >= 0");
  }
  const zoo::SrswRegisterLayout iface_lay{2};
  const zoo::OneUseBitLayout oub;

  auto impl = std::make_shared<Implementation>(
      "bounded_bit_r" + std::to_string(r_b) + "_w" + std::to_string(w_b),
      std::make_shared<const TypeSpec>(zoo::srsw_bit_type()),
      iface_lay.state_of(initial_value));

  // One-use bit [row i][column j], 1-indexed like the paper; port 0 of each
  // bit goes to the outer reader, port 1 to the outer writer.
  const auto oub_spec =
      std::make_shared<const TypeSpec>(zoo::one_use_bit_type());
  const std::vector<PortId> orientation{0, 1};
  // bits[(i-1) * r_b + (j-1)] is the slot of bits[i, j].
  std::vector<int> bits;
  for (int i = 1; i <= w_b + 1; ++i) {
    for (int j = 1; j <= r_b; ++j) {
      if (factory) {
        bits.push_back(impl->add_nested(factory(), orientation));
      } else {
        bits.push_back(impl->add_base(oub_spec, oub.unset(), orientation));
      }
    }
  }
  const auto slot_of = [&](int i, int j) {
    return bits[static_cast<std::size_t>((i - 1) * r_b + (j - 1))];
  };

  // Persistent locals (registers 0 and 1 of every frame):
  //   reader port: r0 = i_r, r1 = j_r       (both initially 1)
  //   writer port: r0 = i_w, r1 = cur value
  // The shared initial {1, 1} works for the writer because `cur` is only
  // compared against the written value -- we re-initialize it per program
  // via the first write's semantics below.
  impl->set_persistent({1, 1});
  constexpr int kI = 0;  // i_r on the reader, i_w on the writer
  constexpr int kJ = 1;  // j_r on the reader, cur on the writer
  constexpr int kT = 2;

  // Writer persistent slot 1 starts at 1, but `cur` must start at
  // initial_value; encode cur as (stored - 1) ... avoid cleverness: store
  // cur+1 so that the initial persistent value 1 decodes to cur = 0.  That
  // only matches initial_value == 0; for initial_value == 1 we flip the
  // comparison.  Simplest correct scheme: store `changes so far` parity is
  // already i_w; cur == (initial + i_w - 1) mod 2, so no separate cur
  // variable is needed at all.
  //
  // ---- write(x), writer port -----------------------------------------------
  for (int x = 0; x < 2; ++x) {
    ProgramBuilder b;
    // Current value is determined by the write count: (v + i_w - 1) mod 2.
    const Label do_flip = b.make_label();
    b.branch_if(!((lit(initial_value) + reg(kI) - lit(1)) % lit(2) ==
                  lit(x)),
                do_flip);
    b.ret(lit(iface_lay.ok()));  // same value: write-on-change elides it
    b.bind(do_flip);
    const Label in_range = b.make_label();
    b.branch_if(reg(kI) <= lit(w_b), in_range);
    b.fail("bounded bit: more than w_b = " + std::to_string(w_b) +
           " value-changing writes");
    b.bind(in_range);
    // Flip every bit in row i_w (dispatch on the runtime row index).
    const Label done = b.make_label();
    std::vector<Label> rows;
    for (int i = 1; i <= w_b; ++i) rows.push_back(b.make_label());
    for (int i = 1; i <= w_b; ++i) {
      b.branch_if(reg(kI) == lit(i), rows[static_cast<std::size_t>(i - 1)]);
    }
    b.fail("bounded bit: writer row out of range");
    for (int i = 1; i <= w_b; ++i) {
      b.bind(rows[static_cast<std::size_t>(i - 1)]);
      for (int j = 1; j <= r_b; ++j) {
        b.invoke(slot_of(i, j), lit(oub.write()), kT);
      }
      b.jump(done);
    }
    b.bind(done);
    b.assign(kI, reg(kI) + lit(1));
    b.ret(lit(iface_lay.ok()));
    impl->set_program(iface_lay.write(x),
                      zoo::SrswRegisterLayout::writer_port(),
                      b.build("bounded_bit_write" + std::to_string(x)));
  }

  // ---- read(), reader port ----------------------------------------------------
  {
    ProgramBuilder b;
    const Label in_range = b.make_label();
    b.branch_if(reg(kJ) <= lit(r_b), in_range);
    b.fail("bounded bit: more than r_b = " + std::to_string(r_b) + " reads");
    b.bind(in_range);
    // while bits[i_r, j_r] = 1 do i_r := i_r + 1
    const Label loop = b.bind_here();
    const Label after = b.make_label();
    if (r_b > 0) {
      std::vector<Label> cells;
      for (int i = 1; i <= w_b + 1; ++i) {
        for (int j = 1; j <= r_b; ++j) cells.push_back(b.make_label());
      }
      const auto cell_label = [&](int i, int j) -> Label {
        return cells[static_cast<std::size_t>((i - 1) * r_b + (j - 1))];
      };
      const Label check = b.make_label();
      for (int i = 1; i <= w_b + 1; ++i) {
        for (int j = 1; j <= r_b; ++j) {
          b.branch_if(reg(kI) == lit(i) && reg(kJ) == lit(j),
                      cell_label(i, j));
        }
      }
      b.fail("bounded bit: reader ran past row w_b + 1 (impossible when "
             "writes respect their bound)");
      for (int i = 1; i <= w_b + 1; ++i) {
        for (int j = 1; j <= r_b; ++j) {
          b.bind(cell_label(i, j));
          b.invoke(slot_of(i, j), lit(oub.read()), kT);
          b.jump(check);
        }
      }
      b.bind(check);
      const Label exit_loop = b.make_label();
      b.branch_if(!(reg(kT) == lit(1)), exit_loop);
      b.assign(kI, reg(kI) + lit(1));
      b.jump(loop);
      b.bind(exit_loop);
    }
    b.bind(after);
    b.assign(kJ, reg(kJ) + lit(1));
    // return (v + (i_r - 1)) mod 2
    b.ret((lit(initial_value) + reg(kI) - lit(1)) % lit(2));
    impl->set_program(iface_lay.read(),
                      zoo::SrswRegisterLayout::reader_port(),
                      b.build("bounded_bit_read"));
  }
  return impl;
}

}  // namespace wfregs::core
