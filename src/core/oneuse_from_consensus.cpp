#include "wfregs/core/oneuse_from_consensus.hpp"

#include <functional>
#include <stdexcept>

#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::core {

namespace {

std::shared_ptr<const Implementation> build(
    const std::function<int(Implementation&)>& add_consensus_object,
    const std::string& name) {
  const zoo::OneUseBitLayout lay;
  const zoo::ConsensusLayout cons;
  auto impl = std::make_shared<Implementation>(
      name, std::make_shared<const TypeSpec>(zoo::one_use_bit_type()),
      lay.unset());
  const int obj = add_consensus_object(*impl);
  {
    // read: propose 0 ("read precedes write"); the consensus value IS the
    // bit value to return.
    ProgramBuilder b;
    b.invoke(obj, lit(cons.propose(0)), 0);
    b.ret(reg(0));
    impl->set_program(lay.read(), 0, b.build(name + "_read"));
  }
  {
    // write: propose 1 ("write precedes read").
    ProgramBuilder b;
    b.invoke(obj, lit(cons.propose(1)), 0);
    b.ret(lit(lay.ok()));
    impl->set_program(lay.write(), 1, b.build(name + "_write"));
  }
  return impl;
}

}  // namespace

std::shared_ptr<const Implementation> oneuse_from_consensus(
    std::shared_ptr<const Implementation> cons2) {
  if (!cons2) {
    throw std::invalid_argument("oneuse_from_consensus: null impl");
  }
  if (!(cons2->iface() == zoo::consensus_type(2))) {
    throw std::invalid_argument(
        "oneuse_from_consensus: inner implementation must implement "
        "2-process consensus");
  }
  return build(
      [cons2](Implementation& impl) {
        return impl.add_nested(cons2, {0, 1});
      },
      "oneuse_from_" + cons2->name());
}

std::shared_ptr<const Implementation> oneuse_from_consensus_object() {
  return build(
      [](Implementation& impl) {
        const zoo::ConsensusLayout cons;
        return impl.add_base(
            std::make_shared<const TypeSpec>(zoo::consensus_type(2)),
            cons.bottom(), {0, 1});
      },
      "oneuse_from_consensus_object");
}

}  // namespace wfregs::core
