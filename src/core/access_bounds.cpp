#include "wfregs/core/access_bounds.hpp"

#include <algorithm>
#include <stdexcept>

#include "wfregs/consensus/check.hpp"

namespace wfregs::core {

const ObjectBound& AccessBounds::at(std::span<const int> path) const {
  for (const ObjectBound& b : per_object) {
    if (std::ranges::equal(b.path, path)) return b;
  }
  throw std::out_of_range("AccessBounds::at: no bound recorded for path");
}

AccessBounds compute_access_bounds(std::shared_ptr<const Implementation> impl,
                                   ExploreLimits limits) {
  if (!impl) {
    throw std::invalid_argument("compute_access_bounds: null impl");
  }
  limits.track_access_bounds = true;
  const auto check = consensus::check_consensus(impl, limits);

  AccessBounds bounds;
  bounds.wait_free = check.wait_free;
  bounds.complete = check.complete;
  bounds.solves = check.solves;
  bounds.detail = check.detail;
  bounds.depth = check.depth;
  bounds.configs = check.configs;

  // Map the per-gid access maxima back to declaration paths via a scenario
  // system (object ids are deterministic, so any input vector works).
  const int n = impl->iface().ports();
  const auto sys = consensus::consensus_scenario(
      impl, std::vector<int>(static_cast<std::size_t>(n), 0));
  for (ObjectId g = 0; g < sys->num_objects(); ++g) {
    if (!sys->is_base(g)) continue;
    ObjectBound b;
    b.path = sys->placement(g).path;
    b.type_name = sys->base(g).spec->name();
    if (g < static_cast<ObjectId>(check.max_accesses.size())) {
      b.max_accesses = check.max_accesses[static_cast<std::size_t>(g)];
    }
    if (g < static_cast<ObjectId>(check.max_accesses_by_inv.size())) {
      b.max_by_inv = check.max_accesses_by_inv[static_cast<std::size_t>(g)];
    }
    // r_b / w_b: aggregate reads (invocation 0) and writes (the rest)
    // WITHIN each execution tree, then maximize across trees -- writes of
    // different values under different input vectors are the same write.
    for (const auto& root : check.per_root) {
      if (g >= static_cast<ObjectId>(root.max_accesses_by_inv.size())) {
        continue;
      }
      const auto& per = root.max_accesses_by_inv[static_cast<std::size_t>(g)];
      if (per.empty()) continue;
      std::size_t writes = 0;
      for (std::size_t i = 1; i < per.size(); ++i) writes += per[i];
      const std::size_t total =
          root.max_accesses[static_cast<std::size_t>(g)];
      b.read_bound = std::max(b.read_bound, std::min(per[0], total));
      b.write_bound = std::max(b.write_bound, std::min(writes, total));
    }
    if (check.per_root.empty()) {
      b.read_bound = b.max_accesses;
      b.write_bound = b.max_accesses;
    }
    bounds.per_object.push_back(std::move(b));
  }
  return bounds;
}

}  // namespace wfregs::core
