#include "wfregs/core/register_elimination.hpp"

#include <stdexcept>

#include "wfregs/registers/mrsw.hpp"
#include "wfregs/registers/simpson.hpp"
#include "wfregs/typesys/type_zoo.hpp"

namespace wfregs::core {

std::optional<RegisterShape> classify_register(const TypeSpec& spec) {
  const int v = spec.num_states();
  if (v < 2) return std::nullopt;
  // Fully symmetric MRMW register: |I| = v+1, |R| = v+1.
  if (spec.num_invocations() == v + 1 && spec.num_responses() == v + 1) {
    if (spec == zoo::register_type(v, spec.ports())) {
      return RegisterShape{RegisterShape::Kind::kMrmw, v, 0, spec.ports()};
    }
  }
  // Port-disciplined MRSW/SRSW register: |R| = v+2 (with err()).
  if (spec.num_invocations() == v + 1 && spec.num_responses() == v + 2 &&
      spec.ports() >= 2) {
    const int readers = spec.ports() - 1;
    if (spec == zoo::mrsw_register_type(v, readers)) {
      return RegisterShape{readers == 1 ? RegisterShape::Kind::kSrsw
                                        : RegisterShape::Kind::kMrsw,
                           v, readers, spec.ports()};
    }
  }
  return std::nullopt;
}

bool is_srsw_bit_spec(const TypeSpec& spec) {
  const auto shape = classify_register(spec);
  return shape && shape->kind == RegisterShape::Kind::kSrsw &&
         shape->values == 2;
}

bool is_one_use_bit_spec(const TypeSpec& spec) {
  return spec == zoo::one_use_bit_type();
}

namespace {

void census_into(const Implementation& impl,
                 std::map<std::string, int>& counts) {
  for (const ObjectDecl& decl : impl.objects()) {
    if (decl.is_base()) {
      ++counts[decl.spec->name()];
    } else {
      census_into(*decl.impl, counts);
    }
  }
}

std::map<std::string, int> census(const Implementation& impl) {
  std::map<std::string, int> counts;
  census_into(impl, counts);
  return counts;
}

}  // namespace

EliminationReport eliminate_registers(
    std::shared_ptr<const Implementation> impl,
    const EliminationOptions& options) {
  if (!impl) {
    throw std::invalid_argument("eliminate_registers: null implementation");
  }
  EliminationReport report;
  report.census_before = census(*impl);

  // ---- stage 1 (Section 4.1): registers -> SRSW atomic bits ------------------
  const auto stage1 = impl->rewrite_objects(
      [&report, &options](std::span<const int>, const ObjectDecl& decl)
          -> std::optional<ObjectDecl> {
        if (!decl.is_base()) return std::nullopt;
        if (is_srsw_bit_spec(*decl.spec)) return std::nullopt;  // stage 3's job
        const auto shape = classify_register(*decl.spec);
        if (!shape) return std::nullopt;  // not a register: leave it alone
        ObjectDecl out;
        out.port_of_outer = decl.port_of_outer;
        switch (shape->kind) {
          case RegisterShape::Kind::kMrmw:
            out.impl = registers::full_chain_register(
                shape->values, shape->ports, decl.initial, options.chain);
            break;
          case RegisterShape::Kind::kMrsw:
            out.impl = registers::mrsw_register(
                shape->values, shape->readers, decl.initial,
                options.chain.mrsw_max_writes,
                registers::simpson_srsw_factory());
            break;
          case RegisterShape::Kind::kSrsw:
            out.impl =
                registers::simpson_register(shape->values, decl.initial);
            break;
        }
        ++report.registers_replaced;
        return out;
      });
  report.bits_stage = stage1;

  // ---- stage 2 (Section 4.2): access bounds ------------------------------------
  report.bounds = compute_access_bounds(stage1, options.bounds_limits);
  if (!report.bounds.wait_free || !report.bounds.complete ||
      !report.bounds.solves) {
    report.detail = "stage 2 failed: " +
                    (report.bounds.detail.empty() ? "exploration problem"
                                                  : report.bounds.detail);
    return report;
  }

  // ---- stages 3+4 (Sections 4.3 and 5): bits -> one-use bits -> substrate ------
  const auto stage3 = stage1->rewrite_objects(
      [&report, &options](std::span<const int> path, const ObjectDecl& decl)
          -> std::optional<ObjectDecl> {
        if (!decl.is_base()) return std::nullopt;
        if (is_one_use_bit_spec(*decl.spec)) {
          if (!options.oneuse_factory) return std::nullopt;
          ObjectDecl out;
          out.impl = options.oneuse_factory();
          out.port_of_outer = decl.port_of_outer;
          ++report.oneuse_bits_created;
          return out;
        }
        if (!is_srsw_bit_spec(*decl.spec)) return std::nullopt;
        const auto& measured = report.bounds.at(path);
        const int r_b = options.uniform_paper_bound
                            ? report.bounds.depth
                            : static_cast<int>(measured.read_bound);
        const int w_b = options.uniform_paper_bound
                            ? report.bounds.depth
                            : static_cast<int>(measured.write_bound);
        ObjectDecl out;
        out.impl = bounded_bit_from_oneuse(r_b, w_b, decl.initial,
                                           options.oneuse_factory);
        out.port_of_outer = decl.port_of_outer;
        ++report.bits_replaced;
        report.oneuse_bits_created += oneuse_bits_needed(r_b, w_b);
        return out;
      });

  report.result = stage3;
  report.census_after = census(*stage3);
  report.ok = true;
  return report;
}

}  // namespace wfregs::core
